"""PROP-13..17: the completeness constructions (trace steering).

Measures building a steering interpretation from an abstract witness and
replaying the witness inside ``M_I_G``, plus the Prop. 16 pump transfer.
"""

from repro.analysis import boundedness, node_reachable
from repro.interp import mimic_pump_forever, mimic_run, steering_interpretation
from repro.zoo import fig2_scheme, spawner_loop


def test_steering_construction(benchmark, fig2):
    witness = node_reachable(fig2, "q5").certificate
    interp = benchmark(steering_interpretation, witness.transitions)
    assert interp.is_finite()


def test_mimic_node_witness(benchmark, fig2):
    witness = node_reachable(fig2, "q12").certificate

    def mimic():
        return mimic_run(fig2, witness.transitions)

    run = benchmark(mimic)
    assert run[-1].target.forget().contains_node("q12")


def test_pump_transfer(benchmark):
    scheme = spawner_loop()
    cert = boundedness(scheme).certificate

    def pump():
        return mimic_pump_forever(scheme, cert.prefix, cert.pump, iterations=5)

    final = benchmark(pump)
    assert final.state.size > cert.pumped.size
