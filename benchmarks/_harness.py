"""Shared benchmark harness: warmup / repeat / minimum-of, on the registry.

Every benchmark in this directory used to hand-roll its own
``time.perf_counter()`` loops and its own ad-hoc JSON shape.  This module
centralises both:

* :class:`BenchHarness` — warmup runs (excluded from timing), N repeats,
  minimum-of aggregation; every measured cell is recorded into a
  :class:`~repro.obs.MetricsRegistry` (``bench.seconds{cell=...}``) and as
  a span in an in-memory trace, so the artefacts carry the raw
  observations, not just the summary;
* the standardized **BENCH schema** (``repro-bench/1``)::

      {
        "schema":  "repro-bench/1",
        "meta":    {"benchmark": ..., "python": ..., "platform": ...},
        "metrics": <MetricsRegistry.as_dict()>,
        "spans":   [<span/event records>],
        "results": <benchmark-specific payload>
      }

  validated by ``benchmarks/check_bench_schema.py`` in CI.

When the ``RPCHECK_LEDGER`` environment variable names a run-ledger
file, :meth:`BenchHarness.write` additionally appends a ``kind="bench"``
``rpcheck-ledger/1`` entry (cell timings, metrics snapshot, span
rollup), so benchmark runs land in the same cross-run history as
analysis runs and ``rpcheck diff`` / ``rpcheck history`` see them.

Run any benchmark with ``PYTHONPATH=src``; the harness has no
dependencies beyond ``repro.obs``.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs import (
    Ledger,
    MemorySink,
    MetricsRegistry,
    SamplingProfiler,
    Tracer,
    make_entry,
)
from repro.obs.ledger import default_ledger_path

#: The BENCH artefact schema version (bump on breaking shape changes).
BENCH_SCHEMA = "repro-bench/1"

#: Repository root (BENCH_*.json artefacts live here).
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class BenchHarness:
    """Warmup/repeat/minimum-of measurement recording into ``repro.obs``.

    Parameters
    ----------
    name:
        The benchmark name (becomes ``meta.benchmark`` and the artefact
        file name ``BENCH_<name>.json``).
    warmup:
        Un-timed runs of each measured callable before timing starts
        (cache priming; 0 for cold-cost benchmarks).
    repeats:
        Timed runs per cell; the reported figure is the minimum.
    profile:
        Opt-in sampling rate in Hz.  When set, a
        :class:`~repro.obs.SamplingProfiler` runs across every timed
        call and its collapsed stacks land in the artefact
        (``results`` consumers find them via :meth:`profile_stacks`).
        Default off — sampling is cheap but not free.
    """

    def __init__(
        self,
        name: str,
        *,
        warmup: int = 0,
        repeats: int = 3,
        profile: Optional[int] = None,
    ) -> None:
        self.name = name
        self.warmup = warmup
        self.repeats = repeats
        self.metrics = MetricsRegistry()
        self.sink = MemorySink()
        self.tracer = Tracer(self.sink)
        self.profiler = SamplingProfiler(hz=profile) if profile else None
        self._seconds = self.metrics.histogram(
            "bench.seconds", "best-of-N seconds per measured cell"
        )
        self._runs = self.metrics.counter(
            "bench.runs", "timed runs executed (excluding warmup)"
        )

    def measure(
        self,
        cell: str,
        fn: Callable[[], Any],
        *,
        warmup: Optional[int] = None,
        repeats: Optional[int] = None,
    ) -> Tuple[float, Any]:
        """Time ``fn()`` and return ``(best_seconds, last_result)``.

        Runs *warmup* un-timed calls, then *repeats* timed ones, keeping
        the minimum.  The cell lands in the registry
        (``bench.seconds{cell=...}``) and in the trace as one span per
        timed run (attrs carry the repeat index), so per-run jitter stays
        inspectable in the artefact.
        """
        warmup = self.warmup if warmup is None else warmup
        repeats = self.repeats if repeats is None else repeats
        for _ in range(max(0, warmup)):
            fn()
        best: Optional[float] = None
        result: Any = None
        for repeat in range(max(1, repeats)):
            if self.profiler is not None:
                self.profiler.start()
            try:
                with self.tracer.span(f"bench.{cell}", repeat=repeat):
                    start = time.perf_counter()
                    result = fn()
                    elapsed = time.perf_counter() - start
            finally:
                if self.profiler is not None:
                    self.profiler.stop()
            self._runs.inc()
            if best is None or elapsed < best:
                best = elapsed
        self._seconds.labels(cell=cell).observe(best)
        return best, result

    def profile_stacks(self) -> list:
        """Collapsed stacks accumulated by the opt-in profiler (or [])."""
        if self.profiler is None:
            return []
        return self.profiler.collapsed()

    def payload(
        self,
        results: Any = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The BENCH-schema dict for this harness's recordings."""
        return bench_payload(
            self.name,
            metrics=self.metrics,
            spans=list(self.sink.records),
            results=results,
            meta={"warmup": self.warmup, "repeats": self.repeats, **(meta or {})},
        )

    def write(
        self,
        results: Any = None,
        meta: Optional[Dict[str, Any]] = None,
        path: Optional[pathlib.Path] = None,
    ) -> pathlib.Path:
        """Write ``BENCH_<name>.json`` at the repo root; returns the path.

        With ``RPCHECK_LEDGER`` set, also appends a ``kind="bench"``
        entry to the run ledger (see the module docstring).
        """
        target = path if path is not None else REPO_ROOT / f"BENCH_{self.name}.json"
        payload = self.payload(results=results, meta=meta)
        write_bench(target, payload)
        ledger_path = default_ledger_path()
        if ledger_path:
            Ledger(ledger_path).append(
                make_entry(
                    kind="bench",
                    metrics=payload["metrics"],
                    span_records=payload["spans"],
                    extra={"benchmark": self.name, "artefact": str(target)},
                )
            )
        return target


def bench_payload(
    name: str,
    *,
    metrics: MetricsRegistry,
    spans: list,
    results: Any = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a ``repro-bench/1`` payload from its parts."""
    return {
        "schema": BENCH_SCHEMA,
        "meta": {
            "benchmark": name,
            "python": platform.python_version(),
            "platform": platform.platform(),
            **(meta or {}),
        },
        "metrics": metrics.as_dict(),
        "spans": spans,
        "results": results,
    }


def write_bench(path, payload: Dict[str, Any]) -> None:
    """Write one BENCH JSON artefact (pretty-printed, repr-degraded)."""
    text = json.dumps(payload, indent=2, default=repr) + "\n"
    pathlib.Path(path).write_text(text, encoding="utf-8")
