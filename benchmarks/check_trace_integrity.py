"""CI gate: distributed-trace integrity of a served ``--workers 2`` query.

Boots the serve daemon in-process, sends streamed queries through
:class:`~repro.serve.ServeClient` from inside a client-side root span
(so the ``traceparent`` propagation path is the one under test), ships
every span — client-side and streamed back from the daemon — through a
real :class:`~repro.obs.OtlpJsonSink`, then audits the export file:

* every request's spans carry exactly ONE trace id (client root,
  ``serve.query``, ``session.explore``, ``parallel.window`` and the
  re-based worker ``parallel.chunk`` spans all agree);
* no duplicate OTLP span ids;
* no dangling ``parentSpanId`` (every parent resolves in the file);
* two requests export as two *distinct* traces (the per-root minting
  that replaced the old per-sink trace id).

Then renders the per-worker timeline artefact: a traced ``workers=2``
exploration is written as JSONL, the ``rpcheck timeline`` subcommand is
driven against it (terminal and SVG outputs), and the standalone SVG is
left at ``trace-timeline.svg`` for CI to upload.

Run as a script::

    PYTHONPATH=src python benchmarks/check_trace_integrity.py

Exits non-zero on any integrity violation.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro.analysis import AnalysisSession
from repro.cli import main as rpcheck_main
from repro.obs import JsonlSink, OtlpJsonSink, Tracer
from repro.serve import ServeClient, daemon_in_thread
from repro.zoo import FIG1_PROGRAM, wide_mix

WORKERS = 2
SVG_PATH = "trace-timeline.svg"
TRACE_PATH = "trace_integrity.jsonl"


def _exported_spans(path):
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            request = json.loads(line)
            for rs in request.get("resourceSpans", []):
                for ss in rs.get("scopeSpans", []):
                    spans.extend(ss.get("spans", []))
    return spans


def check_serve_trace_integrity(tmp_dir: str) -> None:
    """Two served workers=2 queries must export as two clean traces."""
    sock = os.path.join(tmp_dir, "rp.sock")
    otlp_path = os.path.join(tmp_dir, "otlp_integrity.json")
    sink = OtlpJsonSink(otlp_path)
    tracer = Tracer(sink)
    request_traces = []
    with daemon_in_thread(sock):
        with ServeClient(sock) as client:
            for attempt in range(2):
                # the daemon's spans stream back as event records and go
                # through the SAME exporter as the client span, exactly
                # like a collector receiving both services' telemetry
                with tracer.span("client.request", attempt=attempt) as root:
                    response = client.query(
                        "boundedness",
                        source=FIG1_PROGRAM,
                        workers=WORKERS,
                        stream=True,
                        on_event=sink.emit,
                    )
                assert response.ok, f"query failed: {response.error}"
                assert response.request_id, "request id must be minted"
                assert response.traceparent, "traceparent must be echoed"
                request_traces.append(root.trace.trace_id)
    sink.close()

    spans = _exported_spans(otlp_path)
    assert spans, "no spans exported"
    names = {span["name"] for span in spans}
    for expected in ("client.request", "serve.query", "parallel.window",
                     "parallel.chunk"):
        assert expected in names, f"no {expected} span exported ({names})"

    ids = [span["spanId"] for span in spans]
    duplicates = len(ids) - len(set(ids))
    assert duplicates == 0, f"{duplicates} duplicate span id(s)"

    known = set(ids)
    dangling = [
        (span["name"], span["parentSpanId"])
        for span in spans
        if span.get("parentSpanId") and span["parentSpanId"] not in known
    ]
    assert not dangling, f"dangling parentSpanIds: {dangling}"

    assert len(set(request_traces)) == 2, "requests must not share a trace"
    for wanted in request_traces:
        per_request = [s for s in spans if s["traceId"] == wanted]
        assert per_request, f"trace {wanted} exported no spans"
    stray = {s["traceId"] for s in spans} - set(request_traces)
    assert not stray, f"spans outside the two request traces: {stray}"
    print(
        f"serve integrity: {len(spans)} spans, 2 requests, 2 traces, "
        "0 duplicates, 0 dangling parents"
    )


def render_timeline_artifact() -> None:
    """Trace a workers=2 exploration and drive ``rpcheck timeline`` on it."""
    session = AnalysisSession(
        wide_mix(3), tracer=Tracer(JsonlSink(TRACE_PATH)), workers=WORKERS
    )
    try:
        session.explore(3000)
    finally:
        session.close()
        session.tracer.close()
    code = rpcheck_main(["timeline", TRACE_PATH])
    assert code == 0, f"rpcheck timeline exited {code}"
    code = rpcheck_main(["timeline", TRACE_PATH, "-o", SVG_PATH])
    assert code == 0, f"rpcheck timeline -o exited {code}"
    svg = open(SVG_PATH, "r", encoding="utf-8").read()
    assert svg.lstrip().startswith("<?xml"), "SVG artefact must be standalone"
    assert "<script" not in svg, "timeline SVG must stay script-free"
    print(f"timeline artefact: {SVG_PATH} ({len(svg)} bytes)")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp_dir:
        check_serve_trace_integrity(tmp_dir)
    render_timeline_artifact()
    print("trace integrity: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
