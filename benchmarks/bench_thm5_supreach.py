"""THM-5 / §5.2: sup-reachability bases and persistence.

The domination-pruned forward search terminates on every scheme
(bounded or not); the sweep shows its cost profile across the zoo.
"""

import pytest

from repro.analysis import minimal_reachable_states, persistent, sup_reachability
from repro.zoo import (
    ZOO_ALL,
    bounded_spawner,
    persistent_server,
    spawner_loop,
)


@pytest.mark.parametrize("name,factory", ZOO_ALL, ids=[n for n, _ in ZOO_ALL])
def test_basis_over_zoo(benchmark, name, factory):
    scheme = factory()
    basis = benchmark(minimal_reachable_states, scheme)
    assert basis


@pytest.mark.parametrize("children", [2, 5, 8])
def test_basis_scaling(benchmark, children):
    scheme = bounded_spawner(children)
    verdict = benchmark(sup_reachability, scheme)
    assert verdict.holds


def test_persistence_positive(benchmark):
    scheme = persistent_server()
    verdict = benchmark(persistent, scheme, ["s0", "s1"])
    assert verdict.holds


def test_persistence_negative_on_unbounded(benchmark):
    scheme = spawner_loop()
    verdict = benchmark(persistent, scheme, ["m0", "m1", "m2"])
    assert not verdict.holds
