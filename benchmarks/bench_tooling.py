"""Tooling layer: optimiser, bisimulation quotient, normedness,
serialisation, isomorphism — the engineering around the paper's theory."""

import pytest

from repro.analysis import normed, race_report
from repro.analysis.explore import Explorer
from repro.core import scheme_from_json, scheme_to_json
from repro.core.isomorphism import find_isomorphism
from repro.lang import compile_source, optimize
from repro.lts import quotient
from repro.zoo import FIG1_PROGRAM, bounded_spawner, fig2_scheme, terminating_chain

DUPLICATED = """
program main {
    if b then { a1; a2; a3; } else { a1; a2; a3; }
    if c then { a1; a2; a3; } else { a1; a2; a3; }
    end;
}
"""


def test_optimizer_on_duplicated_branches(benchmark):
    scheme = compile_source(DUPLICATED).scheme
    report = benchmark(optimize, scheme)
    assert report.merged >= 3


def test_quotient_of_explored_fragment(benchmark):
    lts = Explorer(bounded_spawner(4)).explore().to_lts()

    def minimise():
        return quotient(lts)

    small, _ = benchmark(minimise)
    assert len(small.states) <= len(lts.states)


@pytest.mark.parametrize("length", [8, 32])
def test_normedness_chain(benchmark, length):
    scheme = terminating_chain(length)
    verdict = benchmark(normed, scheme)
    assert verdict.holds


def test_serialization_roundtrip(benchmark, fig2):
    text = scheme_to_json(fig2)

    def roundtrip():
        return scheme_from_json(text)

    again = benchmark(roundtrip)
    assert len(again) == len(fig2)


def test_isomorphism_search(benchmark, fig2):
    other = compile_source(FIG1_PROGRAM).scheme
    mapping = benchmark(find_isomorphism, other, fig2)
    assert mapping is not None


def test_race_report(benchmark):
    source = """
    global x := 0;
    program main { pcall w; x := x + 1; wait; end; }
    procedure w { x := x * 2; end; }
    """
    compiled = compile_source(source)
    report = benchmark(race_report, compiled)
    assert not report.is_safe
