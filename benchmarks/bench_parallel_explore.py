"""Scaling of the sharded parallel explorer on ``wide_mix``.

``AnalysisSession(workers=N)`` shards successor computation across a
``multiprocessing`` pool while the coordinator applies expansions in
frontier order (``repro.analysis.parallel``), so the grown graph — and
every verdict — is state-for-state identical to the sequential run.
This benchmark pins both halves of that claim:

* **scaling** — one fixed exploration of ``wide_mix(4)`` at
  ``workers=1`` (the untouched sequential path), ``2`` and ``4``, fresh
  session and pool per repeat, best-of-N per cell;
* **zero drift** — the ``workers=4`` run must discover the exact same
  states in the exact same order as the sequential run, and a battery of
  decision procedures (boundedness / halting / normedness) must return
  identical verdict summaries on both.  Any mismatch fails the bench;
* **recovery overhead** — a ``workers=2`` arm with a seeded mid-run
  worker ``SIGKILL`` (:class:`~repro.robust.ProcessFaultPlan`): the
  supervisor detects the death, respawns the worker and replays the lost
  window, and the whole disturbance must cost at most
  ``MAX_RECOVERY_OVERHEAD`` x the undisturbed ``workers=2`` time — and
  land on the byte-identical graph.  A run where the planned kill never
  fires (so nothing was recovered) fails the bench.

**Hardware-aware acceptance.**  Wall-clock speedup needs physical
parallelism: with **4+ cores** the bar is ``workers=4`` at least
2x faster than sequential (the committed scaling contract, enforced by
``watch_regressions.py`` via the acceptance flag).  On smaller hosts —
CI smoke shards, laptops on battery, this repo's 1-core container — a
2x wall-clock demand would measure the scheduler, not the engine, so
the bar degrades honestly: zero drift plus a bounded parallelism
overhead (``workers=4`` no slower than ``MAX_CORE_BOUND_OVERHEAD`` x
sequential, i.e. sharding on starved hardware stays affordable).
``--smoke`` runs arm no timing bar at all — their workload is small
enough that fixed pool-spawn cost dominates — but the drift gate stays
fatal.  The
artefact records which mode judged the run (``acceptance.mode``), the
core count, and the measured speedups, so a reader of the JSON knows
exactly what was demonstrated.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_parallel_explore.py [--smoke]

Writes ``BENCH_parallel_explore.json`` (``repro-bench/1`` schema).
"""

from __future__ import annotations

import os
import sys

from _harness import BenchHarness
from repro.analysis import boundedness, halts, normed
from repro.analysis.session import AnalysisSession
from repro.errors import AnalysisBudgetExceeded
from repro.obs.ledger import verdict_summary
from repro.robust import ProcessFaultPlan, install_process_faults
from repro.zoo import wide_mix

#: Exploration size: large enough that successor computation dominates
#: coordination, small enough for CI (sequential ~2s on one 2020s core).
MAX_STATES = 8_000
SMOKE_MAX_STATES = 1_500
REPEATS = 3
WORKER_ARMS = (1, 2, 4)

#: 4-core bar: workers=4 must be at least this much faster than workers=1.
MIN_SPEEDUP_AT_4 = 2.0
#: Core-bound bar: on hosts without 4 cores, workers=4 may cost at most
#: this factor of the sequential time (sharding stays affordable even
#: when the OS multiplexes every worker onto one core).
MAX_CORE_BOUND_OVERHEAD = 3.5
#: State budget for the drift-gate decision procedures (kept below the
#: exploration size so each procedure answers from the shared graph).
DRIFT_MAX_STATES = 2_000

#: Recovery arm: SIGKILL worker 0 at exploration window 2 (early enough
#: that most of the run happens after the respawn, so the arm measures
#: steady-state cost with a recovered pool, not just the blip).
RECOVERY_PLAN = ProcessFaultPlan(kill_at=((2, 0),), max_kills=1, immune=0)
#: The disturbed ``workers=2`` run may cost at most this factor of the
#: undisturbed one: detect + respawn + one-window replay stays < 10%.
MAX_RECOVERY_OVERHEAD = 1.10


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _explore(workers: int, max_states: int):
    session = AnalysisSession(wide_mix(4), workers=workers)
    try:
        graph = session.explore(max_states)
        return len(graph.states), session.expanded_count
    finally:
        session.close()


def _explore_recovery(max_states: int):
    """One ``workers=2`` exploration with a seeded worker kill."""
    session = AnalysisSession(wide_mix(4), workers=2)
    try:
        install_process_faults(session, RECOVERY_PLAN)
        graph = session.explore(max_states)
        if session._worker_restarts < 1:
            raise AssertionError(
                "recovery arm measured nothing: the planned worker kill "
                "never fired (exploration too small to reach window 2?)"
            )
        return len(graph.states), session.expanded_count
    finally:
        session.close()


def _verdict_battery(workers: int, max_states: int, fault_plan=None):
    """Graph prefix + decision-procedure summaries for one worker count."""
    scheme = wide_mix(4)
    session = AnalysisSession(scheme, workers=workers)
    try:
        if fault_plan is not None:
            install_process_faults(session, fault_plan)
        graph = session.explore(max_states)
        states = [state.to_notation() for state in graph.states]
        verdicts = {}
        for name, procedure in (
            ("boundedness", boundedness),
            ("halts", halts),
            ("normed", normed),
        ):
            try:
                verdicts[name] = verdict_summary(
                    procedure(scheme, max_states=DRIFT_MAX_STATES, session=session)
                )
            except AnalysisBudgetExceeded as exc:
                # an inconclusive answer is still an answer: both arms
                # must run out at exactly the same exploration extent
                verdicts[name] = {
                    "verdict": "inconclusive",
                    "explored": exc.explored,
                }
        return states, verdicts
    finally:
        session.close()


def run(smoke: bool = False) -> tuple:
    max_states = SMOKE_MAX_STATES if smoke else MAX_STATES
    repeats = 1 if smoke else REPEATS
    cores = _cores()
    harness = BenchHarness("parallel_explore", warmup=0, repeats=repeats)

    best = {}
    sizes = {}
    for workers in WORKER_ARMS:
        seconds, outcome = harness.measure(
            f"wide_mix/workers{workers}",
            lambda workers=workers: _explore(workers, max_states),
        )
        best[workers] = seconds
        sizes[workers] = outcome
    recovery_seconds, recovery_size = harness.measure(
        "wide_mix/workers2_recovery",
        lambda: _explore_recovery(max_states),
    )
    sizes["2+kill"] = recovery_size
    if len(set(sizes.values())) != 1:
        raise AssertionError(
            f"worker arms disagree on exploration size: {sizes!r}"
        )

    # drift gate: the parallel graph and verdicts must match sequential
    drift_states = SMOKE_MAX_STATES if smoke else DRIFT_MAX_STATES
    seq_states, seq_verdicts = _verdict_battery(1, drift_states)
    par_states, par_verdicts = _verdict_battery(4, drift_states)
    rec_states, rec_verdicts = _verdict_battery(
        2, drift_states, fault_plan=RECOVERY_PLAN
    )
    mismatches = []
    if seq_states != par_states:
        mismatches.append(
            f"state drift: {len(seq_states)} sequential vs "
            f"{len(par_states)} parallel states (or same count, "
            f"different order)"
        )
    if seq_states != rec_states:
        mismatches.append(
            f"recovery drift: {len(rec_states)} states after a worker "
            f"kill vs {len(seq_states)} sequential (or same count, "
            f"different order)"
        )
    for name in seq_verdicts:
        if seq_verdicts[name] != par_verdicts[name]:
            mismatches.append(
                f"verdict drift on {name}: {seq_verdicts[name]!r} vs "
                f"{par_verdicts[name]!r}"
            )
        if seq_verdicts[name] != rec_verdicts[name]:
            mismatches.append(
                f"recovery verdict drift on {name}: "
                f"{seq_verdicts[name]!r} vs {rec_verdicts[name]!r}"
            )
    if mismatches:
        raise AssertionError("; ".join(mismatches))

    speedups = {
        str(workers): best[1] / best[workers] if best[workers] > 0 else None
        for workers in WORKER_ARMS
    }
    recovery_overhead = (
        recovery_seconds / best[2] if best[2] > 0 else None
    )
    recovery_ok = (
        recovery_overhead is not None
        and recovery_overhead <= MAX_RECOVERY_OVERHEAD
    )
    if smoke:
        # the smoke workload is deliberately tiny, so fixed pool-spawn
        # cost dominates and any timing bar would measure startup, not
        # scaling; smoke runs are a drift + end-to-end sanity pass
        mode = "smoke"
        within = True
        bar = "zero drift only (timing bar armed on the full run)"
    elif cores >= 4:
        mode = "multi-core"
        within = (
            speedups["4"] is not None
            and speedups["4"] >= MIN_SPEEDUP_AT_4
            and recovery_ok
        )
        bar = (
            f"workers=4 speedup >= {MIN_SPEEDUP_AT_4:g}x and recovery "
            f"overhead <= {MAX_RECOVERY_OVERHEAD:g}x workers=2"
        )
    else:
        mode = "core-bound"
        within = best[4] <= MAX_CORE_BOUND_OVERHEAD * best[1] and recovery_ok
        bar = (
            f"workers=4 <= {MAX_CORE_BOUND_OVERHEAD:g}x sequential and "
            f"recovery overhead <= {MAX_RECOVERY_OVERHEAD:g}x workers=2 "
            f"(only {cores} core(s): wall-clock speedup would measure "
            f"the scheduler, not the engine)"
        )
    results = {
        "benchmark": "parallel_explore",
        "smoke": smoke,
        "max_states": max_states,
        "repeats": repeats,
        "workload": "wide_mix(4) exploration, fresh session+pool per repeat",
        "cells": [
            {
                "workers": workers,
                "seconds": best[workers],
                "states": sizes[workers][0],
                "expanded": sizes[workers][1],
                "speedup_vs_sequential": speedups[str(workers)],
            }
            for workers in WORKER_ARMS
        ]
        + [
            {
                "workers": 2,
                "arm": "recovery",
                "seconds": recovery_seconds,
                "states": recovery_size[0],
                "expanded": recovery_size[1],
                "overhead_vs_workers2": recovery_overhead,
            }
        ],
        "drift": {
            "checked_states": len(seq_states),
            "procedures": sorted(seq_verdicts),
            "mismatches": 0,
        },
        "acceptance": {
            "mode": mode,
            "cores": cores,
            "bar": bar,
            "speedup_at_4": speedups["4"],
            "min_speedup_at_4": MIN_SPEEDUP_AT_4,
            "max_core_bound_overhead": MAX_CORE_BOUND_OVERHEAD,
            "recovery_overhead": recovery_overhead,
            "max_recovery_overhead": MAX_RECOVERY_OVERHEAD,
            "drift_mismatches": 0,
            "within_budget": bool(within),
        },
    }
    return results, harness


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    results, harness = run(smoke=smoke)
    acceptance = results["acceptance"]
    for cell in results["cells"]:
        if cell.get("arm") == "recovery":
            print(
                f"workers={cell['workers']}+kill: {cell['seconds']:.3f}s "
                f"({cell['states']} states, "
                f"{cell['overhead_vs_workers2']:.2f}x vs undisturbed)"
            )
            continue
        speedup = cell["speedup_vs_sequential"]
        print(
            f"workers={cell['workers']}: {cell['seconds']:.3f}s "
            f"({cell['states']} states, {speedup:.2f}x vs sequential)"
        )
    print(
        f"acceptance [{acceptance['mode']}, {acceptance['cores']} core(s)] "
        f"{acceptance['bar']}: "
        f"{'PASS' if acceptance['within_budget'] else 'FAIL'}  "
        f"(drift mismatches: {acceptance['drift_mismatches']})"
    )
    if not acceptance["within_budget"]:
        raise SystemExit(1)
    if smoke:
        print("smoke run: JSON not written")
        return
    out = harness.write(
        results=results,
        meta={"max_states": results["max_states"], "cores": acceptance["cores"]},
    )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
