"""Overhead of the observability layer on the WQO benchmark families.

The tracing/metrics instrumentation is permanently threaded through the
analysis engine (``AnalysisSession.explore`` samples the frontier gauge
every iteration; every decision procedure opens a phase span).  This
benchmark quantifies what that costs, per arm:

* **baseline** — the obs hooks monkeypatched to pure no-ops
  (``GaugeMetric.set``, ``Tracer.span``, ``Tracer.event``): a proxy for
  the pre-instrumentation hot path;
* **disabled** — the shipped default: a sink-less :class:`Tracer` (shared
  no-op span) and a live :class:`MetricsRegistry`.  This is what every
  user who does not pass ``--trace`` runs;
* **traced** — full JSONL tracing to a scratch file, for context.

Workload: one cold ``boundedness`` query per scheme of
:data:`repro.zoo.ZOO_WQO_BENCH` (the embedding/exploration-heavy matrix),
best-of-N with fresh scheme and session per repeat.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]

Writes ``BENCH_obs_overhead.json`` (``repro-bench/1`` schema).  The PR
acceptance bar: **disabled-vs-baseline aggregate overhead < 5%**; the
artefact records the percentage under
``results.aggregate.disabled_overhead_pct``.
"""

from __future__ import annotations

import contextlib
import os
import sys
import tempfile

from _harness import BenchHarness
from repro.analysis import boundedness
from repro.analysis.session import AnalysisSession
from repro.errors import AnalysisBudgetExceeded
from repro.obs import JsonlSink, NOOP_SPAN, Tracer
from repro.obs.metrics import GaugeMetric
from repro.zoo import ZOO_WQO_BENCH

MAX_STATES = 2_000
REPEATS = 5


@contextlib.contextmanager
def _obs_stubbed():
    """Temporarily strip the obs hooks down to no-ops (the baseline arm).

    Approximates the pre-instrumentation engine: the call sites stay (the
    whole point is measuring their residual cost is what we *cannot*
    remove), but gauge sampling, span bookkeeping, and events all reduce
    to constant-time stubs.
    """
    originals = (GaugeMetric.set, Tracer.span, Tracer.event)
    GaugeMetric.set = lambda self, value: None
    Tracer.span = lambda self, name, **attrs: NOOP_SPAN
    Tracer.event = lambda self, name, **attrs: None
    try:
        yield
    finally:
        GaugeMetric.set, Tracer.span, Tracer.event = originals


def _run_boundedness(scheme, tracer):
    session = AnalysisSession(scheme, tracer=tracer)
    try:
        verdict = boundedness(scheme, max_states=MAX_STATES, session=session)
        return {"holds": verdict.holds}
    except AnalysisBudgetExceeded as exc:
        return {"budget_exceeded": True, "explored": exc.explored}


def run(smoke: bool = False) -> tuple:
    repeats = 1 if smoke else REPEATS
    harness = BenchHarness("obs_overhead", warmup=1, repeats=repeats)
    trace_path = os.path.join(tempfile.gettempdir(), "bench_obs_overhead.jsonl")
    cells = []
    totals = {"baseline": 0.0, "disabled": 0.0, "traced": 0.0}
    for name, factory in ZOO_WQO_BENCH:
        row = {"scheme": name}
        with _obs_stubbed():
            baseline, out_base = harness.measure(
                f"{name}/baseline", lambda: _run_boundedness(factory(), None)
            )
        disabled, out_disabled = harness.measure(
            f"{name}/disabled", lambda: _run_boundedness(factory(), None)
        )
        sink = JsonlSink(trace_path)
        tracer = Tracer(sink)
        traced, out_traced = harness.measure(
            f"{name}/traced", lambda: _run_boundedness(factory(), tracer)
        )
        tracer.close()
        if not (out_base == out_disabled == out_traced):
            raise AssertionError(
                f"{name}: arms disagree: {out_base!r} / {out_disabled!r} / "
                f"{out_traced!r}"
            )
        totals["baseline"] += baseline
        totals["disabled"] += disabled
        totals["traced"] += traced
        row.update(
            baseline_seconds=baseline,
            disabled_seconds=disabled,
            traced_seconds=traced,
            disabled_overhead_pct=100.0 * (disabled - baseline) / baseline,
            traced_overhead_pct=100.0 * (traced - baseline) / baseline,
            outcome=out_disabled,
        )
        cells.append(row)
    aggregate = {
        "baseline_seconds": totals["baseline"],
        "disabled_seconds": totals["disabled"],
        "traced_seconds": totals["traced"],
        "disabled_overhead_pct": 100.0
        * (totals["disabled"] - totals["baseline"])
        / totals["baseline"],
        "traced_overhead_pct": 100.0
        * (totals["traced"] - totals["baseline"])
        / totals["baseline"],
    }
    results = {
        "benchmark": "obs_overhead",
        "smoke": smoke,
        "max_states": MAX_STATES,
        "repeats": repeats,
        "workload": "boundedness, cold session per repeat",
        "cells": cells,
        "aggregate": aggregate,
        "acceptance": {
            "disabled_overhead_budget_pct": 5.0,
            "within_budget": aggregate["disabled_overhead_pct"] < 5.0,
        },
    }
    with contextlib.suppress(OSError):
        os.remove(trace_path)
    return results, harness


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    results, harness = run(smoke=smoke)
    agg = results["aggregate"]
    print(
        f"disabled overhead: {agg['disabled_overhead_pct']:+.2f}% "
        f"(baseline {agg['baseline_seconds']:.3f}s, "
        f"disabled {agg['disabled_seconds']:.3f}s)  "
        f"[budget < 5%: {'PASS' if results['acceptance']['within_budget'] else 'FAIL'}]"
    )
    print(
        f"traced overhead  : {agg['traced_overhead_pct']:+.2f}% "
        f"(traced {agg['traced_seconds']:.3f}s)"
    )
    if smoke:
        print("smoke run: JSON not written")
        return
    out = harness.write(results=results, meta={"max_states": MAX_STATES})
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
