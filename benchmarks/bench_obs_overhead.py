"""Overhead of the observability layer on the WQO benchmark families.

The tracing/metrics instrumentation is permanently threaded through the
analysis engine (``AnalysisSession.explore`` samples the frontier gauge
every iteration; every decision procedure opens a phase span).  This
benchmark quantifies what that costs, per arm:

* **baseline** — the obs hooks monkeypatched to pure no-ops
  (``GaugeMetric.set``, ``Tracer.span``, ``Tracer.event``): a proxy for
  the pre-instrumentation hot path;
* **disabled** — a sink-less :class:`Tracer` (shared no-op span) and a
  live :class:`MetricsRegistry`: what a run with tracing explicitly
  turned off pays;
* **recorder** — the shipped default: a session constructed without a
  tracer, recording into the process-wide ambient
  :class:`~repro.obs.recorder.FlightRecorder` ring buffer.  This is what
  every user who does not pass a tracer runs, so the flight recorder's
  "always on at near-zero cost" claim is measured here;
* **traced** — full JSONL tracing to a scratch file, for context;
* **profiler** — the recorder default plus an active
  :class:`~repro.obs.SamplingProfiler` at its default rate: what
  ``rpcheck flamegraph --sample`` and the harness ``profile=`` knob add
  on top of a normal run.

Workload: one cold ``boundedness`` query per scheme of
:data:`repro.zoo.ZOO_WQO_BENCH` (the embedding/exploration-heavy matrix),
best-of-N with fresh scheme and session per repeat.  Arms are
interleaved round-robin so machine drift hits all of them equally, and
the overhead percentages are computed from **CPU time** rather than
wall clock: instrumentation cost is CPU work, and on a shared
single-core box scheduler preemption inflates wall time by far more
than the effect being measured.  The clock is ``time.thread_time``
(the workload is single-threaded), not ``time.process_time``: an armed
``ITIMER_PROF`` makes ``CLOCK_PROCESS_CPUTIME_ID`` advance in coarse
chunks on some kernels, which would zero out the profiler arm's
sub-millisecond readings, while the per-thread clock stays precise.
Wall-clock cells still land in the artefact for the regression
watchdog.

A second matrix measures **worker tracing** (distributed tracing):
a full ``workers=2`` sharded exploration (``session.explore`` to the
worker cap — exploration is where chunk dispatch and worker-side span
capture live; a boundedness query early-exits on a pump and would time
noise), spans off (``workers`` arm: a disabled tracer, so the dispatch
protocol carries no trace info and workers skip span construction
entirely) versus spans on (``workers_traced``: JSONL tracing, so every
chunk runs under a real buffering worker-side tracer whose records
ship back with the results and are re-based by the coordinator).
These arms are timed on **wall clock** — the traced work happens in
worker *processes*, invisible to the coordinator's thread-CPU clock —
and interleaved like the main matrix.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]

Writes ``BENCH_obs_overhead.json`` (``repro-bench/1`` schema).  The
acceptance bar: **disabled-vs-baseline, recorder-vs-baseline,
profiler-vs-baseline AND worker-tracing aggregate overhead < 5%**; the
artefact records the percentages under ``results.aggregate``.
"""

from __future__ import annotations

import contextlib
import os
import sys
import tempfile
import time

from _harness import BenchHarness
from repro.analysis import boundedness
from repro.analysis.session import AnalysisSession
from repro.errors import AnalysisBudgetExceeded
from repro.obs import JsonlSink, NOOP_SPAN, SamplingProfiler, Tracer
from repro.obs.metrics import GaugeMetric
from repro.zoo import ZOO_WQO_BENCH

MAX_STATES = 2_000
REPEATS = 7

ARMS = ("baseline", "disabled", "recorder", "traced", "profiler")

#: Worker-tracing matrix: sharded sessions are slower to build (process
#: spawn) and wall-clock timed, so fewer repeats on a scheme subset —
#: widemix4 explored to WORKER_MAX_STATES runs ~0.5s/repeat, large
#: enough that per-chunk tracing cost is measured, not timer noise.
WORKER_ARMS = ("workers", "workers_traced")
WORKER_REPEATS = 5
WORKER_SCHEMES = [("widemix4", 1)]
WORKER_MAX_STATES = 2_000
WORKERS = 2


@contextlib.contextmanager
def _obs_stubbed():
    """Temporarily strip the obs hooks down to no-ops (the baseline arm).

    Approximates the pre-instrumentation engine: the call sites stay (the
    whole point is measuring their residual cost is what we *cannot*
    remove), but gauge sampling, span bookkeeping, and events all reduce
    to constant-time stubs.
    """
    originals = (GaugeMetric.set, Tracer.span, Tracer.event)
    GaugeMetric.set = lambda self, value: None
    Tracer.span = lambda self, name, **attrs: NOOP_SPAN
    Tracer.event = lambda self, name, **attrs: None
    try:
        yield
    finally:
        GaugeMetric.set, Tracer.span, Tracer.event = originals


def _run_boundedness(scheme, tracer):
    session = AnalysisSession(scheme, tracer=tracer)
    try:
        verdict = boundedness(scheme, max_states=MAX_STATES, session=session)
        return {"holds": verdict.holds}
    except AnalysisBudgetExceeded as exc:
        return {"budget_exceeded": True, "explored": exc.explored}


def _run_explore_sharded(scheme, tracer):
    """One cold sharded exploration (pool spawn + explore + reap, timed)."""
    session = AnalysisSession(scheme, tracer=tracer, workers=WORKERS)
    try:
        session.explore(WORKER_MAX_STATES)
        return {
            "states": len(session.graph.states),
            "transitions": session.graph.num_transitions,
        }
    finally:
        session.close()


def _worker_tracing_matrix(harness, repeats):
    """Best-of wall times for the workers / workers_traced arms."""
    trace_path = os.path.join(
        tempfile.gettempdir(), "bench_obs_workers.jsonl"
    )
    cells = []
    totals = {arm: 0.0 for arm in WORKER_ARMS}
    for name, index in WORKER_SCHEMES:
        factory = ZOO_WQO_BENCH[index][1]
        assert ZOO_WQO_BENCH[index][0] == name, "scheme table moved"
        row = {"scheme": name, "workers": WORKERS}
        outcomes = {}
        best = {arm: None for arm in WORKER_ARMS}
        _run_explore_sharded(factory(), Tracer())  # warmup (spawn, caches)
        for _ in range(repeats):
            for arm in WORKER_ARMS:
                traced = arm == "workers_traced"
                tracer = Tracer(JsonlSink(trace_path)) if traced else Tracer()
                wall, outcomes[arm] = harness.measure(
                    f"{name}/{arm}",
                    lambda: _run_explore_sharded(factory(), tracer),
                    warmup=0,
                    repeats=1,
                )
                if traced:
                    tracer.close()
                if best[arm] is None or wall < best[arm]:
                    best[arm] = wall
        if outcomes["workers_traced"] != outcomes["workers"]:
            raise AssertionError(
                f"{name}: worker arms disagree: {outcomes!r}"
            )
        for arm in WORKER_ARMS:
            totals[arm] += best[arm]
            row[f"{arm}_seconds"] = best[arm]
        row["worker_tracing_overhead_pct"] = (
            100.0
            * (row["workers_traced_seconds"] - row["workers_seconds"])
            / row["workers_seconds"]
        )
        row["outcome"] = outcomes["workers"]
        cells.append(row)
    with contextlib.suppress(OSError):
        os.remove(trace_path)
    return cells, totals


def run(smoke: bool = False) -> tuple:
    repeats = 1 if smoke else REPEATS
    harness = BenchHarness("obs_overhead", warmup=1, repeats=repeats)
    trace_path = os.path.join(tempfile.gettempdir(), "bench_obs_overhead.jsonl")
    cells = []
    totals = {arm: 0.0 for arm in ARMS}
    totals_cpu = {arm: 0.0 for arm in ARMS}
    for name, factory in ZOO_WQO_BENCH:
        row = {"scheme": name}
        outcomes = {}
        best = {arm: None for arm in ARMS}
        best_cpu = {arm: None for arm in ARMS}
        # interleave the arms round-robin (one repeat each per round)
        # so slow machine drift hits every arm equally instead of
        # masquerading as per-arm overhead
        trace_sink = JsonlSink(trace_path)
        trace_tracer = Tracer(trace_sink)

        def one(arm):
            if arm == "baseline":
                run = lambda: _run_boundedness(factory(), Tracer())
            elif arm == "disabled":
                run = lambda: _run_boundedness(factory(), Tracer())
            elif arm == "recorder":
                # tracer=None is the shipped default: the ambient recorder
                run = lambda: _run_boundedness(factory(), None)
            elif arm == "profiler":
                # recorder default + active sampling profiler; start/stop
                # lands inside the timed region because a profiled run
                # pays for it too
                def run():
                    with SamplingProfiler():
                        return _run_boundedness(factory(), None)
            else:
                run = lambda: _run_boundedness(factory(), trace_tracer)
            cpu_box = {}

            def timed():
                t0 = time.thread_time()
                out = run()
                cpu_box["cpu"] = time.thread_time() - t0
                return out

            ctx = _obs_stubbed() if arm == "baseline" else contextlib.nullcontext()
            with ctx:
                wall, outcome = harness.measure(
                    f"{name}/{arm}", timed, warmup=0, repeats=1
                )
            return wall, cpu_box["cpu"], outcome

        _run_boundedness(factory(), Tracer())  # shared warmup (cache prime)
        for _ in range(repeats):
            for arm in ARMS:
                wall, cpu, outcomes[arm] = one(arm)
                if best[arm] is None or wall < best[arm]:
                    best[arm] = wall
                if best_cpu[arm] is None or cpu < best_cpu[arm]:
                    best_cpu[arm] = cpu
        trace_tracer.close()
        if any(outcomes[arm] != outcomes["baseline"] for arm in ARMS):
            raise AssertionError(f"{name}: arms disagree: {outcomes!r}")
        for arm in ARMS:
            totals[arm] += best[arm]
            totals_cpu[arm] += best_cpu[arm]
            row[f"{arm}_seconds"] = best[arm]
            row[f"{arm}_cpu_seconds"] = best_cpu[arm]
        base = row["baseline_cpu_seconds"]
        for arm in ARMS[1:]:
            row[f"{arm}_overhead_pct"] = (
                100.0 * (row[f"{arm}_cpu_seconds"] - base) / base
            )
        row["outcome"] = outcomes["disabled"]
        cells.append(row)
    worker_cells, worker_totals = _worker_tracing_matrix(
        harness, 1 if smoke else WORKER_REPEATS
    )
    aggregate = {f"{arm}_seconds": totals[arm] for arm in ARMS}
    aggregate.update({f"{arm}_cpu_seconds": totals_cpu[arm] for arm in ARMS})
    for arm in ARMS[1:]:
        aggregate[f"{arm}_overhead_pct"] = (
            100.0
            * (totals_cpu[arm] - totals_cpu["baseline"])
            / totals_cpu["baseline"]
        )
    for arm in WORKER_ARMS:
        aggregate[f"{arm}_seconds"] = worker_totals[arm]
    aggregate["worker_tracing_overhead_pct"] = (
        100.0
        * (worker_totals["workers_traced"] - worker_totals["workers"])
        / worker_totals["workers"]
    )
    results = {
        "benchmark": "obs_overhead",
        "smoke": smoke,
        "max_states": MAX_STATES,
        "repeats": repeats,
        "workload": (
            "boundedness, cold session per repeat, arms interleaved; "
            "overhead percentages from best-of CPU time"
        ),
        "cells": cells,
        "worker_cells": worker_cells,
        "aggregate": aggregate,
        "acceptance": {
            "disabled_overhead_budget_pct": 5.0,
            "recorder_overhead_budget_pct": 5.0,
            "profiler_overhead_budget_pct": 5.0,
            "worker_tracing_overhead_budget_pct": 5.0,
            "within_budget": (
                aggregate["disabled_overhead_pct"] < 5.0
                and aggregate["recorder_overhead_pct"] < 5.0
                and aggregate["profiler_overhead_pct"] < 5.0
                and aggregate["worker_tracing_overhead_pct"] < 5.0
            ),
        },
    }
    with contextlib.suppress(OSError):
        os.remove(trace_path)
    return results, harness


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    results, harness = run(smoke=smoke)
    agg = results["aggregate"]
    verdict = "PASS" if results["acceptance"]["within_budget"] else "FAIL"
    print(
        f"disabled overhead: {agg['disabled_overhead_pct']:+.2f}% "
        f"(baseline {agg['baseline_cpu_seconds']:.3f}s cpu, "
        f"disabled {agg['disabled_cpu_seconds']:.3f}s cpu)"
    )
    print(
        f"recorder overhead: {agg['recorder_overhead_pct']:+.2f}% "
        f"(recorder {agg['recorder_cpu_seconds']:.3f}s cpu)"
        f"  [budget < 5%: {verdict}]"
    )
    print(
        f"traced overhead  : {agg['traced_overhead_pct']:+.2f}% "
        f"(traced {agg['traced_cpu_seconds']:.3f}s cpu)"
    )
    print(
        f"profiler overhead: {agg['profiler_overhead_pct']:+.2f}% "
        f"(profiler {agg['profiler_cpu_seconds']:.3f}s cpu)"
    )
    print(
        f"worker tracing   : {agg['worker_tracing_overhead_pct']:+.2f}% "
        f"(workers {agg['workers_seconds']:.3f}s wall, "
        f"traced {agg['workers_traced_seconds']:.3f}s wall)"
    )
    if smoke:
        print("smoke run: JSON not written")
        return
    out = harness.write(results=results, meta={"max_states": MAX_STATES})
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
