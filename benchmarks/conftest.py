"""Shared benchmark configuration.

Each benchmark file regenerates one paper artefact (figure or theorem —
see DESIGN.md §4 and EXPERIMENTS.md); the fixtures here keep scheme
construction out of the measured regions.

Benchmarks run either as scripts (``python bench_*.py``) or under
pytest; both routes go through :class:`_harness.BenchHarness`, so every
``BENCH_*.json`` artefact carries the standardized ``repro-bench/1``
schema (``{schema, meta, metrics, spans, results}``) and stays
comparable across PRs — validated by ``check_bench_schema.py`` in CI.
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _harness import BenchHarness  # noqa: E402

from repro.zoo import fig2_scheme, sigma1  # noqa: E402


@pytest.fixture(scope="session")
def fig2():
    return fig2_scheme()


@pytest.fixture(scope="session")
def sigma1_state():
    return sigma1()


@pytest.fixture
def bench_harness(request):
    """A :class:`BenchHarness` named after the requesting test.

    Measure cells with ``harness.measure(cell, fn)``; on teardown, if any
    timed run was recorded, the fixture writes ``BENCH_<name>.json`` at
    the repository root in the ``repro-bench/1`` schema.
    """
    name = request.node.name
    for prefix in ("test_", "bench_"):
        if name.startswith(prefix):
            name = name[len(prefix):]
    harness = BenchHarness(name)
    yield harness
    if harness.metrics.counter("bench.runs").value:
        harness.write(results=None, meta={"pytest": request.node.nodeid})
