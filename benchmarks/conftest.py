"""Shared benchmark configuration.

Each benchmark file regenerates one paper artefact (figure or theorem —
see DESIGN.md §4 and EXPERIMENTS.md); the fixtures here keep scheme
construction out of the measured regions.
"""

import pytest

from repro.zoo import fig2_scheme, sigma1


@pytest.fixture(scope="session")
def fig2():
    return fig2_scheme()


@pytest.fixture(scope="session")
def sigma1_state():
    return sigma1()
