"""Methodology layer: CTL checking, layered safety verification,
profiling — the §5-style applications built on the framework."""

import pytest

from repro.analysis import analyze, check_ctl
from repro.analysis.ctl import AF, AG, EF, Not, node, terminated
from repro.interp import ProgramInterpretation, profile_run, verify_safety
from repro.lang import compile_source
from repro.lts import never_follows, never_occurs
from repro.programs import BARRIER_ROUNDS, FAN_OUT_SUM
from repro.zoo import bounded_spawner, terminating_chain


@pytest.fixture(scope="module")
def fan_out():
    return compile_source(FAN_OUT_SUM.source)


@pytest.fixture(scope="module")
def barrier():
    return compile_source(BARRIER_ROUNDS.source)


def test_ctl_af_terminated(benchmark, barrier):
    result = benchmark(check_ctl, barrier.scheme, AF(terminated()))
    assert result.holds


def test_ctl_nested_ag_ef(benchmark, barrier):
    formula = AG(EF(terminated()))
    result = benchmark(check_ctl, barrier.scheme, formula)
    assert result.holds


@pytest.mark.parametrize("children", [2, 4])
def test_ctl_scaling(benchmark, children):
    scheme = bounded_spawner(children)
    formula = AG(Not(node("mend")) | AF(terminated()))
    result = benchmark(check_ctl, scheme, formula)
    assert result.holds


def test_verify_safety_abstract_layer(benchmark, fan_out):
    verdict = benchmark(verify_safety, fan_out.scheme, never_occurs("crash"))
    assert verdict.holds and verdict.layer == "abstract"


def test_verify_safety_concrete_layer(benchmark, fan_out):
    prop = never_follows("acc:=(acc*10)", "acc:=(acc+1)")
    interpretation = ProgramInterpretation(fan_out)

    def check():
        return verify_safety(fan_out.scheme, prop, interpretation=interpretation)

    verdict = benchmark(check)
    assert verdict.holds


def test_profile_run(benchmark, barrier):
    interpretation = ProgramInterpretation(barrier)

    def run():
        return profile_run(barrier.scheme, interpretation)

    profile, final = benchmark(run)
    assert final.is_terminated()
    assert profile.waits_fired == 2


def test_analyze_battery(benchmark):
    scheme = terminating_chain(6)
    report = benchmark(analyze, scheme)
    assert report.conclusive
