"""FIG-5 / PROP-3: the operational semantics M_G.

Regenerates the σ1 → σ2 → σ3 → σ4 evolution as a descriptor replay and
measures successor generation on states of growing width/depth.
"""

import pytest

from repro.core.hstate import HState
from repro.core.semantics import AbstractSemantics
from repro.zoo import fig5_states


def test_successors_of_sigma1(benchmark, fig2, sigma1_state):
    semantics = AbstractSemantics(fig2)
    transitions = benchmark(semantics.successors, sigma1_state)
    assert transitions  # Prop. 3: non-empty states have successors


def test_fig5_replay(benchmark, fig2):
    semantics = AbstractSemantics(fig2)
    states = fig5_states()
    descriptors = [("q10", "call", 0), ("q1", "call", 0), ("q9", "end", None)]

    def replay():
        return semantics.replay(states[0], descriptors)

    trace = benchmark(replay)
    assert trace[-1].target == states[3]


@pytest.mark.parametrize("width", [1, 8, 32])
def test_successor_generation_scales_with_width(benchmark, fig2, width):
    semantics = AbstractSemantics(fig2)
    state = HState.of(*(["q7"] * width))
    transitions = benchmark(semantics.successors, state)
    assert len(transitions) == 2 * width  # each test token has 2 branches


@pytest.mark.parametrize("depth", [2, 8, 24])
def test_successor_generation_scales_with_depth(benchmark, fig2, depth):
    semantics = AbstractSemantics(fig2)
    state = HState.parse("q12," + "{q12," * (depth - 1) + "{q7}" + "}" * (depth - 1))
    transitions = benchmark(semantics.successors, state)
    # only the innermost token (q7, childless) and no blocked wait can move
    assert all(t.node == "q7" for t in transitions)
