"""THM-4: the four decision problems — reachability, node reachability,
mutual exclusion and boundedness — on bounded and unbounded schemes."""

import pytest

from repro.analysis import (
    boundedness,
    mutually_exclusive,
    node_reachable,
    state_reachable,
)
from repro.core.hstate import HState
from repro.zoo import (
    bounded_spawner,
    call_ladder,
    deep_recursion,
    fig2_scheme,
    mutex_pair,
    racing_writers,
    spawner_loop,
)


class TestReachability:
    def test_state_reachability_positive(self, benchmark, fig2):
        target = HState.parse("q2,{q7,q7}")
        verdict = benchmark(state_reachable, fig2, target)
        assert verdict.holds

    def test_state_reachability_negative_bounded(self, benchmark):
        scheme = bounded_spawner(3)
        target = HState.parse("c0,{c0}")
        verdict = benchmark(state_reachable, scheme, target)
        assert not verdict.holds


class TestNodeReachability:
    def test_node_reachable_on_fig2(self, benchmark, fig2):
        verdict = benchmark(node_reachable, fig2, "q5")
        assert verdict.holds

    def test_node_unreachable_backward(self, benchmark):
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.test("m0", "b", then="m1", orelse="m2")
        b.pcall("m1", invoked="c0", succ="m0")
        b.end("m2")
        b.action("c0", "work", "c1")
        b.end("c1")
        b.end("ghost")
        scheme = b.build(root="m0")
        verdict = benchmark(node_reachable, scheme, "ghost", max_states=300)
        assert not verdict.holds and verdict.exact


class TestMutualExclusion:
    def test_exclusive_pair(self, benchmark):
        scheme = mutex_pair()
        verdict = benchmark(mutually_exclusive, scheme, "m0", "c0")
        assert verdict.holds

    def test_conflicting_pair(self, benchmark):
        scheme = racing_writers()
        verdict = benchmark(mutually_exclusive, scheme, "m1", "c0")
        assert not verdict.holds


class TestBoundedness:
    @pytest.mark.parametrize("children", [2, 4, 6])
    def test_bounded_family(self, benchmark, children):
        scheme = bounded_spawner(children)
        verdict = benchmark(boundedness, scheme)
        assert verdict.holds

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_ladder_family(self, benchmark, depth):
        scheme = call_ladder(depth)
        verdict = benchmark(boundedness, scheme)
        assert verdict.holds

    def test_unbounded_wait_free(self, benchmark):
        verdict = benchmark(boundedness, spawner_loop())
        assert not verdict.holds and verdict.exact

    def test_unbounded_with_wait_replay(self, benchmark):
        verdict = benchmark(boundedness, deep_recursion())
        assert not verdict.holds

    def test_unbounded_fig2(self, benchmark, fig2):
        verdict = benchmark(boundedness, fig2, max_states=20_000)
        assert not verdict.holds
