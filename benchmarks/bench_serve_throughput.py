"""Daemon-vs-fork throughput benchmark for ``repro.serve`` (PR 6).

The serving claim in one number: a warm-pool daemon answering a mixed
zoo workload sustains at least **2×** the queries/sec of the historical
fork-per-query model (one fresh process, one cold session, one query,
exit).  Both arms run the same workload at the same concurrency:

* **workload** — the ``ZOO_WQO_BENCH`` families (deep_pipeline /
  wide_mix / mixed_grove) × four procedures (boundedness, halts,
  node_reachable, normed), every query capped at ``MAX_STATES``;
* **daemon arm** — one :class:`~repro.serve.ServeDaemon` on a unix
  socket with the families pre-pooled; ``CLIENTS`` threads each drive a
  :class:`~repro.serve.ServeClient` through the full mix;
* **fork arm** — every query is its own ``python -c`` subprocess paying
  interpreter start, imports and a cold exploration, with the same
  ``CLIENTS``-way concurrency.

The bench double-checks the differential gate while it measures: the
two arms' :meth:`~repro.api.AnalysisResponse.comparable` views must be
identical per query, or the artefact records the drift and fails
acceptance.

Run as a script (``--smoke`` shrinks it for CI)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py

Writes ``BENCH_serve_throughput.json`` at the repository root in the
``repro-bench/1`` schema; ``results.acceptance.within_budget`` is the
committed ≥2× claim ``watch_regressions.py`` audits.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

from _harness import BenchHarness
from repro.api import AnalysisRequest, execute
from repro.obs import scheme_fingerprint
from repro.serve import ServeClient, daemon_in_thread
from repro.zoo import ZOO_WQO_BENCH

#: State cap per query: cheap enough to repeat, deep enough to amortise.
MAX_STATES = 4_000

#: Concurrent clients (threads / concurrent subprocesses) per arm.
CLIENTS = 4

PROCEDURES = ("boundedness", "halts", "node_reachable", "normed")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The fork arm's per-query body: fresh interpreter, cold session.
_FORK_SNIPPET = """\
import json, sys
from repro.api import AnalysisRequest, execute
from repro.obs import scheme_fingerprint
from repro.zoo import ZOO_WQO_BENCH
family, procedure, params = sys.argv[1], sys.argv[2], json.loads(sys.argv[3])
scheme = dict(ZOO_WQO_BENCH)[family]()
response = execute(
    AnalysisRequest(
        procedure=procedure,
        fingerprint=scheme_fingerprint(scheme),
        params=params,
    ),
    scheme=scheme,
)
print(json.dumps(response.comparable()))
"""


def _workload() -> List[Tuple[str, str, Dict[str, Any]]]:
    """(family, procedure, params) — the mixed query matrix, 12 entries."""
    queries = []
    for family, factory in ZOO_WQO_BENCH:
        scheme = factory()
        node = sorted(scheme.node_ids)[0]
        for procedure in PROCEDURES:
            params: Dict[str, Any] = {"max_states": MAX_STATES}
            if procedure == "node_reachable":
                params["node"] = node
            queries.append((family, procedure, params))
    return queries


def _key(family: str, procedure: str, params: Dict[str, Any]) -> str:
    return f"{family}/{procedure}"


def _run_threads(count: int, body) -> None:
    threads = [threading.Thread(target=body, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def run_daemon_arm(
    harness: BenchHarness,
    queries,
    fingerprints: Dict[str, str],
    socket_path: str,
    *,
    clients: int,
    repeats: int,
) -> Tuple[float, Dict[str, Any]]:
    """Best seconds for ``clients`` threads each running the full mix."""
    answers: Dict[str, Any] = {}
    failures: List[BaseException] = []

    def mix(_index: int) -> None:
        try:
            with ServeClient(socket_path) as client:
                for family, procedure, params in queries:
                    response = client.query(
                        procedure,
                        fingerprint=fingerprints[family],
                        **params,
                    )
                    answers[_key(family, procedure, params)] = (
                        response.comparable()
                    )
        except Exception as error:  # noqa: BLE001 - surfaced below
            failures.append(error)

    # one un-timed round warms the pool: the daemon's steady state is
    # exactly what this benchmark claims to measure
    _run_threads(clients, mix)
    best, _ = harness.measure(
        "daemon", lambda: _run_threads(clients, mix), warmup=0, repeats=repeats
    )
    if failures:
        raise RuntimeError(f"daemon arm failed: {failures[0]!r}")
    return best, answers


def run_fork_arm(
    harness: BenchHarness,
    queries,
    *,
    clients: int,
    repeats: int,
) -> Tuple[float, Dict[str, Any]]:
    """Best seconds for the same workload, one subprocess per query."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    answers: Dict[str, Any] = {}
    failures: List[str] = []
    gate = threading.Semaphore(clients)

    def one(family: str, procedure: str, params: Dict[str, Any]) -> None:
        with gate:
            proc = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    _FORK_SNIPPET,
                    family,
                    procedure,
                    json.dumps(params),
                ],
                env=env,
                capture_output=True,
                text=True,
            )
        if proc.returncode != 0:
            failures.append(proc.stderr.strip()[-400:])
            return
        answers[_key(family, procedure, params)] = json.loads(
            proc.stdout.strip().splitlines()[-1]
        )

    def full_mix() -> None:
        # clients× the per-client mix, matching the daemon arm's volume
        jobs = [
            threading.Thread(target=one, args=query)
            for query in queries
            for _ in range(clients)
        ]
        for job in jobs:
            job.start()
        for job in jobs:
            job.join()

    best, _ = harness.measure("fork", full_mix, warmup=0, repeats=repeats)
    if failures:
        raise RuntimeError(f"fork arm failed: {failures[0]}")
    return best, answers


def run(
    *, clients: int = CLIENTS, repeats: int = 2, smoke: bool = False
) -> Tuple[pathlib.Path, Dict[str, Any]]:
    if smoke:
        clients, repeats = 2, 1
    harness = BenchHarness("serve_throughput", warmup=0, repeats=repeats)
    queries = _workload()
    total_queries = len(queries) * clients

    tmp = f"/tmp/rpb-{uuid.uuid4().hex[:8]}"
    os.makedirs(tmp, exist_ok=True)
    socket_path = os.path.join(tmp, "s.sock")
    fingerprints: Dict[str, str] = {}
    with daemon_in_thread(socket_path, concurrency=clients) as daemon:
        for family, factory in ZOO_WQO_BENCH:
            fingerprints[family] = daemon.pool.adopt(factory()).fingerprint
        daemon_best, daemon_answers = run_daemon_arm(
            harness,
            queries,
            fingerprints,
            socket_path,
            clients=clients,
            repeats=repeats,
        )
    fork_best, fork_answers = run_fork_arm(
        harness, queries, clients=clients, repeats=1 if smoke else repeats
    )

    drift = {
        key: {"daemon": daemon_answers.get(key), "fork": fork_answers.get(key)}
        for key in sorted(set(daemon_answers) | set(fork_answers))
        if daemon_answers.get(key) != fork_answers.get(key)
    }
    daemon_qps = total_queries / daemon_best
    fork_qps = total_queries / fork_best
    speedup = daemon_qps / fork_qps
    results = {
        "workload": {
            "families": [name for name, _ in ZOO_WQO_BENCH],
            "procedures": list(PROCEDURES),
            "queries_per_client": len(queries),
            "clients": clients,
            "total_queries": total_queries,
            "max_states": MAX_STATES,
            "smoke": smoke,
        },
        "daemon": {"seconds": daemon_best, "qps": daemon_qps},
        "fork": {"seconds": fork_best, "qps": fork_qps},
        "speedup": speedup,
        "verdict_drift": drift,
        "acceptance": {
            "within_budget": speedup >= 2.0 and not drift,
            "criterion": "warm-pool daemon ≥ 2x fork-per-query queries/sec "
            "with zero verdict drift between arms",
        },
    }
    out: Optional[pathlib.Path] = None
    out = harness.write(results=results)
    return out, results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=CLIENTS, help="concurrent clients"
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timed repeats per arm"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (2 clients, 1 repeat)",
    )
    args = parser.parse_args(argv)
    out, results = run(
        clients=args.clients, repeats=args.repeats, smoke=args.smoke
    )
    print(f"workload   : {results['workload']['total_queries']} queries "
          f"({results['workload']['clients']} clients)")
    print(f"daemon     : {results['daemon']['seconds']:.3f}s "
          f"({results['daemon']['qps']:.1f} q/s)")
    print(f"fork       : {results['fork']['seconds']:.3f}s "
          f"({results['fork']['qps']:.1f} q/s)")
    print(f"speedup    : {results['speedup']:.2f}x")
    if results["verdict_drift"]:
        print(f"DRIFT      : {sorted(results['verdict_drift'])}")
    print(f"acceptance : within_budget="
          f"{results['acceptance']['within_budget']}")
    print(f"artefact   : {out}")
    return 0 if results["acceptance"]["within_budget"] else 1


if __name__ == "__main__":
    sys.exit(main())
