"""EXPR-PA / EXPR-PN: the expressiveness comparison material.

RP ≡ PA (language equality on the structured fragment, checked as bounded
trace equality) and the RP-vs-Petri-net witness systems.
"""

import pytest

from repro.lang import parse_program
from repro.pa import traces_agree, translate_program
from repro.petri import (
    anbncn_completed_words,
    anbncn_net,
    backward_coverable,
    is_bounded,
    nested_anbn_scheme,
    scheme_terminated_words,
    token_counting_abstraction,
)
from repro.zoo import spawner_loop

NESTED = """
program main { pcall p; wait; done; end; }
procedure p { if t then { a; pcall p; wait; b; } end; }
"""


def test_translate_to_pa(benchmark):
    program = parse_program(NESTED)
    system = benchmark(translate_program, program)
    assert system.definitions


@pytest.mark.parametrize("length", [4, 6])
def test_rp_pa_trace_equality(benchmark, length):
    program = parse_program(NESTED)
    result = benchmark(traces_agree, program, length)
    assert result


def test_anbncn_language_generation(benchmark):
    net = anbncn_net()
    words = benchmark(anbncn_completed_words, net, 9)
    assert tuple("aabbcc") in words


def test_nested_anbn_language_generation(benchmark):
    scheme = nested_anbn_scheme()
    words = benchmark(scheme_terminated_words, scheme, 8)
    assert tuple("aaabbb") in words


def test_counting_abstraction_boundedness(benchmark):
    net = token_counting_abstraction(spawner_loop())
    result = benchmark(is_bounded, net)
    assert not result


def test_petri_backward_coverability(benchmark):
    net = anbncn_net()
    target = net.marking(count_ab=4)
    result = benchmark(backward_coverable, net, [target])
    assert result


def test_bpp_embedding_traces(benchmark):
    from repro.petri import traces_match
    from repro.petri.net import PetriNet

    net = PetriNet(
        places=["root", "left", "right"],
        transitions=[
            {"name": "split", "pre": {"root": 1}, "post": {"left": 1, "right": 1}},
            {"name": "lwork", "pre": {"left": 1}, "post": {}},
            {"name": "rwork", "pre": {"right": 1}, "post": {"right": 1}},
        ],
        initial={"root": 1},
    )
    result = benchmark(traces_match, net, 4)
    assert result
