"""FIG-1 / FIG-2: the language front-end on the paper's program.

Regenerates Fig. 1 → Fig. 2: parsing the program text, pretty-printing it
back, compiling it to the scheme, and checking isomorphism against the
hand-built Fig. 2 reconstruction.
"""

from repro.core.isomorphism import isomorphic
from repro.lang import compile_source, parse_program, render_program
from repro.zoo import FIG1_PROGRAM, fig2_scheme


def test_parse_fig1(benchmark):
    program = benchmark(parse_program, FIG1_PROGRAM)
    assert program.main.name == "main"


def test_pretty_roundtrip_fig1(benchmark):
    program = parse_program(FIG1_PROGRAM)

    def roundtrip():
        return parse_program(render_program(program))

    again = benchmark(roundtrip)
    assert again == program


def test_compile_fig1(benchmark):
    compiled = benchmark(compile_source, FIG1_PROGRAM)
    assert len(compiled.scheme) == 13


def test_fig2_isomorphism_check(benchmark):
    compiled = compile_source(FIG1_PROGRAM)
    reference = fig2_scheme()
    result = benchmark(isomorphic, compiled.scheme, reference)
    assert result
