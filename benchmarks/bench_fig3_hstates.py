"""FIG-3 / FIG-4: hierarchical-state construction, notation, algebra,
and the embedding ⪯ that Section 3 builds on."""

import pytest

from repro.core.embedding import embeds
from repro.core.hstate import HState

SIGMA1 = "q1,{q9,{q11},q12,{q10}}"


def _wide_state(width: int) -> HState:
    return HState.of(*[("q1", ["q9", ("q12", ["q10"])]) for _ in range(width)])


def test_parse_sigma1(benchmark):
    state = benchmark(HState.parse, SIGMA1)
    assert state.size == 5


def test_notation_roundtrip(benchmark, sigma1_state):
    def roundtrip():
        return HState.parse(sigma1_state.to_notation())

    assert benchmark(roundtrip) == sigma1_state


def test_multiset_addition(benchmark, sigma1_state):
    other = HState.parse("q2,{q7},q7")

    result = benchmark(lambda: sigma1_state + other)
    assert result.size == 8


def test_marking_view(benchmark, sigma1_state):
    counts = benchmark(sigma1_state.node_multiset)
    assert sum(counts.values()) == 5


@pytest.mark.parametrize("width", [2, 6, 12])
def test_embedding_width(benchmark, width):
    small = _wide_state(width - 1)
    big = _wide_state(width)
    assert benchmark(embeds, small, big)


def test_embedding_negative(benchmark):
    small = HState.parse("q1,{q9},q1,{q12}")
    big = HState.parse("q1,{q9,q12},q2")
    assert not benchmark(embeds, small, big)


def test_embedding_deep_chain(benchmark):
    deep_small = HState.parse("a,{a,{a,{a}}}")
    deep_big = HState.parse("a,{x,{a,{y,{a,{a,{z}}}}}}")
    assert benchmark(embeds, deep_small, deep_big)
