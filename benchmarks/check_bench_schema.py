"""Validate BENCH_*.json artefacts against the ``repro-bench/1`` schema.

CI runs this after regenerating benchmarks: every BENCH artefact at the
repository root (or every file passed explicitly) must be a JSON object

* with ``"schema": "repro-bench/1"``,
* a ``meta`` object naming the ``benchmark`` (plus ``python`` and
  ``platform`` strings),
* a ``metrics`` object whose entries look like
  :meth:`repro.obs.MetricsRegistry.as_dict` output (``type`` one of
  counter/gauge/histogram with the matching value keys),
* a ``spans`` list of span/event records as written by
  :class:`repro.obs.JsonlSink`.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_schema.py [FILES...]

Exit code 0 when every artefact validates, 1 otherwise (with one line per
violation).  Legacy artefacts without the ``schema`` key are rejected —
regenerate them with the converted benchmarks.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any, List

EXPECTED_SCHEMA = "repro-bench/1"

_METRIC_KEYS = {
    "counter": {"value"},
    "gauge": {"value", "max", "min"},
    "histogram": {"count", "sum", "min", "max", "mean"},
}


def _check_metric(name: str, body: Any, errors: List[str]) -> None:
    if not isinstance(body, dict):
        errors.append(f"metrics[{name!r}]: not an object")
        return
    kind = body.get("type")
    if kind not in _METRIC_KEYS:
        errors.append(f"metrics[{name!r}]: unknown type {kind!r}")
        return
    missing = _METRIC_KEYS[kind] - body.keys()
    if missing:
        errors.append(
            f"metrics[{name!r}]: {kind} missing keys {sorted(missing)}"
        )
    labels = body.get("labels", {})
    if not isinstance(labels, dict):
        errors.append(f"metrics[{name!r}]: labels is not an object")
        return
    for label, child in labels.items():
        missing = _METRIC_KEYS[kind] - child.keys()
        if missing:
            errors.append(
                f"metrics[{name!r}]{label}: missing keys {sorted(missing)}"
            )


def _check_span(position: int, record: Any, errors: List[str]) -> None:
    if not isinstance(record, dict):
        errors.append(f"spans[{position}]: not an object")
        return
    kind = record.get("type")
    if kind == "span":
        missing = {"id", "name", "start", "wall", "cpu"} - record.keys()
    elif kind == "event":
        missing = {"name", "time"} - record.keys()
    else:
        errors.append(f"spans[{position}]: unknown record type {kind!r}")
        return
    if missing:
        errors.append(f"spans[{position}]: {kind} missing keys {sorted(missing)}")


def check_payload(payload: Any) -> List[str]:
    """All schema violations of one parsed BENCH payload (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    schema = payload.get("schema")
    if schema != EXPECTED_SCHEMA:
        errors.append(f"schema is {schema!r}, expected {EXPECTED_SCHEMA!r}")
    meta = payload.get("meta")
    if not isinstance(meta, dict):
        errors.append("meta: missing or not an object")
    else:
        if not isinstance(meta.get("benchmark"), str):
            errors.append("meta.benchmark: missing or not a string")
        for key in ("python", "platform"):
            if not isinstance(meta.get(key), str):
                errors.append(f"meta.{key}: missing or not a string")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics: missing or not an object")
    else:
        for name, body in metrics.items():
            _check_metric(name, body, errors)
    spans = payload.get("spans")
    if not isinstance(spans, list):
        errors.append("spans: missing or not a list")
    else:
        for position, record in enumerate(spans):
            _check_span(position, record, errors)
    return errors


def check_file(path: pathlib.Path) -> List[str]:
    """Schema violations of one artefact file (empty = valid)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [str(error)]
    return check_payload(payload)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        paths = [pathlib.Path(arg) for arg in argv]
    else:
        root = pathlib.Path(__file__).resolve().parent.parent
        paths = sorted(root.glob("BENCH_*.json"))
    if not paths:
        print("check_bench_schema: no BENCH_*.json artefacts found")
        return 1
    failed = False
    for path in paths:
        errors = check_file(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path.name}: {error}")
        else:
            print(f"{path.name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
