"""THM-10 / PROP-12: the Preservation Theorem machinery.

Measures exploration of ``M_I_G``, computation of the divergence-
preserving simulation ``⊑_d`` between concrete and abstract fragments,
and a full Prop. 12 safety transfer.
"""

from repro.analysis.explore import Explorer
from repro.interp import InterpretedExplorer, ProgramInterpretation
from repro.lang import compile_source
from repro.lts import d_simulates, map_lts, never_occurs, transfer_safety

SOURCE = """
global credit := 2;
program main {
    pcall worker;
    if credit > 0 then { credit := credit - 1; } else { log_empty; }
    wait;
    end;
}
procedure worker {
    credit := credit + 1;
    end;
}
"""


def _fragments():
    compiled = compile_source(SOURCE)
    interpretation = ProgramInterpretation(compiled)
    concrete = InterpretedExplorer(
        compiled.scheme, interpretation, max_states=50_000
    ).explore_or_raise()
    abstract = Explorer(compiled.scheme, max_states=50_000).explore_or_raise().to_lts()
    return concrete, abstract


def test_interpreted_exploration(benchmark):
    compiled = compile_source(SOURCE)
    interpretation = ProgramInterpretation(compiled)

    def explore():
        return InterpretedExplorer(
            compiled.scheme, interpretation, max_states=50_000
        ).explore_or_raise()

    lts = benchmark(explore)
    assert lts.states


def test_d_simulation_concrete_below_abstract(benchmark):
    concrete, abstract = _fragments()
    result = benchmark(d_simulates, concrete, abstract)
    assert result


def test_d_simulation_projection(benchmark):
    concrete, _ = _fragments()
    projected = map_lts(concrete, lambda g: g.forget())
    result = benchmark(d_simulates, concrete, projected)
    assert result


def test_safety_transfer(benchmark):
    concrete, abstract = _fragments()
    prop = never_occurs("crash")
    transferred, _why = benchmark(transfer_safety, concrete, abstract, prop)
    assert transferred
