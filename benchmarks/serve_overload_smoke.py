"""CI smoke check for serve-layer overload behaviour (PR 9).

Boots a deliberately tiny daemon (``concurrency=1``, ``max_queue=2``),
pins its one worker slot with a long exploration, then bursts more
queries than the admission bound and holds the resilience layer to its
contract:

* **bounded admission** — exactly ``burst - max_queue`` of the burst is
  shed with a structured ``overloaded`` rejection carrying a positive
  ``retry_after`` hint; nothing hangs, nothing queues unboundedly;
* **zero drift under pressure** — every *accepted* query (the pinned
  occupier and the queued remainder of the burst) answers exactly what
  a sequential in-process :func:`repro.api.execute` run answers;
* **retry to completion** — re-issuing every shed query through the
  client's retry loop (``max_retries`` high, jittered backoff seeded by
  the daemon's ``retry_after``) lands every one of them, drift-free;
* **health** — ``GET /v1/health`` answers 503 while saturated and 200
  once the backlog drains.

Run from the repository root::

    PYTHONPATH=src python benchmarks/serve_overload_smoke.py

Exits non-zero on any drift, miscounted shed, or unhealthy finish.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Dict, List, Optional

from repro.api import AnalysisRequest, execute
from repro.analysis import AnalysisSession
from repro.obs import scheme_fingerprint
from repro.serve import ServeClient, ServeOverloaded, daemon_in_thread
from repro.zoo import mixed_grove, wide_mix

#: One slot, two queue places: the third concurrent query is shed.
CONCURRENCY = 1
MAX_QUEUE = 2
#: Burst size; ``BURST - MAX_QUEUE`` sheds are expected.
BURST = 8
#: The occupier: long enough (~10s one-core) to pin the slot while the
#: whole burst arrives, heavy enough that it cannot short-circuit.
OCCUPIER_CAP = 30_000
QUICK_CAP = 400


def _health(port: int) -> tuple:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/v1/health", timeout=10
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main(argv: Optional[List[str]] = None) -> int:
    grove = mixed_grove(3, 3)
    quick = wide_mix(3)
    grove_fp = scheme_fingerprint(grove)
    quick_fp = scheme_fingerprint(quick)

    # oracles: the same two queries, sequentially, in this process
    oracle_quick = execute(
        AnalysisRequest(
            procedure="halts", fingerprint=quick_fp,
            params={"max_states": QUICK_CAP},
        ),
        scheme=quick,
        session=AnalysisSession(quick),
    ).comparable()
    oracle_occupier = execute(
        AnalysisRequest(
            procedure="boundedness", fingerprint=grove_fp,
            params={"max_states": OCCUPIER_CAP},
        ),
        scheme=grove,
        session=AnalysisSession(grove),
    ).comparable()

    tmp = f"/tmp/rps-{uuid.uuid4().hex[:8]}"
    os.makedirs(tmp, exist_ok=True)
    socket_path = os.path.join(tmp, "s.sock")

    failures: List[str] = []
    accepted: List[Any] = []
    sheds: List[float] = []
    lock = threading.Lock()

    with daemon_in_thread(
        socket_path,
        http_port=0,
        concurrency=CONCURRENCY,
        max_queue=MAX_QUEUE,
        flight_dir=tmp,
    ) as daemon:
        daemon.pool.adopt(grove)
        daemon.pool.adopt(quick)
        port = daemon.bound_http_port

        occupier_box: Dict[str, Any] = {}

        def occupy() -> None:
            try:
                with ServeClient(socket_path, timeout=600.0) as client:
                    occupier_box["response"] = client.query(
                        "boundedness",
                        fingerprint=grove_fp,
                        max_states=OCCUPIER_CAP,
                    )
            except Exception as error:  # noqa: BLE001 - reported below
                occupier_box["error"] = error

        occupier = threading.Thread(target=occupy)
        occupier.start()
        deadline = time.monotonic() + 60
        while daemon._pending < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        if daemon._pending < 1:
            print("FAILURE    : occupier never started executing")
            return 1

        saturated_status: List[tuple] = []

        def one(index: int) -> None:
            try:
                with ServeClient(
                    socket_path, timeout=600.0, max_retries=0
                ) as client:
                    response = client.query(
                        "halts",
                        fingerprint=quick_fp,
                        max_states=QUICK_CAP,
                        request_id=f"burst-{index}",
                    )
                with lock:
                    accepted.append(response.comparable())
            except ServeOverloaded as overloaded:
                with lock:
                    sheds.append(overloaded.retry_after)
            except Exception as error:  # noqa: BLE001 - reported below
                with lock:
                    failures.append(f"burst {index}: {error!r}")

        threads = [
            threading.Thread(target=one, args=(i,)) for i in range(BURST)
        ]
        for thread in threads:
            thread.start()
        # sample health while the slot is pinned and the queue is full
        time.sleep(0.3)
        saturated_status.append(_health(port))
        for thread in threads:
            thread.join()

        # retry phase: every shed query, re-issued with a retry budget,
        # must land once the backlog drains
        retried: List[Any] = []
        retries_spent = 0
        for index in range(len(sheds)):
            with ServeClient(
                socket_path,
                timeout=600.0,
                max_retries=120,
                backoff=0.2,
                backoff_max=2.0,
            ) as client:
                response = client.query(
                    "halts",
                    fingerprint=quick_fp,
                    max_states=QUICK_CAP,
                    request_id=f"retry-{index}",
                )
                retried.append(response.comparable())
                retries_spent += client.retries
        occupier.join(timeout=600.0)
        final_status, final_body = _health(port)
        shed_counter = daemon.shed

    expected_sheds = BURST - MAX_QUEUE
    drift = [c for c in accepted + retried if c != oracle_quick]
    if "error" in occupier_box:
        failures.append(f"occupier: {occupier_box['error']!r}")
    elif occupier_box["response"].comparable() != oracle_occupier:
        failures.append("occupier drifted under shed traffic")

    print(f"burst      : {BURST} queries at concurrency={CONCURRENCY}, "
          f"max_queue={MAX_QUEUE}")
    print(f"accepted   : {len(accepted)} answered from the queue")
    print(f"shed       : {len(sheds)} structured rejections "
          f"(daemon counter: {shed_counter}, "
          f"retry_after hints: {sorted(set(round(s, 3) for s in sheds))})")
    print(f"retried    : {len(retried)} shed queries landed "
          f"({retries_spent} client retries spent)")
    print(f"saturated  : health answered {saturated_status[0][0]} "
          f"(ready={saturated_status[0][1].get('ready')})")
    print(f"final      : health answered {final_status} "
          f"(ready={final_body.get('ready')})")
    print(f"drift      : {len(drift)} queries")
    for failure in failures:
        print(f"FAILURE    : {failure}")
    ok = (
        not failures
        and not drift
        and len(sheds) == expected_sheds
        and len(accepted) == BURST - expected_sheds
        and all(hint > 0 for hint in sheds)
        and shed_counter >= expected_sheds
        and len(retried) == expected_sheds
        and saturated_status[0][0] == 503
        and final_status == 200
        and final_body.get("ready") is True
    )
    print(f"smoke      : {'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
