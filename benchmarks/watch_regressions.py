"""Perf-regression watchdog over ``repro-bench/1`` artefacts.

The committed ``BENCH_*.json`` files at the repository root are the
project's perf baselines.  This script keeps them honest in two modes:

* **audit** (no ``--fresh``) — validate every committed baseline: the
  schema tag must be ``repro-bench/1``, the timing metrics must be
  well-formed, and any recorded acceptance verdict
  (``results.acceptance.within_budget``) must be true.  A baseline that
  was committed in a failing state is itself a regression.

* **compare** (``--fresh DIR``) — match freshly generated artefacts in
  *DIR* against the committed baselines by file name and flag

  - any ``bench.seconds{cell=...}`` timing that slowed beyond the
    tolerance band (default: > 25% relative AND > 5ms absolute — both
    must trip, so micro-cells can't alarm on scheduler noise and slow
    cells can't hide a real slide under the absolute floor), and
  - any acceptance verdict that flipped from passing to failing.

  Speedups and new cells are reported informationally, never fatal.
  A fresh artefact with **no committed baseline counterpart** is a new
  baseline, not a regression: it is schema-validated and audited (a new
  benchmark must still pass its own acceptance), then reported as a
  PASS-with-notice — landing a new ``BENCH_*.json`` is a one-step
  change.  Likewise a baseline present in the working tree but not yet
  tracked by git (best-effort ``git ls-files`` check) is noted as new.

Usage::

    python benchmarks/watch_regressions.py                 # audit baselines
    python benchmarks/watch_regressions.py --fresh OUT/    # compare run
    python benchmarks/watch_regressions.py --tolerance 40 --floor-ms 10 ...

Exit code 0 when clean, 1 on any regression (one line per finding), 2 on
usage/IO errors.  Dependency-free on purpose: CI runs it before the
package is importable-from-anywhere, and a watchdog that needs the code
it polices is no watchdog.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import Any, Dict, List, Optional, Set, Tuple

EXPECTED_SCHEMA = "repro-bench/1"

#: Relative slowdown a cell may show before it is flagged (percent).
DEFAULT_TOLERANCE_PCT = 25.0

#: Absolute slowdown a cell may show before it is flagged (milliseconds).
DEFAULT_FLOOR_MS = 5.0

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load(path: pathlib.Path) -> Dict[str, Any]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path.name}: top level is not a JSON object")
    schema = payload.get("schema")
    if schema != EXPECTED_SCHEMA:
        raise ValueError(
            f"{path.name}: schema is {schema!r}, expected {EXPECTED_SCHEMA!r}"
        )
    return payload


def bench_cells(payload: Dict[str, Any]) -> Dict[str, float]:
    """The per-cell best-of-N seconds recorded in a BENCH payload.

    Cells live in the metrics block as labelled children of the
    ``bench.seconds`` histogram; each child observed one value per
    harness run, so its ``min`` is the best-of-N figure.
    """
    metric = (payload.get("metrics") or {}).get("bench.seconds") or {}
    out: Dict[str, float] = {}
    for label, child in (metric.get("labels") or {}).items():
        value = child.get("min")
        if isinstance(value, (int, float)):
            out[label] = float(value)
    return out


def acceptance_flag(payload: Dict[str, Any]) -> Optional[bool]:
    """``results.acceptance.within_budget`` when present, else ``None``."""
    results = payload.get("results")
    if not isinstance(results, dict):
        return None
    acceptance = results.get("acceptance")
    if not isinstance(acceptance, dict):
        return None
    flag = acceptance.get("within_budget")
    return bool(flag) if flag is not None else None


def audit_baseline(payload: Dict[str, Any], name: str) -> List[str]:
    """Regressions recorded *inside* one committed baseline (empty = ok)."""
    problems = []
    if not bench_cells(payload):
        problems.append(f"{name}: no bench.seconds cells recorded")
    if acceptance_flag(payload) is False:
        problems.append(f"{name}: committed with within_budget=false")
    return problems


def compare(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    name: str,
    *,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
    floor_ms: float = DEFAULT_FLOOR_MS,
) -> Tuple[List[str], List[str]]:
    """``(regressions, notes)`` for one fresh artefact vs its baseline."""
    regressions: List[str] = []
    notes: List[str] = []
    base_cells = bench_cells(baseline)
    fresh_cells = bench_cells(fresh)
    floor = floor_ms / 1000.0
    for cell in sorted(base_cells):
        if cell not in fresh_cells:
            notes.append(f"{name}: cell {cell} missing from fresh run")
            continue
        base, now = base_cells[cell], fresh_cells[cell]
        delta = now - base
        pct = 100.0 * delta / base if base > 0 else float("inf")
        if delta > floor and pct > tolerance_pct:
            regressions.append(
                f"{name}: {cell} regressed {base * 1000:.2f}ms -> "
                f"{now * 1000:.2f}ms ({pct:+.1f}%, tolerance "
                f"{tolerance_pct:g}% and {floor_ms:g}ms)"
            )
        elif pct < -tolerance_pct and -delta > floor:
            notes.append(
                f"{name}: {cell} sped up {base * 1000:.2f}ms -> "
                f"{now * 1000:.2f}ms ({pct:+.1f}%)"
            )
    for cell in sorted(set(fresh_cells) - set(base_cells)):
        notes.append(f"{name}: new cell {cell} (no baseline)")
    base_flag, fresh_flag = acceptance_flag(baseline), acceptance_flag(fresh)
    if base_flag is not False and fresh_flag is False:
        regressions.append(
            f"{name}: acceptance flipped to within_budget=false"
        )
    return regressions, notes


def tracked_baselines() -> Optional[Set[str]]:
    """Names of ``BENCH_*.json`` files git tracks, or ``None`` off-repo.

    Best-effort on purpose: the watchdog must work from a tarball or a
    partial checkout, where "is it committed?" has no answer.
    """
    try:
        out = subprocess.run(
            ["git", "ls-files", "--", "BENCH_*.json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return {pathlib.Path(line).name for line in out.stdout.splitlines() if line}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="watch_regressions",
        description="compare fresh repro-bench/1 results against the "
        "committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "baselines",
        nargs="*",
        help="baseline artefacts (default: BENCH_*.json at the repo root)",
    )
    parser.add_argument(
        "--fresh",
        metavar="DIR",
        help="directory of freshly generated artefacts to compare "
        "(default: only audit the committed baselines)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE_PCT,
        metavar="PCT",
        help=f"relative tolerance band (default {DEFAULT_TOLERANCE_PCT:g}%%)",
    )
    parser.add_argument(
        "--floor-ms",
        type=float,
        default=DEFAULT_FLOOR_MS,
        metavar="MS",
        help=f"absolute tolerance floor (default {DEFAULT_FLOOR_MS:g}ms)",
    )
    args = parser.parse_args(argv)

    if args.baselines:
        paths = [pathlib.Path(arg) for arg in args.baselines]
    else:
        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        print("watch_regressions: no baseline artefacts found")
        return 2

    regressions: List[str] = []
    notes: List[str] = []
    compared = 0
    tracked = tracked_baselines()
    for path in paths:
        try:
            baseline = _load(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"watch_regressions: {error}")
            return 2
        regressions.extend(audit_baseline(baseline, path.name))
        if tracked is not None and path.name not in tracked:
            notes.append(
                f"{path.name}: new baseline (in the working tree but not "
                f"yet tracked by git) — audited, PASS with notice"
            )
        if args.fresh:
            fresh_path = pathlib.Path(args.fresh) / path.name
            if not fresh_path.exists():
                notes.append(f"{path.name}: no fresh artefact in {args.fresh}")
                continue
            try:
                fresh = _load(fresh_path)
            except (OSError, ValueError, json.JSONDecodeError) as error:
                print(f"watch_regressions: {error}")
                return 2
            found, info = compare(
                baseline,
                fresh,
                path.name,
                tolerance_pct=args.tolerance,
                floor_ms=args.floor_ms,
            )
            regressions.extend(found)
            notes.extend(info)
            compared += 1

    if args.fresh:
        # fresh artefacts with no baseline counterpart: new benchmarks
        # landing for the first time — validate and audit them, but a
        # missing baseline is a notice, never a failure
        known = {path.name for path in paths}
        for fresh_path in sorted(pathlib.Path(args.fresh).glob("BENCH_*.json")):
            if fresh_path.name in known:
                continue
            try:
                fresh = _load(fresh_path)
            except (OSError, ValueError, json.JSONDecodeError) as error:
                print(f"watch_regressions: {error}")
                return 2
            regressions.extend(audit_baseline(fresh, fresh_path.name))
            notes.append(
                f"{fresh_path.name}: new baseline (no committed "
                f"counterpart) — audited, PASS with notice"
            )

    for note in notes:
        print(f"note: {note}")
    if regressions:
        for finding in regressions:
            print(f"REGRESSION: {finding}")
        print(f"watch_regressions: {len(regressions)} regression(s)")
        return 1
    mode = (
        f"compared {compared} artefact(s) against baselines"
        if args.fresh
        else f"audited {len(paths)} baseline(s)"
    )
    print(f"watch_regressions: clean ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
