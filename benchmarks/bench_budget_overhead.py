"""Overhead of resource governance on the WQO benchmark families.

The robustness layer threads a cooperative :class:`repro.robust.Budget`
through every governed procedure: one ``Budget.check`` per unit of work
(a state expansion, a saturation round), where cancellation and deadline
are a flag read plus one clock call and memory is sampled every
``check_interval`` checks.  This benchmark quantifies that cost, per arm:

* **ungoverned** — ``budget=None``: the pre-governance hot path (the
  ambient-budget test in the loops short-circuits on ``None``);
* **governed** — a live budget with a generous deadline, a memory
  ceiling, and a cancel token, none of which ever trips: what every
  ``rpcheck --deadline/--mem-limit`` run pays.

Workload: one cold ``boundedness`` query per scheme of
:data:`repro.zoo.ZOO_WQO_BENCH` (the embedding/exploration-heavy
matrix), best-of-N with fresh scheme and session per repeat.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_budget_overhead.py [--smoke]

Writes ``BENCH_budget_overhead.json`` (``repro-bench/1`` schema).  The
PR acceptance bar: **governed-vs-ungoverned aggregate overhead < 5%**;
the artefact records the percentage under
``results.aggregate.governed_overhead_pct``.
"""

from __future__ import annotations

import sys

from _harness import BenchHarness
from repro.analysis import boundedness
from repro.analysis.session import AnalysisSession
from repro.errors import AnalysisBudgetExceeded
from repro.robust import Budget, CancelToken
from repro.zoo import ZOO_WQO_BENCH

MAX_STATES = 2_000
REPEATS = 5
#: A ceiling no bench machine reaches (the sampling still happens).
MEMORY_CEILING_BYTES = 1 << 40


def _governing_budget() -> Budget:
    return Budget(
        deadline=3_600.0,
        max_memory_bytes=MEMORY_CEILING_BYTES,
        cancel=CancelToken(),
    )


def _run_boundedness(scheme, budget):
    session = AnalysisSession(scheme)
    try:
        verdict = boundedness(
            scheme, max_states=MAX_STATES, session=session, budget=budget
        )
        return {"holds": verdict.holds}
    except AnalysisBudgetExceeded as exc:
        return {"budget_exceeded": True, "explored": exc.explored}


def run(smoke: bool = False) -> tuple:
    repeats = 1 if smoke else REPEATS
    harness = BenchHarness("budget_overhead", warmup=1, repeats=repeats)
    cells = []
    totals = {"ungoverned": 0.0, "governed": 0.0}
    checks = 0
    for name, factory in ZOO_WQO_BENCH:
        ungoverned, out_plain = harness.measure(
            f"{name}/ungoverned", lambda: _run_boundedness(factory(), None)
        )
        budgets = []

        def governed_arm():
            budget = _governing_budget()
            budgets.append(budget)
            return _run_boundedness(factory(), budget)

        governed, out_governed = harness.measure(f"{name}/governed", governed_arm)
        if out_plain != out_governed:
            raise AssertionError(
                f"{name}: a never-exhausted budget changed the verdict: "
                f"{out_plain!r} vs {out_governed!r}"
            )
        if not any(b.checks for b in budgets):
            raise AssertionError(f"{name}: the governed arm never checked its budget")
        checks += max(b.checks for b in budgets)
        totals["ungoverned"] += ungoverned
        totals["governed"] += governed
        cells.append(
            {
                "scheme": name,
                "ungoverned_seconds": ungoverned,
                "governed_seconds": governed,
                "governed_overhead_pct": 100.0
                * (governed - ungoverned)
                / ungoverned,
                "budget_checks": max(b.checks for b in budgets),
                "outcome": out_governed,
            }
        )
    aggregate = {
        "ungoverned_seconds": totals["ungoverned"],
        "governed_seconds": totals["governed"],
        "governed_overhead_pct": 100.0
        * (totals["governed"] - totals["ungoverned"])
        / totals["ungoverned"],
        "budget_checks": checks,
    }
    results = {
        "benchmark": "budget_overhead",
        "smoke": smoke,
        "max_states": MAX_STATES,
        "repeats": repeats,
        "workload": "boundedness, cold session per repeat, budget never exhausts",
        "cells": cells,
        "aggregate": aggregate,
        "acceptance": {
            "governed_overhead_budget_pct": 5.0,
            "within_budget": aggregate["governed_overhead_pct"] < 5.0,
        },
    }
    return results, harness


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    results, harness = run(smoke=smoke)
    agg = results["aggregate"]
    print(
        f"governed overhead: {agg['governed_overhead_pct']:+.2f}% "
        f"(ungoverned {agg['ungoverned_seconds']:.3f}s, "
        f"governed {agg['governed_seconds']:.3f}s, "
        f"{agg['budget_checks']} checks)  "
        f"[budget < 5%: {'PASS' if results['acceptance']['within_budget'] else 'FAIL'}]"
    )
    if smoke:
        print("smoke run: JSON not written")
        return
    out = harness.write(results=results, meta={"max_states": MAX_STATES})
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
