"""THM-6 / COR-7: inevitability (⋆-embedding upward closures) and halting."""

import pytest

from repro.analysis import halting_via_inevitability, halts, inevitability
from repro.core.embedding import GapEmbedding
from repro.core.hstate import HState
from repro.zoo import (
    bounded_spawner,
    call_ladder,
    diverging_loop,
    terminating_chain,
)


def test_inevitability_holds(benchmark):
    scheme = terminating_chain(6)
    basis = [HState.parse("q0"), HState.parse("q1"), HState.parse("q2")]
    verdict = benchmark(inevitability, scheme, basis)
    assert verdict.holds


def test_inevitability_violated_by_lasso(benchmark):
    scheme = diverging_loop()
    basis = [HState.parse("d0"), HState.parse("d1")]
    verdict = benchmark(inevitability, scheme, basis)
    assert not verdict.holds


def test_inevitability_with_gap_embedding(benchmark):
    scheme = diverging_loop()
    embedding = GapEmbedding([])
    verdict = benchmark(
        inevitability, scheme, [HState.parse("d0")], embedding=embedding
    )
    assert verdict.holds


@pytest.mark.parametrize("length", [4, 16, 64])
def test_halting_chain_family(benchmark, length):
    scheme = terminating_chain(length)
    verdict = benchmark(halts, scheme)
    assert verdict.holds


@pytest.mark.parametrize("children", [2, 4])
def test_halting_via_inevitability(benchmark, children):
    scheme = bounded_spawner(children)
    verdict = benchmark(halting_via_inevitability, scheme)
    assert verdict.holds


def test_halting_agreement(benchmark):
    scheme = call_ladder(2)

    def both():
        return halts(scheme).holds, halting_via_inevitability(scheme).holds

    direct, via = benchmark(both)
    assert direct == via
