"""Cold-vs-warm micro-benchmark for the shared AnalysisSession engine.

Measures the standard query mix — node-reachability sweep, boundedness,
halting — twice per zoo scheme:

* **cold**: every query on its own throwaway session (the historical
  one-exploration-per-call behaviour);
* **warm**: all queries sharing one :class:`AnalysisSession` (one
  exploration, then scans/cache hits).

Run as a script (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_session_reuse.py

Writes ``BENCH_session_reuse.json`` at the repository root in the
``repro-bench/1`` schema (see ``benchmarks/_harness.py``): per-scheme
timings and speedups under ``results``, the raw per-repeat observations
in ``metrics``/``spans``.  The PR acceptance bar is warm ≥ 2× cold on
the aggregate.
"""

from __future__ import annotations

from _harness import BenchHarness
from repro.analysis import AnalysisSession, boundedness, halts, node_reachable
from repro.errors import AnalysisBudgetExceeded
from repro.zoo import ZOO_ALL

#: Budget keeping unbounded schemes cheap while leaving real exploration
#: work to amortise.
MAX_STATES = 4_000
REPEATS = 3


def _query_mix(scheme, session):
    """The query battery; swallows budget misses (they still cost time)."""
    for procedure in (boundedness, halts):
        try:
            procedure(scheme, max_states=MAX_STATES, session=session)
        except AnalysisBudgetExceeded:
            pass
    for node in scheme.node_ids:
        try:
            node_reachable(scheme, node, max_states=MAX_STATES, session=session)
        except AnalysisBudgetExceeded:
            pass


def run() -> tuple:
    harness = BenchHarness("session_reuse", warmup=0, repeats=REPEATS)
    results = []
    total_cold = total_warm = 0.0
    for name, factory in ZOO_ALL:
        scheme = factory()
        cold, _ = harness.measure(
            f"{name}/cold", lambda: _query_mix(scheme, None)
        )
        warm_best = None
        warm_session = None
        for _ in range(REPEATS):
            session = AnalysisSession(scheme)
            elapsed, _ = harness.measure(
                f"{name}/warm",
                lambda: _query_mix(scheme, session),
                warmup=0,
                repeats=1,
            )
            if warm_best is None or elapsed < warm_best:
                warm_best, warm_session = elapsed, session
        warm_session.sync_metrics()
        total_cold += cold
        total_warm += warm_best
        results.append(
            {
                "scheme": name,
                "queries": 2 + len(scheme.node_ids),
                "cold_seconds": cold,
                "warm_seconds": warm_best,
                "speedup": cold / warm_best if warm_best else float("inf"),
                "warm_stats": warm_session.stats.as_dict(),
            }
        )
    payload = {
        "benchmark": "session_reuse",
        "max_states": MAX_STATES,
        "repeats": REPEATS,
        "schemes": results,
        "total_cold_seconds": total_cold,
        "total_warm_seconds": total_warm,
        "aggregate_speedup": total_cold / total_warm if total_warm else float("inf"),
    }
    return payload, harness


def main() -> None:
    payload, harness = run()
    out = harness.write(results=payload, meta={"max_states": MAX_STATES})
    print(f"wrote {out}")
    print(f"aggregate speedup: {payload['aggregate_speedup']:.2f}x "
          f"(cold {payload['total_cold_seconds']:.3f}s, "
          f"warm {payload['total_warm_seconds']:.3f}s)")
    for entry in payload["schemes"]:
        print(f"  {entry['scheme']:<10} {entry['speedup']:6.2f}x "
              f"({entry['queries']} queries, "
              f"{entry['warm_stats']['states_discovered']} states, "
              f"{entry['warm_stats']['explorations']} exploration)")


if __name__ == "__main__":
    main()
