"""THM-9: Turing power — counter machines through the RP encoding.

Measures the encoding construction and the end-to-end simulation of small
machines through ``M_I_G``, against direct simulation as the baseline.
"""

import pytest

from repro.minsky import adder_machine, doubler_machine, encode, simulate_via_rp


def test_encoding_construction(benchmark):
    machine = adder_machine()
    encoded = benchmark(encode, machine)
    assert encoded.interpretation.is_finite()


def test_direct_simulation_baseline(benchmark):
    machine = adder_machine()
    result = benchmark(machine.run, {"a": 3, "b": 2})
    assert result == {"a": 0, "b": 5}


@pytest.mark.parametrize("a", [1, 2])
def test_adder_via_rp(benchmark, a):
    machine = adder_machine()
    result = benchmark(simulate_via_rp, machine, {"a": a, "b": 1}, 400_000)
    assert result == {"a": 0, "b": a + 1}


def test_doubler_via_rp(benchmark):
    machine = doubler_machine()
    result = benchmark(simulate_via_rp, machine, {"a": 2}, 400_000)
    assert result == {"a": 0, "b": 4}
