"""Naive-vs-indexed A/B benchmark for the WQO embedding fast path.

Runs the three embedding-heavy procedures — boundedness, sup-reachability
(minimal basis) and inevitability (halting instantiation) — on the
parametric deep/wide/mixed families of :data:`repro.zoo.ZOO_WQO_BENCH`,
twice each:

* **naive**: a session whose :class:`~repro.core.embedding.EmbeddingIndex`
  is constructed with ``accelerated=False`` — no signature refutation, no
  session-lifetime memo (tables dropped per top-level query), unindexed
  antichain stores: the historical cost model;
* **indexed**: the default accelerated session.

Verdicts (and, for sup-reachability, the full basis) are required to be
identical between the two arms; the JSON records timings, per-procedure
aggregate speedups and the indexed arm's embedding counters.

Run as a script (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_wqo_index.py [--smoke] [--trace F]

Writes ``BENCH_wqo_index.json`` at the repository root in the
``repro-bench/1`` schema (see ``benchmarks/_harness.py``).  ``--smoke``
runs a reduced matrix (one repeat, smaller budgets) without writing the
JSON — the CI sanity pass; ``--trace FILE`` additionally records a JSONL
span trace of the indexed arm's sessions (uploaded as a CI artifact).
The PR acceptance bar is a ≥ 2× aggregate speedup on at least two of the
three procedures.
"""

from __future__ import annotations

import sys

from _harness import BenchHarness
from repro.analysis import boundedness, inevitability, sup_reachability
from repro.analysis.session import AnalysisSession
from repro.core.embedding import EmbeddingIndex
from repro.core.hstate import HState
from repro.errors import AnalysisBudgetExceeded
from repro.obs import JsonlSink, Tracer
from repro.zoo import ZOO_WQO_BENCH

MAX_STATES = 2_500
MAX_KEPT = 2_500
REPEATS = 3

PROCEDURES = ("boundedness", "sup_reachability", "inevitability")


def _run_procedure(procedure: str, scheme, session, budget: int):
    """One timed query; returns a comparable summary of the outcome."""
    try:
        if procedure == "boundedness":
            verdict = boundedness(scheme, max_states=budget, session=session)
            return {"holds": verdict.holds, "method": verdict.method}
        if procedure == "sup_reachability":
            verdict = sup_reachability(scheme, max_kept=budget, session=session)
            basis = sorted(s.to_notation() for s in verdict.certificate.basis)
            return {"holds": verdict.holds, "basis": basis}
        basis = [HState.leaf(node) for node in scheme.node_ids]
        verdict = inevitability(scheme, basis, max_states=budget, session=session)
        return {"holds": verdict.holds, "method": verdict.method}
    except AnalysisBudgetExceeded as exc:
        return {"budget_exceeded": True, "explored": exc.explored}


def _time_arm(
    harness: BenchHarness,
    cell: str,
    procedure: str,
    factory,
    accelerated: bool,
    budget: int,
    repeats: int,
    tracer=None,
):
    """Best-of-*repeats* timing for one (procedure, scheme, arm) cell.

    Every repeat gets a fresh scheme *and* session: the point is the cost
    of one procedure call on a cold session, with only the arm differing.
    Scheme/session construction stays outside the measured region; each
    timed repeat lands in the harness registry under the cell label.
    """
    best = None
    outcome = None
    counters = None
    for _ in range(repeats):
        scheme = factory()
        session = AnalysisSession(
            scheme,
            embedding_index=EmbeddingIndex(accelerated=accelerated),
            tracer=tracer,
        )
        elapsed, result = harness.measure(
            cell,
            lambda: _run_procedure(procedure, scheme, session, budget),
            warmup=0,
            repeats=1,
        )
        if best is None or elapsed < best:
            best, outcome = elapsed, result
            counters = session.embedding_index.counters()
    return best, outcome, counters


def run(smoke: bool = False, trace: str = None) -> tuple:
    budget = 400 if smoke else MAX_STATES
    repeats = 1 if smoke else REPEATS
    harness = BenchHarness("wqo_index", warmup=0, repeats=repeats)
    tracer = Tracer(JsonlSink(trace)) if trace else None
    cells = []
    totals = {proc: {"naive": 0.0, "indexed": 0.0} for proc in PROCEDURES}
    for name, factory in ZOO_WQO_BENCH:
        for procedure in PROCEDURES:
            naive_s, naive_out, naive_counts = _time_arm(
                harness, f"{name}/{procedure}/naive", procedure, factory,
                False, budget, repeats,
            )
            fast_s, fast_out, fast_counts = _time_arm(
                harness, f"{name}/{procedure}/indexed", procedure, factory,
                True, budget, repeats, tracer=tracer,
            )
            if naive_out != fast_out:
                raise AssertionError(
                    f"{name}/{procedure}: naive and indexed arms disagree: "
                    f"{naive_out!r} vs {fast_out!r}"
                )
            totals[procedure]["naive"] += naive_s
            totals[procedure]["indexed"] += fast_s
            cells.append(
                {
                    "scheme": name,
                    "procedure": procedure,
                    "naive_seconds": naive_s,
                    "indexed_seconds": fast_s,
                    "speedup": naive_s / fast_s if fast_s else float("inf"),
                    "outcome": fast_out,
                    "naive_counters": naive_counts,
                    "indexed_counters": fast_counts,
                }
            )
    if tracer is not None:
        tracer.close()
    aggregates = {
        proc: {
            "naive_seconds": t["naive"],
            "indexed_seconds": t["indexed"],
            "speedup": t["naive"] / t["indexed"] if t["indexed"] else float("inf"),
        }
        for proc, t in totals.items()
    }
    results = {
        "benchmark": "wqo_index",
        "smoke": smoke,
        "budget": budget,
        "repeats": repeats,
        "cells": cells,
        "aggregate_by_procedure": aggregates,
        "procedures_at_2x": sorted(
            proc for proc, agg in aggregates.items() if agg["speedup"] >= 2.0
        ),
    }
    return results, harness


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    trace = None
    if "--trace" in argv:
        trace = argv[argv.index("--trace") + 1]
    results, harness = run(smoke=smoke, trace=trace)
    for proc, agg in results["aggregate_by_procedure"].items():
        print(
            f"  {proc:<18} {agg['speedup']:6.2f}x "
            f"(naive {agg['naive_seconds']:.3f}s, "
            f"indexed {agg['indexed_seconds']:.3f}s)"
        )
    print(f"procedures at >=2x: {results['procedures_at_2x']}")
    if trace:
        print(f"trace written to {trace}")
    if smoke:
        print("smoke run: JSON not written")
        return
    out = harness.write(results=results, meta={"smoke": smoke, "budget": results["budget"]})
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
