"""SCALE: cost profiles of the core engines on parametric families.

The paper has no measurement tables (it is a theory paper); this sweep is
the evaluation a tool-paper companion would report: how exploration,
embedding checks, boundedness and the machine model scale with instance
size.
"""

import pytest

from repro.analysis import boundedness
from repro.analysis.explore import Explorer
from repro.core.embedding import embeds
from repro.core.hstate import HState
from repro.interp import TrivialInterpretation, explore_machine
from repro.zoo import bounded_spawner, call_ladder


class TestExplorationScaling:
    @pytest.mark.parametrize("children", [3, 6, 9])
    def test_spawner_state_space(self, benchmark, children):
        scheme = bounded_spawner(children)

        def explore():
            return Explorer(scheme, max_states=500_000).explore_or_raise()

        graph = benchmark(explore)
        assert graph.complete

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_ladder_state_space(self, benchmark, depth):
        scheme = call_ladder(depth)

        def explore():
            return Explorer(scheme, max_states=500_000).explore_or_raise()

        graph = benchmark(explore)
        assert graph.complete


class TestEmbeddingScaling:
    @pytest.mark.parametrize("size", [8, 16, 32])
    def test_chain_embedding(self, benchmark, size):
        small = HState.parse("a," + "{a," * (size - 2) + "{a}" + "}" * (size - 2))
        big = HState.parse("a," + "{x,{a," * (size - 2) + "{a}" + "}}" * (size - 2))
        assert benchmark(embeds, small, big)

    @pytest.mark.parametrize("width", [4, 8, 12])
    def test_multiset_embedding(self, benchmark, width):
        small = HState.of(*(["a"] * width))
        big = HState.of(*(["a"] * width + ["b"] * width))
        assert benchmark(embeds, small, big)


class TestBoundednessScaling:
    @pytest.mark.parametrize("children", [3, 5, 7])
    def test_bounded_family(self, benchmark, children):
        scheme = bounded_spawner(children)
        verdict = benchmark(boundedness, scheme, None, 500_000)
        assert verdict.holds


class TestMachineScaling:
    @pytest.mark.parametrize("processors", [1, 2, 4])
    def test_machine_exploration(self, benchmark, processors):
        scheme = bounded_spawner(3)
        interpretation = TrivialInterpretation()

        def explore():
            return explore_machine(scheme, interpretation, processors)

        lts, complete = benchmark(explore)
        assert complete
