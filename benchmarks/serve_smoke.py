"""CI smoke check for the ``repro.serve`` daemon (PR 6).

Boots a daemon on a unix socket, fires **32 concurrent queries** (one
client thread each) across the zoo families and four procedures, and
holds the serving layer to its contract:

* **zero verdict drift** — every served
  :meth:`~repro.api.AnalysisResponse.comparable` view must equal the
  answer from a sequential in-process :func:`repro.api.execute` run;
* **clean shutdown** — the ``shutdown`` op must stop the daemon and
  remove the socket, with every query answered first;
* **trace artefact** — streamed tracer events from the served queries
  are written to ``serve_smoke_trace.jsonl`` (one JSON record per
  line) for upload by CI.

Run from the repository root::

    PYTHONPATH=src python benchmarks/serve_smoke.py

Exits non-zero on any drift, transport failure, or unclean shutdown.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.api import AnalysisRequest, execute
from repro.serve import ServeClient, daemon_in_thread
from repro.zoo import ZOO_WQO_BENCH

MAX_STATES = 4_000
QUERIES = 32
PROCEDURES = ("boundedness", "halts", "node_reachable", "normed")


def _matrix(schemes) -> List[Tuple[str, str, Dict[str, Any]]]:
    """Family × procedure query matrix, cycled up to ``QUERIES`` entries."""
    base = []
    for family, scheme in schemes.items():
        node = sorted(scheme.node_ids)[0]
        for procedure in PROCEDURES:
            params: Dict[str, Any] = {"max_states": MAX_STATES}
            if procedure == "node_reachable":
                params["node"] = node
            base.append((family, procedure, params))
    return [base[i % len(base)] for i in range(QUERIES)]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        default="serve_smoke_trace.jsonl",
        help="path for the streamed-event artefact",
    )
    args = parser.parse_args(argv)

    schemes = {name: factory() for name, factory in ZOO_WQO_BENCH}
    queries = _matrix(schemes)

    # the oracle: the same queries, sequentially, in this process
    expected: Dict[int, Dict[str, Any]] = {}
    for index, (family, procedure, params) in enumerate(queries):
        from repro.obs import scheme_fingerprint

        response = execute(
            AnalysisRequest(
                procedure=procedure,
                fingerprint=scheme_fingerprint(schemes[family]),
                params=params,
            ),
            scheme=schemes[family],
        )
        expected[index] = response.comparable()

    tmp = f"/tmp/rps-{uuid.uuid4().hex[:8]}"
    os.makedirs(tmp, exist_ok=True)
    socket_path = os.path.join(tmp, "s.sock")

    served: Dict[int, Dict[str, Any]] = {}
    events: List[Dict[str, Any]] = []
    events_lock = threading.Lock()
    failures: List[str] = []

    with daemon_in_thread(socket_path, concurrency=4) as daemon:
        fingerprints = {
            family: daemon.pool.adopt(scheme).fingerprint
            for family, scheme in schemes.items()
        }

        def one(index: int) -> None:
            family, procedure, params = queries[index]

            def on_event(record: Dict[str, Any]) -> None:
                with events_lock:
                    events.append(record)

            try:
                with ServeClient(socket_path) as client:
                    response = client.query(
                        procedure,
                        fingerprint=fingerprints[family],
                        stream=True,
                        on_event=on_event,
                        request_id=f"smoke-{index}",
                        **params,
                    )
                served[index] = response.comparable()
            except Exception as error:  # noqa: BLE001 - reported below
                failures.append(f"query {index}: {error!r}")

        threads = [
            threading.Thread(target=one, args=(i,)) for i in range(QUERIES)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        pool_stats = daemon.pool.snapshot()
        with ServeClient(socket_path) as client:
            client.shutdown()

    shutdown_clean = not os.path.exists(socket_path)

    drift = {
        index: {"served": served.get(index), "expected": expected[index]}
        for index in expected
        if served.get(index) != expected[index]
    }

    trace_path = pathlib.Path(args.trace)
    with trace_path.open("w", encoding="utf-8") as handle:
        for record in events:
            handle.write(json.dumps(record, default=repr) + "\n")

    print(f"queries    : {len(served)}/{QUERIES} answered")
    print(f"events     : {len(events)} streamed -> {trace_path}")
    print(f"pool       : {pool_stats['hits']} hits, "
          f"{pool_stats['misses']} misses, "
          f"{len(pool_stats['entries'])} sessions")
    print(f"drift      : {len(drift)} queries")
    print(f"shutdown   : {'clean' if shutdown_clean else 'SOCKET LEFT BEHIND'}")
    for failure in failures:
        print(f"FAILURE    : {failure}")
    if drift:
        for index in sorted(drift):
            print(f"DRIFT      : {queries[index]}: {drift[index]}")
    ok = (
        not drift
        and not failures
        and shutdown_clean
        and len(served) == QUERIES
        and events
    )
    print(f"smoke      : {'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
