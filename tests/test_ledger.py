"""Tests for the run ledger, cross-run diff, and flight recorder (PR 5).

Covers the observability tentpole end to end: ledger entries that
round-trip across process restarts (fresh :class:`Ledger` instances on
the same file), ``rpcheck diff`` on synthetic runs with an injected
slowdown and a verdict flip, flight-recorder dumps on chaos-induced
corruption, the differential guarantee that enabling a
:class:`LedgerSink` changes no verdicts, the thread-safety contract of
:class:`MetricsRegistry`/:class:`MemorySink`, and the
``watch_regressions`` perf watchdog.
"""

import importlib.util
import json
import pathlib
import threading

import pytest

from repro.analysis import AnalysisSession, analyze, boundedness
from repro.cli import main
from repro.errors import CorruptionDetected
from repro.obs import (
    FlightRecorder,
    Ledger,
    LedgerSink,
    MemorySink,
    MetricsRegistry,
    TeeSink,
    Tracer,
    ambient_recorder,
    diff_entries,
    find_recorder,
    make_entry,
    record_incident,
    resolve_entry,
    scheme_fingerprint,
    verdict_summary,
)
from repro.obs.ledger import LEDGER_SCHEMA, default_ledger_path
from repro.obs.recorder import FLIGHT_DIR_ENV, FLIGHT_SCHEMA
from repro.robust import ChaosSemantics, FaultPlan
from repro.zoo import FIG1_PROGRAM, mutex_pair, spawner_loop

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.rp"
    path.write_text(FIG1_PROGRAM)
    return str(path)


@pytest.fixture(autouse=True)
def _no_ambient_flight_dumps(monkeypatch):
    """Keep incident dumps opt-in per test (CI sets the env globally)."""
    monkeypatch.delenv(FLIGHT_DIR_ENV, raising=False)


def _entry(scheme=None, *, spans=None, procedures=None, **kwargs):
    return make_entry(
        kind="analysis",
        scheme=scheme,
        spans=spans or {},
        procedures=procedures or {},
        **kwargs,
    )


class TestLedgerRoundTrip:
    def test_entries_survive_process_restart(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        scheme = spawner_loop()
        writer = Ledger(path)
        first = writer.append(_entry(scheme, wall_seconds=1.0))
        second = writer.append(_entry(scheme, wall_seconds=2.0))
        # a fresh instance on the same file is the "restarted process"
        reader = Ledger(path)
        entries = reader.entries()
        assert [e["run_id"] for e in entries] == [
            first["run_id"],
            second["run_id"],
        ]
        assert entries == [first, second]
        assert len(reader) == 2
        assert reader.tail(1) == [second]

    def test_append_rejects_wrong_schema(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        with pytest.raises(ValueError, match="schema"):
            ledger.append({"schema": "something-else/9"})

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = Ledger(str(path))
        ledger.append(_entry())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match="line 2"):
            Ledger(str(path)).entries()

    def test_missing_file_reads_empty(self, tmp_path):
        assert Ledger(str(tmp_path / "absent.jsonl")).entries() == []

    def test_filter(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        ledger.append(_entry(spawner_loop()))
        ledger.append(make_entry(kind="bench"))
        assert len(ledger.filter(kind="bench")) == 1
        assert len(ledger.filter(scheme="spawner")) == 1
        assert ledger.filter(scheme="nope") == []

    def test_default_path_resolution(self, monkeypatch):
        monkeypatch.delenv("RPCHECK_LEDGER", raising=False)
        assert default_ledger_path(None) is None
        assert default_ledger_path("x.jsonl") == "x.jsonl"
        monkeypatch.setenv("RPCHECK_LEDGER", "env.jsonl")
        assert default_ledger_path(None) == "env.jsonl"
        assert default_ledger_path("x.jsonl") == "x.jsonl"

    def test_fingerprint_stable_and_content_sensitive(self):
        a, b = spawner_loop(), spawner_loop()
        assert scheme_fingerprint(a) == scheme_fingerprint(b)
        assert scheme_fingerprint(a).startswith("sha256:")

    def test_verdict_summary_shapes(self):
        assert verdict_summary(None) == {"verdict": "inconclusive"}
        verdict = boundedness(spawner_loop(), max_states=500)
        summary = verdict_summary(verdict)
        assert summary["verdict"] in ("yes", "no")
        assert summary["method"]


class TestLedgerSink:
    def test_end_to_end_boundedness_run(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        sink = LedgerSink(Ledger(path), kind="analysis")
        scheme = spawner_loop()
        session = AnalysisSession(scheme, tracer=Tracer(sink))
        verdict = boundedness(scheme, max_states=500, session=session)
        entry = sink.finish(
            scheme=scheme,
            procedures={"boundedness": verdict},
            metrics=session.metrics.as_dict(),
            wall_seconds=0.5,
            cpu_seconds=0.4,
        )
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["scheme"]["fingerprint"] == scheme_fingerprint(scheme)
        assert entry["procedures"]["boundedness"]["verdict"] in ("yes", "no")
        # the spans rollup is built from the records the tracer emitted
        assert "session.explore" in entry["spans"]
        assert entry["spans"]["session.explore"]["self"] >= 0
        # idempotent: a second finish returns the same appended entry
        assert sink.finish() is entry
        assert Ledger(path).entries()[0]["run_id"] == entry["run_id"]

    def test_close_without_finish_leaves_abandoned_entry(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        sink = LedgerSink(Ledger(path))
        session = AnalysisSession(spawner_loop(), tracer=Tracer(sink))
        session.explore(100)
        sink.close()
        entries = Ledger(path).entries()
        assert len(entries) == 1
        assert entries[0]["outcome"] == "abandoned"

    def test_ledger_sink_changes_no_verdicts(self, tmp_path):
        """Differential: the observed run answers exactly like a bare one."""
        scheme = spawner_loop()
        bare = analyze(scheme, max_states=800)
        sink = LedgerSink(Ledger(str(tmp_path / "runs.jsonl")))
        tracer = Tracer(TeeSink([FlightRecorder(), sink]))
        session = AnalysisSession(scheme, tracer=tracer)
        observed = analyze(scheme, max_states=800, session=session)
        sink.finish(scheme=scheme)
        for name in ("bounded", "halting", "normedness"):
            a, b = getattr(bare, name), getattr(observed, name)
            if a is None or b is None:
                assert a is b  # inconclusive on both sides or neither
                continue
            assert a.holds == b.holds
            assert a.method == b.method
        assert bare.wait_free == observed.wait_free


class TestDiff:
    def _pair(self, *, slow=1.0, flip=False):
        scheme = spawner_loop()
        spans_a = {
            "session.explore": {"count": 2, "wall": 0.100, "self": 0.080},
            "boundedness": {"count": 1, "wall": 0.120, "self": 0.020},
        }
        spans_b = {
            "session.explore": {
                "count": 2,
                "wall": 0.100 * slow,
                "self": 0.080 * slow,
            },
            "boundedness": {"count": 1, "wall": 0.120, "self": 0.020},
        }
        verdict_a = {"verdict": "yes", "method": "kruskal"}
        verdict_b = (
            {"verdict": "no", "method": "self-covering"} if flip else verdict_a
        )
        entry_a = _entry(
            scheme, spans=spans_a, procedures={"boundedness": verdict_a}
        )
        entry_b = _entry(
            scheme, spans=spans_b, procedures={"boundedness": verdict_b}
        )
        return entry_a, entry_b

    def test_identical_runs_are_clean(self):
        entry_a, entry_b = self._pair()
        diff = diff_entries(entry_a, entry_b)
        assert diff.same_scheme
        assert diff.verdict_drift == []
        assert diff.flagged_spans == []
        assert diff.clean

    def test_injected_slowdown_is_flagged(self):
        # 25% slowdown on a 80ms span: over the 10% default threshold
        entry_a, entry_b = self._pair(slow=1.25)
        diff = diff_entries(entry_a, entry_b)
        flagged = {d["span"]: d for d in diff.flagged_spans}
        assert "session.explore" in flagged
        assert flagged["session.explore"]["pct"] == pytest.approx(25.0)
        assert "boundedness" not in flagged
        assert diff.clean  # slower, but no verdict drift

    def test_noise_threshold_suppresses_small_deltas(self):
        entry_a, entry_b = self._pair(slow=1.05)
        assert diff_entries(entry_a, entry_b).flagged_spans == []
        # a relatively-huge but absolutely-tiny span stays quiet too
        tiny_a = _entry(spans={"x": {"count": 1, "wall": 1e-5, "self": 1e-5}})
        tiny_b = _entry(spans={"x": {"count": 1, "wall": 9e-5, "self": 9e-5}})
        assert diff_entries(tiny_a, tiny_b).flagged_spans == []

    def test_verdict_flip_is_drift(self):
        entry_a, entry_b = self._pair(flip=True)
        diff = diff_entries(entry_a, entry_b)
        assert not diff.clean
        assert len(diff.verdict_drift) == 1
        drift = diff.verdict_drift[0]
        assert drift["procedure"] == "boundedness"
        assert (drift["a"], drift["b"]) == ("yes", "no")

    def test_as_dict_is_json_ready(self):
        entry_a, entry_b = self._pair(slow=1.5, flip=True)
        payload = json.loads(json.dumps(diff_entries(entry_a, entry_b).as_dict()))
        assert payload["run_a"] == entry_a["run_id"]
        assert payload["run_b"] == entry_b["run_id"]
        assert payload["verdict_drift"]

    def test_resolve_entry(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        first = ledger.append(_entry(run_id="run-aaa-1"))
        second = ledger.append(_entry(run_id="run-abb-2"))
        entries = ledger.entries()
        assert resolve_entry(entries, "run-aaa-1") == first
        assert resolve_entry(entries, "0") == first
        assert resolve_entry(entries, "1") == second
        assert resolve_entry(entries, "run-ab") == second
        with pytest.raises(ValueError, match="ambiguous"):
            resolve_entry(entries, "run-a")
        with pytest.raises(ValueError, match="no ledger entry"):
            resolve_entry(entries, "zzz")


class TestFlightRecorder:
    def test_ring_buffer_keeps_most_recent(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.emit({"type": "event", "name": f"e{index}"})
        assert len(recorder) == 4
        assert [r["name"] for r in recorder.records()] == [
            "e6",
            "e7",
            "e8",
            "e9",
        ]

    def test_wraparound_at_exactly_default_capacity(self):
        # the boundary case: record number 512 must evict record 0, and
        # not one record earlier or later
        from repro.obs.recorder import DEFAULT_CAPACITY

        assert DEFAULT_CAPACITY == 512
        recorder = FlightRecorder()
        for index in range(DEFAULT_CAPACITY):
            recorder.emit({"type": "event", "name": f"e{index}"})
        assert len(recorder) == DEFAULT_CAPACITY
        names = [r["name"] for r in recorder.records()]
        assert names[0] == "e0" and names[-1] == f"e{DEFAULT_CAPACITY - 1}"
        recorder.emit({"type": "event", "name": "overflow"})
        assert len(recorder) == DEFAULT_CAPACITY
        names = [r["name"] for r in recorder.records()]
        assert names[0] == "e1" and names[-1] == "overflow"

    def test_default_session_records_into_ambient_recorder(self):
        session = AnalysisSession(spawner_loop())
        assert find_recorder(session.tracer.sink) is ambient_recorder()
        ambient_recorder().clear()
        session.explore(50)
        names = [r.get("name") for r in ambient_recorder().records()]
        assert "session.explore" in names

    def test_find_recorder_descends_tees(self):
        recorder = FlightRecorder()
        tee = TeeSink([MemorySink(), TeeSink([recorder])])
        assert find_recorder(tee) is recorder
        assert find_recorder(MemorySink()) is None

    def test_dump_writes_flight_bundle(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        recorder.emit({"type": "event", "name": "boom"})
        path = recorder.dump(
            str(tmp_path / "bundle.json"),
            reason="unit test",
            error=ValueError("x"),
            metrics={"m": 1},
            context={"k": "v"},
        )
        payload = json.loads(pathlib.Path(path).read_text())
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["reason"] == "unit test"
        assert payload["error"]["type"] == "ValueError"
        assert payload["records"][0]["name"] == "boom"
        assert payload["context"] == {"k": "v"}
        assert recorder.dumps == 1

    def test_record_incident_noop_without_target(self, tmp_path):
        session = AnalysisSession(spawner_loop())
        assert record_incident(session, ValueError("x")) is None
        assert list(tmp_path.iterdir()) == []

    def test_chaos_corruption_dumps_one_bundle(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        plan = FaultPlan(seed=3, fault_at=((1, "corrupt"),))
        chaos = ChaosSemantics(spawner_loop(), plan)
        session = AnalysisSession(chaos.scheme, semantics=chaos)
        with pytest.raises(CorruptionDetected) as excinfo:
            boundedness(chaos.scheme, max_states=200, session=session)
        bundles = sorted(tmp_path.glob("flight-*.json"))
        # idempotent per exception: one bundle even though the error
        # crossed several instrumented layers
        assert len(bundles) == 1
        payload = json.loads(bundles[0].read_text())
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["error"]["type"] == "CorruptionDetected"
        assert "CorruptionDetected" in payload["reason"]
        assert payload["metrics"] is not None
        assert getattr(excinfo.value, "_flight_bundle") == str(bundles[0])


class TestThreadSafety:
    def test_concurrent_label_creation_yields_one_child(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer.labels")
        barrier = threading.Barrier(8)
        children = []

        def work():
            barrier.wait()
            children.append(counter.labels(shard="same"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(child) for child in children}) == 1

    def test_concurrent_merges_lose_nothing(self):
        target = MetricsRegistry()
        workers = []
        for index in range(8):
            registry = MetricsRegistry()
            registry.counter("work.done").inc(100)
            registry.counter("work.done").labels(worker=str(index)).inc(7)
            registry.histogram("work.seconds").observe(0.5)
            workers.append(registry)
        threads = [
            threading.Thread(target=target.merge, args=(registry,))
            for registry in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = target.get("work.done")
        assert merged.value == 800
        assert merged.total() == 800 + 8 * 7
        assert target.get("work.seconds").count == 8

    def test_memory_sink_concurrent_emits(self):
        sink = MemorySink()
        barrier = threading.Barrier(8)

        def work(worker):
            barrier.wait()
            for index in range(500):
                sink.emit({"type": "event", "worker": worker, "i": index})

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(sink.snapshot()) == 8 * 500


class TestCli:
    def test_analysis_appends_ledger_entry(self, fig1_file, tmp_path, capsys):
        ledger_path = str(tmp_path / "runs" / "ledger.jsonl")
        code = main(
            [fig1_file, "--max-states", "2000", "--ledger", ledger_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ledger    : appended" in out
        entries = Ledger(ledger_path).entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["kind"] == "analysis"
        assert entry["outcome"] == "ok"
        assert entry["procedures"]["boundedness"]["verdict"] == "no"
        assert entry["spans"]
        assert entry["totals"]["wall_seconds"] > 0

    def test_history_and_diff(self, fig1_file, tmp_path, capsys):
        ledger_path = str(tmp_path / "ledger.jsonl")
        for _ in range(2):
            main([fig1_file, "--max-states", "2000", "--ledger", ledger_path])
        capsys.readouterr()
        assert main(["history", "--ledger", ledger_path]) == 0
        out = capsys.readouterr().out
        assert out.count("analysis") == 2
        assert "boundedness=no" in out
        # same scheme, same procedures: diff is clean (exit 0, no drift)
        assert main(["diff", "0", "1", "--ledger", ledger_path]) == 0
        out = capsys.readouterr().out
        assert "identical fingerprint" in out
        assert "no drift" in out

    def test_history_json_and_filters(self, fig1_file, tmp_path, capsys):
        ledger_path = str(tmp_path / "ledger.jsonl")
        main([fig1_file, "--max-states", "2000", "--ledger", ledger_path])
        capsys.readouterr()
        assert main(
            ["history", "--ledger", ledger_path, "--scheme", "main", "--json"]
        ) == 0
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(lines) == 1
        assert json.loads(lines[0])["scheme"]["name"] == "main"
        assert main(
            ["history", "--ledger", ledger_path, "--scheme", "nope"]
        ) == 0
        assert "no matching runs" in capsys.readouterr().out

    def test_diff_reports_verdict_drift(self, tmp_path, capsys):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        scheme = spawner_loop()
        ledger.append(
            _entry(scheme, procedures={"halting": {"verdict": "yes"}})
        )
        ledger.append(
            _entry(scheme, procedures={"halting": {"verdict": "no"}})
        )
        code = main(["diff", "0", "1", "--ledger", ledger.path])
        assert code == 1
        assert "halting" in capsys.readouterr().out

    def test_report_json_format(self, fig1_file, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        main([fig1_file, "--max-states", "2000", "--trace", trace])
        capsys.readouterr()
        assert main(["report", trace, "--format", "json", "--top", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "rpcheck-report/1"
        assert payload["roots"][0]["name"] == "rpcheck"
        assert len(payload["hot"]) <= 3
        assert "session.explore" in payload["rollup"]
        # self time sums to the root's wall within float tolerance
        total_self = sum(v["self"] for v in payload["rollup"].values())
        assert total_self == pytest.approx(
            payload["roots"][0]["wall"], rel=1e-6
        )

    def test_flamegraph_export(self, fig1_file, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        out_path = tmp_path / "stacks.txt"
        main([fig1_file, "--max-states", "2000", "--trace", trace])
        capsys.readouterr()
        assert main(["flamegraph", trace, "--out", str(out_path)]) == 0
        lines = out_path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack
            assert value.isdigit()
        assert any(line.startswith("rpcheck;") for line in lines)

    def test_bad_trace_path_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "missing.jsonl")]) == 2
        assert main(["flamegraph", str(tmp_path / "missing.jsonl")]) == 2


class TestLedgerCompaction:
    """``rpcheck history --compact N`` retention (:meth:`Ledger.compact`)."""

    def test_compact_keeps_newest_n_per_scheme(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        a, b = spawner_loop(), mutex_pair()
        ids = {"a": [], "b": []}
        for _ in range(5):
            ids["a"].append(ledger.append(_entry(a))["run_id"])
            ids["b"].append(ledger.append(_entry(b))["run_id"])
        kept, dropped = ledger.compact(2)
        assert (kept, dropped) == (4, 6)
        assert [e["run_id"] for e in ledger.entries()] == [
            ids["a"][-2], ids["b"][-2], ids["a"][-1], ids["b"][-1]
        ]  # newest two per scheme, chronological order preserved

    def test_compact_groups_schemeless_entries_by_kind(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        for _ in range(3):
            ledger.append(make_entry(kind="bench"))
        ledger.append(_entry(spawner_loop()))
        kept, dropped = ledger.compact(1)
        assert (kept, dropped) == (2, 2)
        assert [entry["kind"] for entry in ledger.entries()] == [
            "bench",
            "analysis",
        ]

    def test_compact_noop_and_validation(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        assert ledger.compact(3) == (0, 0)
        ledger.append(_entry(spawner_loop()))
        assert ledger.compact(5) == (1, 0)  # nothing dropped, file untouched
        assert len(ledger.entries()) == 1
        with pytest.raises(ValueError):
            ledger.compact(0)

    def test_compact_lock_is_per_path_not_per_instance(self, tmp_path):
        # the closed race: compact() through one instance vs append()
        # (LedgerSink.finish) through another on the same file — both
        # must serialise on one shared lock
        path = str(tmp_path / "ledger.jsonl")
        writer, compactor = Ledger(path), Ledger(path)
        assert writer._lock is compactor._lock
        other = Ledger(str(tmp_path / "other.jsonl"))
        assert other._lock is not writer._lock

    def test_compact_never_drops_concurrent_finish(self, tmp_path):
        """Deterministic interleave: while compact() sits between its
        read and its ``os.replace``, a concurrent ``LedgerSink.finish``
        through a *different* instance must block, not vanish."""
        import time as time_module

        path = str(tmp_path / "ledger.jsonl")
        compactor = Ledger(path)
        for _ in range(6):
            compactor.append(_entry(spawner_loop()))
        in_window = threading.Event()
        real_entries = Ledger.entries

        def stalled_entries():
            result = real_entries(compactor)
            in_window.set()
            time_module.sleep(0.5)  # hold the read->replace window open
            return result

        compactor.entries = stalled_entries
        result = {}

        def compact():
            result["compacted"] = compactor.compact(2)

        thread = threading.Thread(target=compact)
        thread.start()
        assert in_window.wait(timeout=10)
        # the "active run" racing the retention pass
        sink = LedgerSink(Ledger(path), kind="analysis")
        sink.emit({"type": "span", "id": 1, "name": "x", "start": 0.0, "wall": 0.1})
        appended = sink.finish(scheme=mutex_pair(), outcome="ok")
        thread.join(timeout=30)
        assert result["compacted"] == (2, 4)
        survivors = [e["run_id"] for e in Ledger(path).entries()]
        assert appended["run_id"] in survivors, (
            "compact() dropped the run appended while it held the lock"
        )
        assert len(survivors) == 3  # 2 kept by retention + the active run

    def test_history_compact_cli(self, tmp_path, capsys):
        path = str(tmp_path / "ledger.jsonl")
        ledger = Ledger(path)
        for _ in range(4):
            ledger.append(_entry(spawner_loop()))
        assert main(["history", "--ledger", path, "--compact", "2"]) == 0
        out = capsys.readouterr().out
        assert "kept 2" in out and "dropped 2" in out
        assert len(ledger.entries()) == 2
        assert main(["history", "--ledger", path, "--compact", "0"]) == 2


def _load_watchdog():
    path = REPO_ROOT / "benchmarks" / "watch_regressions.py"
    spec = importlib.util.spec_from_file_location("watch_regressions", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_payload(seconds, *, within_budget=True):
    return {
        "schema": "repro-bench/1",
        "meta": {"benchmark": "synthetic", "python": "3", "platform": "test"},
        "metrics": {
            "bench.seconds": {
                "type": "histogram",
                "count": len(seconds),
                "sum": sum(seconds.values()),
                "min": min(seconds.values()),
                "max": max(seconds.values()),
                "mean": sum(seconds.values()) / len(seconds),
                "labels": {
                    "{cell=%s}" % cell: {
                        "count": 1,
                        "sum": value,
                        "min": value,
                        "max": value,
                        "mean": value,
                    }
                    for cell, value in seconds.items()
                },
            }
        },
        "spans": [],
        "results": {"acceptance": {"within_budget": within_budget}},
    }


class TestWatchRegressions:
    def test_committed_baselines_audit_clean(self, capsys):
        watchdog = _load_watchdog()
        assert watchdog.main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_doctored_result_fails(self, tmp_path, capsys):
        watchdog = _load_watchdog()
        base = tmp_path / "BENCH_synthetic.json"
        base.write_text(json.dumps(_bench_payload({"fast": 0.020})))
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        (fresh_dir / base.name).write_text(
            json.dumps(_bench_payload({"fast": 0.040}))
        )
        code = watchdog.main([str(base), "--fresh", str(fresh_dir)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_identical_result_passes(self, tmp_path, capsys):
        watchdog = _load_watchdog()
        base = tmp_path / "BENCH_synthetic.json"
        base.write_text(json.dumps(_bench_payload({"fast": 0.020})))
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        (fresh_dir / base.name).write_text(base.read_text())
        assert watchdog.main([str(base), "--fresh", str(fresh_dir)]) == 0

    def test_tolerance_band_absorbs_noise(self, tmp_path):
        watchdog = _load_watchdog()
        base = tmp_path / "BENCH_synthetic.json"
        base.write_text(json.dumps(_bench_payload({"fast": 0.100})))
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        # +12% on a 100ms cell: above the floor but inside the 25% band
        (fresh_dir / base.name).write_text(
            json.dumps(_bench_payload({"fast": 0.112}))
        )
        assert watchdog.main([str(base), "--fresh", str(fresh_dir)]) == 0

    def test_acceptance_flip_is_a_regression(self, tmp_path, capsys):
        watchdog = _load_watchdog()
        base = tmp_path / "BENCH_synthetic.json"
        base.write_text(json.dumps(_bench_payload({"fast": 0.020})))
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        (fresh_dir / base.name).write_text(
            json.dumps(_bench_payload({"fast": 0.020}, within_budget=False))
        )
        code = watchdog.main([str(base), "--fresh", str(fresh_dir)])
        assert code == 1
        assert "within_budget" in capsys.readouterr().out

    def test_baseline_committed_failing_is_caught(self, tmp_path, capsys):
        watchdog = _load_watchdog()
        base = tmp_path / "BENCH_synthetic.json"
        base.write_text(
            json.dumps(_bench_payload({"fast": 0.020}, within_budget=False))
        )
        assert watchdog.main([str(base)]) == 1

    def test_fresh_artefact_without_baseline_is_a_notice(self, tmp_path, capsys):
        # a brand-new benchmark landing for the first time: its fresh
        # artefact has no committed counterpart, which must be a PASS
        # with notice (audited, not compared), never a failure
        watchdog = _load_watchdog()
        base = tmp_path / "BENCH_old.json"
        base.write_text(json.dumps(_bench_payload({"fast": 0.020})))
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        (fresh_dir / base.name).write_text(base.read_text())
        (fresh_dir / "BENCH_brand_new.json").write_text(
            json.dumps(_bench_payload({"cell": 0.010}))
        )
        assert watchdog.main([str(base), "--fresh", str(fresh_dir)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_brand_new.json: new baseline" in out
        assert "PASS with notice" in out

    def test_fresh_new_baseline_is_still_audited(self, tmp_path, capsys):
        # new-baseline leniency is not an audit bypass: a first-time
        # artefact that fails its own acceptance stays a regression
        watchdog = _load_watchdog()
        base = tmp_path / "BENCH_old.json"
        base.write_text(json.dumps(_bench_payload({"fast": 0.020})))
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        (fresh_dir / base.name).write_text(base.read_text())
        (fresh_dir / "BENCH_brand_new.json").write_text(
            json.dumps(_bench_payload({"cell": 0.010}, within_budget=False))
        )
        assert watchdog.main([str(base), "--fresh", str(fresh_dir)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
