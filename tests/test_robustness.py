"""Resource governance and fault tolerance (`repro.robust`).

The robustness contract under test:

* every decision procedure accepts a ``budget=`` and, when it runs out,
  either raises a structured :class:`BudgetExhausted` (``on_exhaust=
  "raise"``) or returns a :class:`PartialVerdict` with a progress
  certificate and resumable checkpoint (``on_exhaust="partial"``) —
  never a hang, never a silent wrong verdict;
* an interrupted run's checkpoint, resumed, reaches the same final
  verdict as an uninterrupted run (differential, several families ×
  several procedures);
* under seeded fault injection (raises, delays, corrupted successor
  computations) every procedure either delivers the clean verdict or a
  clean :class:`RPError` — corrupted data is detected, transient faults
  are recoverable;
* budget consumption is exported through the ``repro.obs`` metrics.

Budgets are driven deterministically through their injectable ``clock``
and ``memory_sampler`` hooks; chaos runs are seeded (override the seeds
with the ``RP_CHAOS_SEEDS`` environment variable, e.g. ``1,2,3``).
"""

import itertools
import json
import os

import pytest

from repro.analysis import (
    AnalysisSession,
    analyze,
    backward_coverability,
    boundedness,
    check_ctl,
    halts,
    inevitability,
    may_terminate,
    mutually_exclusive,
    normed,
    persistent,
    sup_reachability,
)
from repro.analysis.ctl import AG, node
from repro.core.hstate import HState
from repro.errors import (
    AnalysisBudgetExceeded,
    BudgetExhausted,
    CorruptionDetected,
    FaultInjected,
    RPError,
)
from repro.robust import (
    Budget,
    CancelToken,
    ChaosSemantics,
    FaultPlan,
    PartialVerdict,
    load_checkpoint,
    restore_session,
    save_checkpoint,
)
from repro.zoo import (
    ZOO_ALL,
    fig2_scheme,
    mixed_grove,
    mutex_pair,
    spawner_loop,
    terminating_chain,
    wait_blocked,
)

CHAOS_SEEDS = [int(s) for s in os.environ.get("RP_CHAOS_SEEDS", "1").split(",")]


def ticking_clock(step=1.0):
    """A deterministic clock advancing *step* per call."""
    counter = itertools.count(0.0, step)
    return lambda: next(counter)


def expired_budget(**kwargs):
    """A budget whose deadline is blown at the very first check."""
    kwargs.setdefault("deadline", 0.5)
    kwargs.setdefault("clock", ticking_clock(10.0))
    return Budget(**kwargs)


# ----------------------------------------------------------------------
# The ten governed procedures, uniformly invokable
# ----------------------------------------------------------------------


def _first_nodes(scheme, count):
    return list(scheme.node_ids)[:count]


#: Modest state cap so fault-free baselines stay fast even on the
#: unbounded families (the budgets under test are wall-clock/memory
#: envelopes layered *on top* of this).
CAP = 400

PROCEDURES = {
    "boundedness": lambda s, sess, b: boundedness(
        s, max_states=CAP, session=sess, budget=b
    ),
    "halts": lambda s, sess, b: halts(s, max_states=CAP, session=sess, budget=b),
    "may_terminate": lambda s, sess, b: may_terminate(
        s, max_states=CAP, session=sess, budget=b
    ),
    "normed": lambda s, sess, b: normed(
        s, max_states=CAP, session=sess, budget=b
    ),
    "inevitability": lambda s, sess, b: inevitability(
        s,
        [HState.leaf(n) for n in s.node_ids],
        max_states=CAP,
        session=sess,
        budget=b,
    ),
    "sup_reachability": lambda s, sess, b: sup_reachability(
        s, session=sess, budget=b
    ),
    "persistent": lambda s, sess, b: persistent(
        s, _first_nodes(s, 1), session=sess, budget=b
    ),
    "mutually_exclusive": lambda s, sess, b: mutually_exclusive(
        s, *_first_nodes(s, 2), max_states=CAP, session=sess, budget=b
    ),
    "check_ctl": lambda s, sess, b: check_ctl(
        s, AG(node(_first_nodes(s, 1)[0])), max_states=CAP, session=sess, budget=b
    ),
    "backward_coverability": lambda s, sess, b: backward_coverability(
        s, [HState.leaf(_first_nodes(s, 1)[0])], session=sess, budget=b
    ),
}

FAMILIES = {
    "spawner": spawner_loop,
    "fig2": fig2_scheme,
    "grove": lambda: mixed_grove(2, 2),
}


# ----------------------------------------------------------------------
# Budget unit behaviour (deterministic clock / sampler)
# ----------------------------------------------------------------------


class TestBudget:
    def test_deadline_exhaustion_carries_progress(self):
        budget = Budget(deadline=1.5, clock=ticking_clock(1.0))
        budget.start()
        budget.check(states=7)
        with pytest.raises(BudgetExhausted) as info:
            budget.check(states=9, frontier=3)
        error = info.value
        assert error.resource == "deadline"
        assert error.progress["states"] == 9
        assert error.progress["frontier"] == 3
        assert "checks" in error.progress and "elapsed_seconds" in error.progress
        assert budget.exhausted == "deadline"

    def test_memory_ceiling_sampled_on_interval(self):
        samples = iter([10, 999])
        budget = Budget(
            max_memory_bytes=100,
            check_interval=2,
            memory_sampler=lambda: next(samples),
        )
        budget.check()  # no sample (check 1)
        budget.check()  # sample: 10, under ceiling
        budget.check()  # no sample
        with pytest.raises(BudgetExhausted) as info:
            budget.check()  # sample: 999
        assert info.value.resource == "memory"
        assert budget.last_memory_bytes == 999
        assert budget.memory_samples == 2

    def test_cancellation_with_reason(self):
        token = CancelToken()
        budget = Budget(cancel=token)
        budget.check()
        token.cancel("operator pressed stop")
        with pytest.raises(BudgetExhausted) as info:
            budget.check()
        assert info.value.resource == "cancelled"
        assert "operator pressed stop" in str(info.value)
        token.reset()
        assert not token.cancelled and token.reason is None

    def test_state_cap_folds_into_exploration(self):
        sess = AnalysisSession(spawner_loop(), budget=Budget(max_states=7))
        graph = sess.explore(10_000)
        assert not graph.complete
        # the ambient cap, not the caller's 10k, bounded the exploration
        # (the overshoot contract allows one expansion batch past the cap)
        assert 7 <= len(graph) <= 7 + max(len(e) for e in graph.edges)

    def test_on_exhaust_validated(self):
        with pytest.raises(ValueError):
            Budget(on_exhaust="explode")

    def test_export_is_monotonic_across_budgets(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        first = expired_budget()
        first.start()
        with pytest.raises(BudgetExhausted):
            first.check()
        first.export(registry)
        first.export(registry)  # re-export must not double-count
        second = Budget(deadline=99.0, clock=ticking_clock(0.0))
        second.start()
        second.check()
        second.export(registry)  # a fresher budget must not go backwards
        data = registry.as_dict()
        assert data["budget.checks"]["value"] == 2
        exhausted = data["budget.exhausted"]["labels"]
        assert exhausted["{resource=deadline}"]["value"] == 1


# ----------------------------------------------------------------------
# Exhaustion across all ten procedures × zoo families (satellite 3)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("procedure", sorted(PROCEDURES))
def test_partial_verdict_everywhere(procedure, family):
    scheme = FAMILIES[family]()
    sess = AnalysisSession(scheme)
    verdict = PROCEDURES[procedure](
        scheme, sess, expired_budget(on_exhaust="partial")
    )
    assert isinstance(verdict, PartialVerdict)
    assert verdict.verdict == "UNKNOWN" and not verdict  # falsy: not a proof
    assert verdict.resource == "deadline"
    assert verdict.progress.states_explored >= 1
    assert verdict.resumable
    # budget consumption reached the session metrics
    data = sess.metrics.as_dict()
    assert data["budget.checks"]["value"] >= 1
    partials = data["analysis.partial_verdicts"]["labels"]
    assert partials["{resource=deadline}"]["value"] == 1


@pytest.mark.parametrize("procedure", sorted(PROCEDURES))
def test_raise_mode_everywhere(procedure):
    scheme = spawner_loop()
    sess = AnalysisSession(scheme)
    with pytest.raises(BudgetExhausted) as info:
        PROCEDURES[procedure](scheme, sess, expired_budget())
    assert info.value.resource == "deadline"
    # the budget wrapper always uninstalls itself
    assert sess.budget is None


def test_nested_procedures_never_misread_partial():
    # halts() consults boundedness(); a budget that exhausts inside the
    # nested call must surface at the *outer* wrapper as UNKNOWN — not be
    # consumed inside and misread as a conclusive sub-answer
    scheme = spawner_loop()
    sess = AnalysisSession(scheme)
    verdict = halts(
        scheme, session=sess, budget=expired_budget(on_exhaust="partial")
    )
    assert isinstance(verdict, PartialVerdict)
    assert verdict.question == "halts"


def test_analyze_degrades_gracefully_under_budget():
    scheme = spawner_loop()
    report = analyze(scheme, budget=expired_budget(on_exhaust="partial"))
    assert report.bounded is None and report.halting is None
    assert not report.conclusive
    assert "inconclusive" in report.render()


# ----------------------------------------------------------------------
# Checkpoint / resume differential (acceptance criterion)
# ----------------------------------------------------------------------

DIFFERENTIAL_FAMILIES = {
    "spawner": spawner_loop,
    "fig2": fig2_scheme,
    "chain": lambda: terminating_chain(40),
    "mutex": mutex_pair,
}

DIFFERENTIAL_PROCEDURES = ["boundedness", "halts", "sup_reachability"]


@pytest.mark.parametrize("family", sorted(DIFFERENTIAL_FAMILIES))
@pytest.mark.parametrize("procedure", DIFFERENTIAL_PROCEDURES)
def test_interrupted_resume_matches_uninterrupted(procedure, family, tmp_path):
    scheme = DIFFERENTIAL_FAMILIES[family]()
    call = PROCEDURES[procedure]

    clean = call(scheme, AnalysisSession(scheme), None)

    # interrupt after a handful of budget checks
    sess = AnalysisSession(scheme)
    interrupted = call(
        scheme,
        sess,
        Budget(deadline=3.0, clock=ticking_clock(1.0), on_exhaust="partial"),
    )
    if not isinstance(interrupted, PartialVerdict):
        # the procedure concluded before the third check — already equal?
        assert interrupted.holds == clean.holds
        return
    assert interrupted.resumable

    # round-trip the checkpoint through disk, as a real restart would
    path = tmp_path / "run.json"
    save_checkpoint(interrupted.checkpoint, str(path))
    resumed_session = restore_session(load_checkpoint(str(path)), scheme=scheme)
    resumed = call(scheme, resumed_session, None)
    assert not isinstance(resumed, PartialVerdict)
    assert resumed.holds == clean.holds
    assert resumed.method == clean.method


def test_checkpoint_progress_is_preserved(tmp_path):
    scheme = spawner_loop()
    sess = AnalysisSession(scheme)
    sess.explore(50)
    data = sess.checkpoint()
    path = tmp_path / "cp.json"
    save_checkpoint(data, str(path))
    restored = restore_session(load_checkpoint(str(path)), scheme=scheme)
    assert [s.to_notation() for s in restored.graph.states] == [
        s.to_notation() for s in sess.graph.states
    ]
    assert restored.expanded_count == sess.expanded_count
    # resuming explores *onwards*, state-for-state like a fresh deep run
    resumed = restored.explore(120)
    fresh = AnalysisSession(scheme).explore(120)
    assert [s.to_notation() for s in resumed.states] == [
        s.to_notation() for s in fresh.states
    ]


# ----------------------------------------------------------------------
# Chaos: seeded fault injection (the tentpole's harness)
# ----------------------------------------------------------------------


CHAOS_PLANS = [
    ("raising", dict(raise_rate=0.2)),
    ("corrupting", dict(corrupt_rate=0.2)),
    ("mixed", dict(raise_rate=0.1, corrupt_rate=0.1, delay_rate=0.1)),
]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("plan_name,rates", CHAOS_PLANS)
@pytest.mark.parametrize("procedure", sorted(PROCEDURES))
def test_chaos_never_hangs_never_lies(procedure, plan_name, rates, seed):
    """Under injected faults: a clean error or the clean verdict, always.

    Delays are bounded (no hang — enforced by the suite's wall-clock
    guard); raised faults and detected corruption surface as structured
    ``RPError``s; any *delivered* verdict must agree with a fault-free
    run.  A silently wrong verdict is the one forbidden outcome.
    """
    scheme = spawner_loop()

    def outcome(semantics=None):
        sess = AnalysisSession(scheme, semantics=semantics)
        try:
            return ("verdict", PROCEDURES[procedure](scheme, sess, None).holds)
        except RPError:
            return ("error", None)

    clean = outcome()
    plan = FaultPlan(seed=seed, delay_seconds=0.001, immune=1, **rates)
    chaotic = outcome(ChaosSemantics(scheme, plan))
    if chaotic[0] == "error":
        return  # clean structured failure: acceptable
    assert clean[0] == "verdict" and chaotic[1] == clean[1], (
        f"chaos (seed={seed}, plan={plan_name}) silently changed the "
        f"{procedure} outcome: clean={clean}, chaotic={chaotic}"
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_raise_faults_are_transient(seed):
    plan = FaultPlan(seed=seed, fault_at=((3, "raise"),))
    chaos = ChaosSemantics(spawner_loop(), plan)
    sess = AnalysisSession(chaos.scheme, semantics=chaos)
    with pytest.raises(FaultInjected):
        sess.explore(50)
    # the graph is a clean BFS prefix; the failed computation was not
    # cached, so simply retrying succeeds and the verdict is truthful
    graph = sess.explore(50)
    clean = AnalysisSession(chaos.scheme).explore(50)
    assert [s.to_notation() for s in graph.states] == [
        s.to_notation() for s in clean.states
    ]
    assert chaos.injected["raise"] == 1


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_corruption_is_detected_and_recoverable(seed):
    plan = FaultPlan(seed=seed, fault_at=((2, "corrupt"),))
    chaos = ChaosSemantics(spawner_loop(), plan)
    sess = AnalysisSession(chaos.scheme, semantics=chaos)
    with pytest.raises(CorruptionDetected):
        sess.explore(50)
    # the corrupted batch was rejected before recording: retrying reads
    # the truthful cached computation and converges with a clean run
    graph = sess.explore(50)
    clean = AnalysisSession(chaos.scheme).explore(50)
    assert [s.to_notation() for s in graph.states] == [
        s.to_notation() for s in clean.states
    ]
    assert chaos.injected["corrupt"] == 1


def test_fault_plan_is_deterministic_and_immune():
    plan = FaultPlan(seed=7, raise_rate=0.3, corrupt_rate=0.3, immune=2)
    decisions = [plan.decide(i) for i in range(64)]
    assert decisions == [plan.decide(i) for i in range(64)]
    assert decisions[0] is None and decisions[1] is None  # immune prefix
    assert any(d is not None for d in decisions)  # faults do happen
    pinned = FaultPlan(seed=7, fault_at=((5, "delay"),))
    assert pinned.decide(5) == "delay"
    assert all(pinned.decide(i) is None for i in range(64) if i != 5)


def test_chaos_delay_injects_through_sleep_hook():
    naps = []
    plan = FaultPlan(seed=1, fault_at=((1, "delay"),), delay_seconds=0.25)
    chaos = ChaosSemantics(spawner_loop(), plan, sleep=naps.append)
    sess = AnalysisSession(chaos.scheme, semantics=chaos)
    sess.explore(10)
    assert naps == [0.25]
    assert chaos.injected["delay"] == 1


# ----------------------------------------------------------------------
# Partial-verdict surface
# ----------------------------------------------------------------------


def test_partial_verdict_describe_and_certificate():
    scheme = spawner_loop()
    sess = AnalysisSession(scheme)
    verdict = boundedness(
        scheme, session=sess, budget=expired_budget(on_exhaust="partial")
    )
    text = verdict.describe()
    assert "deadline" in text and "boundedness" in text
    cert = verdict.progress
    assert cert.resource == "deadline"
    assert cert.states_explored == len(sess.graph.states)
    # checkpoints are plain JSON-ready data
    json.dumps(verdict.checkpoint)


def test_budget_requires_session_for_sessionless_entry_points():
    from repro.analysis import state_is_normed

    with pytest.raises(ValueError):
        state_is_normed(spawner_loop(), HState.leaf("m0"), budget=Budget())
    with pytest.raises(ValueError):
        backward_coverability(
            spawner_loop(), [HState.leaf("m0")], budget=Budget()
        )


def test_wait_blocked_family_also_governed():
    # a family with wait nodes exercises the non-wait-free code paths
    scheme = wait_blocked()
    verdict = boundedness(
        scheme,
        session=AnalysisSession(scheme),
        budget=expired_budget(on_exhaust="partial"),
    )
    assert isinstance(verdict, PartialVerdict)
