"""Tests for the shared AnalysisSession engine.

The session contract: every procedure run on a shared session returns
the *same verdict* a fresh per-call exploration would, while exploring
``M_G`` once; pausing at budget ``N`` and resuming to ``2N`` yields
state-for-state the graph a fresh ``2N`` run builds; the stats counters
obey their documented invariants; and positional calls against the
keyword-only signatures raise ``TypeError``.
"""

import warnings

import pytest

from repro.analysis import (
    AnalysisSession,
    AnalysisStats,
    ProgressEvent,
    analyze,
    boundedness,
    check_ctl,
    halts,
    mutually_exclusive,
    node_reachable,
    normed,
    persistent,
    state_reachable,
    sup_reachability,
)
from repro.analysis.ctl import AF, terminated
from repro.core.hstate import EMPTY, HState
from repro.core.semantics import MemoizingSemantics
from repro.errors import AnalysisBudgetExceeded, AnalysisError
from repro.zoo import (
    ZOO_ALL,
    ZOO_BOUNDED,
    fig2_scheme,
    spawner_loop,
    terminating_chain,
)

#: Budget cap so unbounded zoo schemes stay cheap in the differential runs.
BUDGET = 2_000


def _verdict_key(verdict):
    """The comparable core of a verdict (certificates may differ in type)."""
    return (verdict.holds, verdict.method, verdict.exact)


class TestDifferentialSessionReuse:
    """One shared session must answer exactly like fresh explorations."""

    @pytest.mark.parametrize("name,factory", ZOO_ALL)
    def test_battery_matches_fresh(self, name, factory):
        scheme = factory()
        session = AnalysisSession(scheme)

        def both(procedure, **kwargs):
            try:
                fresh = procedure(scheme, max_states=BUDGET, **kwargs)
            except AnalysisBudgetExceeded:
                fresh = None
            try:
                shared = procedure(scheme, max_states=BUDGET, session=session, **kwargs)
            except AnalysisBudgetExceeded:
                shared = None
            return fresh, shared

        for procedure in (boundedness, halts):
            fresh, shared = both(procedure)
            if fresh is None:
                assert shared is None
            else:
                assert _verdict_key(fresh) == _verdict_key(shared)
        for node in scheme.node_ids:
            fresh, shared = both(node_reachable, node=node)
            if fresh is not None and shared is not None:
                assert fresh.holds == shared.holds

    @pytest.mark.parametrize("name,factory", ZOO_ALL)
    def test_query_order_does_not_change_verdicts(self, name, factory):
        scheme = factory()
        first_node = next(iter(scheme.node_ids))
        forward = AnalysisSession(scheme)
        backward = AnalysisSession(scheme)

        def run(sess, procedures):
            out = []
            for procedure in procedures:
                try:
                    out.append(_verdict_key(procedure(sess)))
                except AnalysisBudgetExceeded:
                    out.append(None)
            return out

        queries = [
            lambda s: boundedness(scheme, max_states=BUDGET, session=s),
            lambda s: node_reachable(
                scheme, first_node, max_states=BUDGET, session=s
            ),
            lambda s: halts(scheme, max_states=BUDGET, session=s),
        ]
        assert sorted(
            run(forward, queries), key=repr
        ) == sorted(run(backward, list(reversed(queries))), key=repr)


class TestIncrementalExploration:
    def test_pause_resume_matches_fresh(self):
        scheme = spawner_loop()
        small, large = 50, 150
        resumed = AnalysisSession(scheme)
        resumed.explore(small)
        assert len(resumed.graph) >= small
        resumed.explore(large)
        fresh = AnalysisSession(scheme)
        fresh.explore(large)
        assert resumed.graph.states == fresh.graph.states
        assert [len(out) for out in resumed.graph.edges] == [
            len(out) for out in fresh.graph.edges
        ]
        assert resumed.graph.complete == fresh.graph.complete

    def test_resume_never_restarts(self):
        scheme = spawner_loop()
        session = AnalysisSession(scheme)
        session.explore(80)
        expanded_before = session.stats.states_expanded
        session.explore(80)  # no growth: budget already reached
        assert session.stats.states_expanded == expanded_before
        session.explore(160)
        assert session.stats.states_expanded > expanded_before
        assert session.stats.explorations == 1

    def test_saturation_is_stable(self):
        scheme = terminating_chain(4)
        session = AnalysisSession(scheme)
        graph = session.explore()
        assert graph.complete
        states = list(graph.states)
        assert session.explore(10 * len(states)).states == states


class TestAnalysisStats:
    def test_counter_invariants(self):
        scheme = fig2_scheme()
        session = AnalysisSession(scheme)
        node_reachable(scheme, "q5", max_states=BUDGET, session=session)
        impossible = HState((("q0", HState.leaf("q0")),))  # main inside main
        with pytest.raises(AnalysisBudgetExceeded):
            state_reachable(scheme, impossible, max_states=BUDGET, session=session)
        stats = session.stats
        assert stats.states_expanded <= stats.states_discovered
        assert stats.states_discovered == len(session.graph)
        assert stats.successor_cache_hits >= 0
        assert stats.successor_cache_misses >= stats.states_expanded
        assert stats.peak_frontier >= 1
        assert stats.transitions_fired == session.graph.num_transitions
        assert sum(stats.queries.values()) >= 2
        snapshot = stats.as_dict()
        assert snapshot["states_discovered"] == stats.states_discovered
        assert "states expanded" in stats.render()

    def test_single_exploration_across_many_queries(self):
        scheme = terminating_chain(5)
        session = AnalysisSession(scheme)
        boundedness(scheme, session=session)
        halts(scheme, session=session)
        normed(scheme, session=session)
        check_ctl(scheme, AF(terminated()), session=session)
        for node in scheme.node_ids:
            node_reachable(scheme, node, session=session)
        assert session.stats.explorations == 1

    def test_analyze_explores_once(self):
        for name, factory in ZOO_BOUNDED[:4]:
            report = analyze(factory(), max_states=BUDGET)
            assert report.stats is not None
            assert report.stats.explorations == 1

    def test_progress_listener_fires(self):
        scheme = spawner_loop()
        session = AnalysisSession(scheme, progress_interval=10)
        events = []
        session.on_progress(events.append)
        session.explore(300)
        assert events
        assert all(isinstance(event, ProgressEvent) for event in events)
        assert events[-1].states <= len(session.graph)


class TestMemoization:
    def test_successor_cache_hits_on_requery(self):
        scheme = terminating_chain(4)
        session = AnalysisSession(scheme)
        boundedness(scheme, session=session)
        hits_before = session.stats.successor_cache_hits
        verdict = boundedness(scheme, session=session)
        assert verdict.holds
        # the conclusive verdict is memoized: no new successor computation
        assert session.stats.successor_cache_misses == len(session.graph)
        assert session.stats.successor_cache_hits >= hits_before

    def test_interning_collapses_equal_states(self):
        scheme = fig2_scheme()
        semantics = MemoizingSemantics(scheme)
        first = semantics.successors(semantics.initial_state)
        second = semantics.successors(semantics.initial_state)
        assert first is second  # cached list
        duplicate = HState.leaf("q0")
        assert semantics.intern(duplicate) is semantics.intern(HState.leaf("q0"))
        assert semantics.interned_states >= 1

    def test_ctl_checker_shared(self):
        scheme = terminating_chain(3)
        session = AnalysisSession(scheme)
        check_ctl(scheme, AF(terminated()), session=session)
        checker = session.memo["ctl-checker"]
        check_ctl(scheme, AF(terminated()), session=session)
        assert session.memo["ctl-checker"] is checker

    def test_kept_states_cached_across_procedures(self):
        scheme = fig2_scheme()
        session = AnalysisSession(scheme)
        sup_reachability(scheme, session=session)
        kept = session.memo["kept-states"]
        persistent(scheme, ["q0"], session=session)
        assert session.memo["kept-states"] is kept


class TestResolveSession:
    def test_wrong_scheme_rejected(self):
        session = AnalysisSession(terminating_chain(3))
        with pytest.raises(AnalysisError):
            boundedness(fig2_scheme(), session=session)

    def test_other_initial_uses_throwaway(self):
        scheme = fig2_scheme()
        session = AnalysisSession(scheme)
        verdict = boundedness(
            scheme, initial=HState.leaf("q5"), max_states=BUDGET, session=session
        )
        assert verdict.holds
        assert verdict.certificate.states == 3
        # the shared session's graph must be untouched by the foreign query
        assert len(session.graph) == 1

    def test_matching_initial_reuses_session(self):
        scheme = terminating_chain(3)
        session = AnalysisSession(scheme)
        boundedness(scheme, initial=session.initial, session=session)
        assert session.stats.explorations == 1


class TestKeywordOnlySignatures:
    """The PR-1 positional-argument grace period is over: keyword-only
    signatures are the documented contract, and positional calls raise
    ``TypeError`` like any other Python keyword-only violation."""

    def test_positional_calls_raise_type_error(self):
        scheme = terminating_chain(4)
        node = next(iter(scheme.node_ids))
        with pytest.raises(TypeError):
            boundedness(scheme, None, 1_000)
        with pytest.raises(TypeError):
            node_reachable(scheme, node, None, 1_000)
        with pytest.raises(TypeError):
            halts(scheme, None, 1_000)
        with pytest.raises(TypeError):
            state_reachable(scheme, EMPTY, None, 1_000)
        with pytest.raises(TypeError):
            sup_reachability(scheme, None, 1_000)
        with pytest.raises(TypeError):
            normed(scheme, 1_000)
        with pytest.raises(TypeError):
            persistent(scheme, [node], None, 1_000)
        with pytest.raises(TypeError):
            mutually_exclusive(scheme, node, node, None, 1_000)
        with pytest.raises(TypeError):
            analyze(scheme, 1_000)

    def test_keyword_calls_do_not_warn(self):
        scheme = terminating_chain(3)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            boundedness(scheme, max_states=1_000)
            mutually_exclusive(
                scheme,
                next(iter(scheme.node_ids)),
                next(iter(scheme.node_ids)),
                max_states=1_000,
            )
            analyze(scheme, max_states=1_000)


class TestVerdictShape:
    def test_ctl_result_is_analysis_verdict(self):
        from repro.analysis import AnalysisVerdict, CTLResult

        scheme = terminating_chain(3)
        result = check_ctl(scheme, AF(terminated()))
        assert isinstance(result, CTLResult)
        assert isinstance(result, AnalysisVerdict)
        assert result.method == "ctl-labelling"
        assert result.states == len(result.satisfying) or result.states >= 1
        assert bool(result) == result.holds
