"""Differential tests for the WQO embedding fast path.

The accelerated decision procedure (signature refutation + shared memo,
:class:`repro.core.embedding.Embedder` / :class:`EmbeddingIndex`) must
agree with the retained naive reference (:func:`repro.core.embedding.naive_embeds`)
on every query — plain and gap variants alike — and the signature-indexed
antichain stores must produce antichain-equal bases to the unindexed
representation.  States come from the seeded generator of
:mod:`repro.core.generate` plus hypothesis-drawn ones, so the space of
shapes (shared labels, deep/wide mixes) is swept reproducibly.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding import (
    Embedder,
    EmbeddingIndex,
    GapEmbedding,
    embeds,
    is_minimal_among,
    naive_embeds,
    strictly_embeds,
)
from repro.core.generate import random_hstate
from repro.core.hstate import HState, Signature
from repro.wqo import (
    UpwardClosedSet,
    antichain,
    embedding_upward_closed,
    minimal_elements,
    signature_compatible,
    state_signature,
    tree_embedding_order,
)

from .test_hstate import hstates

P = HState.parse

GAP_SETS = [None, frozenset(), frozenset({"a"}), frozenset({"a", "b", "c"})]


def _pool(base_seed, count, max_size=7):
    return [random_hstate(base_seed + i, max_size=max_size) for i in range(count)]


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------


class TestSignature:
    def test_interned(self):
        a = P("a,{b,c}")
        b = P("a,{c,b}")
        assert a.signature is b.signature

    def test_domination_is_necessary(self):
        for i, j in itertools.product(range(40), repeat=2):
            small, big = random_hstate(i), random_hstate(1000 + j)
            if naive_embeds(small, big):
                assert small.signature.dominated_by(big.signature)

    def test_domination_fields(self):
        sig = P("a,{b,b}").signature
        assert isinstance(sig, Signature)
        assert sig.size == 3 and sig.height == 2
        assert sig.counts == {"a": 1, "b": 2}

    @given(hstates(), hstates())
    @settings(max_examples=150, deadline=None)
    def test_domination_never_lies(self, small, big):
        if not small.signature.dominated_by(big.signature):
            assert not naive_embeds(small, big)


# ----------------------------------------------------------------------
# Accelerated vs naive decision procedure
# ----------------------------------------------------------------------


class TestDifferentialEmbeds:
    @pytest.mark.parametrize("gap", GAP_SETS, ids=["plain", "empty", "a", "abc"])
    def test_random_pairs_agree(self, gap):
        index = EmbeddingIndex()
        embedding = None if gap is None else GapEmbedding(gap)
        pool = _pool(0, 25)
        for small, big in itertools.product(pool, repeat=2):
            expected = naive_embeds(small, big, gap)
            assert index.embeds(small, big, embedding) == expected
            # ask again: the memoised answer must not drift
            assert index.embeds(small, big, embedding) == expected

    @given(hstates(), hstates())
    @settings(max_examples=200, deadline=None)
    def test_hypothesis_pairs_agree(self, small, big):
        assert embeds(small, big) == naive_embeds(small, big)

    def test_shared_embedder_matches_throwaway(self):
        shared = Embedder()
        pool = _pool(50, 20)
        for small, big in itertools.product(pool, repeat=2):
            assert shared.forest_embeds(small, big) == embeds(small, big)

    def test_strictly_embeds_with_shared_embedder(self):
        shared = Embedder()
        pool = _pool(100, 15)
        for small, big in itertools.product(pool, repeat=2):
            assert strictly_embeds(small, big, embedder=shared) == (
                small != big and naive_embeds(small, big)
            )

    def test_is_minimal_among_with_shared_embedder(self):
        shared = Embedder()
        pool = _pool(150, 15)
        for state in pool:
            expected = not any(
                other != state and naive_embeds(other, state) for other in pool
            )
            assert is_minimal_among(state, pool, embedder=shared) == expected

    def test_counters_move(self):
        index = EmbeddingIndex()
        small, big = P("a,{b}"), P("c,{a,{b},d}")
        assert index.embeds(small, big)
        assert index.embeds(small, big)
        assert index.calls == 2
        assert index.memo_hits == 1
        assert not index.embeds(P("z"), big)
        assert index.signature_refutations >= 1

    def test_naive_mode_agrees_and_never_refutes(self):
        naive = EmbeddingIndex(accelerated=False)
        pool = _pool(200, 15)
        for small, big in itertools.product(pool, repeat=2):
            assert naive.embeds(small, big) == naive_embeds(small, big)
        assert naive.signature_refutations == 0


# ----------------------------------------------------------------------
# Indexed antichain stores
# ----------------------------------------------------------------------


def _antichain_key(states):
    return sorted(s.sort_key() for s in states)


class TestIndexedBasis:
    @pytest.mark.parametrize("seed", range(6))
    def test_upward_closed_basis_matches_unindexed(self, seed):
        states = _pool(seed * 100, 30, max_size=6)
        plain = UpwardClosedSet(tree_embedding_order(), states)
        indexed = embedding_upward_closed(states)
        assert _antichain_key(indexed.basis) == _antichain_key(plain.basis)
        for probe in _pool(seed * 100 + 50, 20, max_size=6):
            assert (probe in indexed) == (probe in plain)

    def test_antichain_helper_matches_minimal_elements(self):
        states = _pool(700, 40, max_size=6)
        order = tree_embedding_order()
        expected = minimal_elements(order, states)
        indexed = antichain(
            order, states, measure=state_signature, compatible=signature_compatible
        )
        assert _antichain_key(indexed) == _antichain_key(expected)

    def test_union_and_inclusion_preserve_index(self):
        order = tree_embedding_order()
        left = embedding_upward_closed(_pool(800, 12, max_size=5))
        right = embedding_upward_closed(_pool(850, 12, max_size=5))
        union = left.union(right)
        plain = UpwardClosedSet(order, list(left.basis) + list(right.basis))
        assert _antichain_key(union.basis) == _antichain_key(plain.basis)
        assert union.includes(left) and union.includes(right)

    def test_add_reports_growth_identically(self):
        order = tree_embedding_order()
        plain = UpwardClosedSet(order)
        indexed = embedding_upward_closed()
        for state in _pool(900, 40, max_size=5):
            assert indexed.add(state) == plain.add(state)
        assert _antichain_key(indexed.basis) == _antichain_key(plain.basis)
