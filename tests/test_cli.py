"""Tests for the rpcheck command-line tool."""

import pytest

from repro.cli import main
from repro.zoo import FIG1_PROGRAM

CONCRETE = """
global x := 0;
program main {
    x := x + 2;
    x := x * 3;
    end;
}
"""


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.rp"
    path.write_text(FIG1_PROGRAM)
    return str(path)


@pytest.fixture
def concrete_file(tmp_path):
    path = tmp_path / "prog.rp"
    path.write_text(CONCRETE)
    return str(path)


class TestCLI:
    def test_report_on_fig1(self, fig1_file, capsys):
        code = main([fig1_file, "--max-states", "2000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "nodes     : 13" in out
        assert "boundedness" in out
        assert "halting" in out
        assert "unreachable nodes  (none)" in out

    def test_fig1_is_unbounded_and_nonhalting(self, fig1_file, capsys):
        main([fig1_file, "--max-states", "2000"])
        out = capsys.readouterr().out
        bound_line = [l for l in out.splitlines() if "boundedness" in l][0]
        halt_line = [l for l in out.splitlines() if "halting" in l][0]
        assert " no " in bound_line
        assert " no " in halt_line

    def test_node_flag(self, fig1_file, capsys):
        code = main([fig1_file, "--max-states", "2000", "--node", "q5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reach q5" in out

    def test_mutex_flag(self, fig1_file, capsys):
        code = main([fig1_file, "--max-states", "2000", "--mutex", "q0,q7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mutex q0,q7" in out

    def test_dot_output(self, fig1_file, tmp_path, capsys):
        dot = tmp_path / "scheme.dot"
        code = main([fig1_file, "--max-states", "2000", "--dot", str(dot)])
        assert code == 0
        text = dot.read_text()
        assert "digraph" in text
        assert "pentagon" in text  # the pcall shape

    def test_run_concrete(self, concrete_file, capsys):
        code = main([concrete_file, "--run"])
        out = capsys.readouterr().out
        assert code == 0
        assert "'x': 6" in out

    def test_missing_file(self, capsys):
        code = main(["/nonexistent/prog.rp"])
        assert code == 2
        assert "rpcheck:" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.rp"
        path.write_text("program main { a1 }")
        code = main([str(path)])
        assert code == 2

    def test_unknown_node(self, fig1_file, capsys):
        code = main([fig1_file, "--max-states", "2000", "--node", "zz"])
        assert code == 1

    def test_min_reach_basis_reported(self, concrete_file, capsys):
        main([concrete_file])
        out = capsys.readouterr().out
        assert "min-reach basis" in out
        assert "∅" in out  # the program terminates


RACY = """
global shared := 0;
program main {
    pcall w;
    shared := shared + 1;
    wait;
    end;
}
procedure w { shared := shared * 2; end; }
"""


class TestCLIExtensions:
    def test_races_flag_detects_conflict(self, tmp_path, capsys):
        path = tmp_path / "racy.rp"
        path.write_text(RACY)
        code = main([str(path), "--races"])
        out = capsys.readouterr().out
        assert "CONFLICTS" in out
        assert code == 1

    def test_races_flag_safe_program(self, concrete_file, capsys):
        code = main([concrete_file, "--races"])
        out = capsys.readouterr().out
        # x is written twice but only by the single main invocation
        assert "safe" in out
        assert code == 0

    def test_optimize_flag(self, tmp_path, capsys):
        path = tmp_path / "dup.rp"
        path.write_text(
            "program main { if b then { a1; } else { a1; } end; }"
        )
        code = main([str(path), "--optimize"])
        out = capsys.readouterr().out
        assert code == 0
        assert "nodes merged" in out

    def test_json_flag(self, fig1_file, tmp_path, capsys):
        target = tmp_path / "scheme.json"
        code = main([fig1_file, "--max-states", "2000", "--json", str(target)])
        assert code == 0
        from repro.core.serialize import scheme_from_json
        from repro.core.isomorphism import isomorphic
        from repro.zoo import fig2_scheme

        assert isomorphic(scheme_from_json(target.read_text()), fig2_scheme())

    def test_lint_flag(self, tmp_path, capsys):
        path = tmp_path / "lints.rp"
        path.write_text("program main { wait; end; } procedure g { end; }")
        code = main([str(path), "--lint"])
        out = capsys.readouterr().out
        assert "W001" in out and "W002" in out

    def test_lint_flag_clean(self, fig1_file, capsys):
        main([fig1_file, "--max-states", "2000", "--lint"])
        assert "(clean)" in capsys.readouterr().out


class TestGovernanceFlags:
    def test_deadline_zero_reports_budget_and_fails(self, fig1_file, capsys):
        code = main([fig1_file, "--deadline", "0"])
        out = capsys.readouterr().out
        assert code == 1
        assert "budget    : deadline exhausted" in out
        assert "inconclusive" in out

    def test_checkpoint_roundtrip_through_cli(self, fig1_file, tmp_path, capsys):
        checkpoint = tmp_path / "run.json"
        code = main(
            [fig1_file, "--max-states", "2000", "--checkpoint", str(checkpoint)]
        )
        first = capsys.readouterr().out
        assert code == 0
        assert f"checkpoint: written to {checkpoint}" in first
        assert checkpoint.exists()

        code = main([fig1_file, "--max-states", "2000", "--resume", str(checkpoint)])
        second = capsys.readouterr().out
        assert code == 0
        assert "resumed   :" in second

        def analyses(text):
            return [l for l in text.splitlines() if l.startswith("  ")]

        assert analyses(first) == analyses(second)

    def test_interrupted_checkpoint_resumes_to_full_verdict(
        self, fig1_file, tmp_path, capsys
    ):
        checkpoint = tmp_path / "partial.json"
        code = main([fig1_file, "--deadline", "0", "--checkpoint", str(checkpoint)])
        out = capsys.readouterr().out
        assert code == 1 and "inconclusive" in out

        code = main([fig1_file, "--max-states", "2000", "--resume", str(checkpoint)])
        resumed = capsys.readouterr().out
        assert "boundedness        no" in resumed

        code = main([fig1_file, "--max-states", "2000"])
        fresh = capsys.readouterr().out
        assert [l for l in resumed.splitlines() if l.startswith("  ")] == [
            l for l in fresh.splitlines() if l.startswith("  ")
        ]

    def test_resume_rejects_garbage(self, fig1_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main([fig1_file, "--resume", str(bad)])
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_mem_limit_flag_accepted(self, fig1_file, capsys):
        # a generous ceiling must not change the outcome
        code = main([fig1_file, "--max-states", "2000", "--mem-limit", "4096"])
        assert code == 0
