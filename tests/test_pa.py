"""PA terms, SOS semantics, and the RP → PA translation."""

import pytest

from repro.lang import parse_program
from repro.pa import (
    Act,
    Choice,
    Nil,
    PAError,
    PASystem,
    Par,
    Seq,
    TranslationError,
    Var,
    choice,
    par,
    seq,
    traces_agree,
    translate_program,
)


class TestTermConstruction:
    def test_seq_folds_units(self):
        assert seq(Nil(), Act("a"), Nil()) == Act("a")
        assert seq() == Nil()

    def test_par_folds_units(self):
        assert par(Nil(), Act("a")) == Act("a")
        assert par() == Nil()

    def test_choice_requires_operands(self):
        with pytest.raises(PAError):
            choice()


class TestSOS:
    def system(self, root, **defs):
        return PASystem(defs, root=root)

    def test_action(self):
        system = self.system(Act("a"))
        assert system.successors(Act("a")) == [("a", Nil())]

    def test_seq_left_first(self):
        system = self.system(Seq(Act("a"), Act("b")))
        [(label, target)] = system.successors(system.root)
        assert label == "a"
        assert system.successors(target) == [("b", Nil())]

    def test_seq_skips_terminated_left(self):
        system = self.system(Seq(Nil(), Act("b")))
        assert system.successors(system.root) == [("b", Nil())]

    def test_par_interleaves(self):
        system = self.system(Par(Act("a"), Act("b")))
        labels = {label for label, _ in system.successors(system.root)}
        assert labels == {"a", "b"}

    def test_choice(self):
        system = self.system(Choice(Act("a"), Act("b")))
        labels = {label for label, _ in system.successors(system.root)}
        assert labels == {"a", "b"}

    def test_recursion(self):
        system = self.system(Var("X"), X=Choice(Seq(Act("a"), Var("X")), Act("b")))
        traces = system.traces(3)
        assert ("a", "a", "b") in traces
        assert ("b",) in traces
        assert ("b", "a") not in traces

    def test_termination_predicate(self):
        system = self.system(Nil(), X=Act("a"))
        assert system.terminated(Nil())
        assert not system.terminated(Act("a"))
        assert system.terminated(Choice(Nil(), Act("a")))
        assert not system.terminated(Par(Nil(), Act("a")))

    def test_unbound_variable_rejected(self):
        with pytest.raises(PAError):
            PASystem({}, root=Var("ghost"))

    def test_unguarded_recursion_rejected(self):
        with pytest.raises(PAError):
            PASystem({"X": Var("X")}, root=Var("X"))
        with pytest.raises(PAError):
            PASystem({"X": Choice(Var("Y"), Act("a")), "Y": Seq(Var("X"), Act("b"))},
                     root=Var("X"))

    def test_guarded_recursion_accepted(self):
        PASystem({"X": Seq(Act("a"), Var("X"))}, root=Var("X"))

    def test_completed_traces(self):
        system = self.system(Choice(Act("a"), Seq(Act("b"), Act("c"))))
        assert system.completed_traces(5) == {("a",), ("b", "c")}

    def test_anbn_language(self):
        # X = a·(X·b) + a·b : the classic {a^n b^n} BPA process
        system = self.system(
            Var("X"),
            X=Choice(Seq(Act("a"), Seq(Var("X"), Act("b"))), Seq(Act("a"), Act("b"))),
        )
        completed = system.completed_traces(6)
        assert completed == {
            ("a", "b"),
            ("a", "a", "b", "b"),
            ("a", "a", "a", "b", "b", "b"),
        }


class TestTranslation:
    def test_sequential_program(self):
        program = parse_program("program main { a1; a2; end; }")
        system = translate_program(program)
        assert system.completed_traces(5) == {("a1", "a2")}

    def test_pcall_wait_brackets(self):
        program = parse_program(
            "program main { pcall p; a; wait; b; end; } procedure p { c; end; }"
        )
        system = translate_program(program)
        completed = system.completed_traces(5)
        # c and a interleave before the join; b strictly after
        assert completed == {("c", "a", "b"), ("a", "c", "b")}

    def test_nested_pcalls_share_wait(self):
        program = parse_program(
            "program main { pcall p; pcall p; wait; b; end; } procedure p { c; end; }"
        )
        system = translate_program(program)
        completed = system.completed_traces(5)
        assert completed == {("c", "c", "b")}

    def test_end_discards_continuation(self):
        program = parse_program("program main { a; end; b; }")
        system = translate_program(program)
        assert system.completed_traces(3) == {("a",)}

    def test_goto_rejected(self):
        program = parse_program("program main { l: a; goto l; }")
        with pytest.raises(TranslationError):
            translate_program(program)

    def test_wait_in_branch_rejected(self):
        program = parse_program(
            "program main { pcall p; if b then { wait; } end; } procedure p { end; }"
        )
        with pytest.raises(TranslationError):
            translate_program(program)

    def test_leaky_loop_rejected(self):
        program = parse_program(
            "program main { while b do { pcall p; } end; } procedure p { end; }"
        )
        with pytest.raises(TranslationError):
            translate_program(program)

    def test_concrete_test_rejected(self):
        program = parse_program(
            "global x := 0; program main { if x > 0 then { a; } end; }"
        )
        with pytest.raises(TranslationError):
            translate_program(program)


class TestLanguageEquality:
    """The RP ≡ PA language statement, executable on the structured
    fragment (bounded trace length)."""

    PROGRAMS = [
        "program main { a1; a2; end; }",
        "program main { if b then { a1; } else { a2; } end; }",
        "program main { pcall p; a; wait; b; end; } procedure p { c; end; }",
        "program main { pcall p; pcall q; wait; z; end; } "
        "procedure p { x; end; } procedure q { y; end; }",
        "program main { while b do { a; } c; end; }",
        # recursion with join: a^n ... b^n -like nesting
        "program main { pcall p; wait; done; end; } "
        "procedure p { if t then { a; pcall p; wait; b; } end; }",
        # unjoined children (no wait at all)
        "program main { pcall p; a; end; } procedure p { c; end; }",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_traces_agree(self, source):
        program = parse_program(source)
        assert traces_agree(program, max_length=6)

    def test_fig1_without_goto_agrees(self):
        # a structured variant of Fig. 1 (the goto-loop rewritten as while)
        source = """
        program main {
            a1;
            while b1 do { pcall subr1; a2; wait; }
            a3;
            end;
        }
        procedure subr1 {
            if b2 then { a4; } else { pcall subr1; a5; wait; }
            end;
        }
        """
        assert traces_agree(parse_program(source), max_length=5)


class TestFragments:
    def test_classify_finite(self):
        from repro.pa import classify
        from repro.pa.terms import Act, Seq

        system = PASystem({}, root=Seq(Act("a"), Act("b")))
        # a·b is action-prefixing only and has no recursion
        assert classify(system) == "finite"

    def test_classify_bpa(self):
        from repro.pa import bpa_anbn, classify

        assert classify(bpa_anbn()) == "BPA"

    def test_classify_bpp(self):
        from repro.pa import bpp_bag, classify

        assert classify(bpp_bag()) == "BPP"

    def test_classify_pa(self):
        from repro.pa import classify, pa_nested_fork

        assert classify(pa_nested_fork()) == "PA"

    def test_bpa_generates_anbn(self):
        from repro.pa import bpa_anbn

        completed = bpa_anbn().completed_traces(6)
        assert completed == {
            ("a", "b"),
            ("a", "a", "b", "b"),
            ("a", "a", "a", "b", "b", "b"),
        }

    def test_bpp_is_commutative(self):
        # the BPP bag accepts the b's in any order relative to later a's
        from repro.pa import bpp_bag

        traces = bpp_bag().traces(4)
        assert ("a", "a", "b", "b") in traces
        assert ("a", "b", "a", "b") in traces

    def test_sequential_rp_program_lands_in_bpa(self):
        from repro.pa import classify

        program = parse_program("program main { a1; a2; end; }")
        assert classify(translate_program(program)) in ("finite", "BPA")

    def test_forking_rp_program_lands_in_pa(self):
        from repro.pa import classify

        program = parse_program(
            "program main { pcall p; a; wait; b; end; } procedure p { c; end; }"
        )
        assert classify(translate_program(program)) == "PA"

    def test_unreachable_definitions_ignored(self):
        from repro.pa import classify
        from repro.pa.terms import Act, Par

        system = PASystem(
            {"Unused": Par(Act("a"), Act("b"))},
            root=Act("a"),
        )
        assert classify(system) == "finite"
