"""Tests for the lints and the run profiler."""

import pytest

from repro.interp import ProgramInterpretation, TrivialInterpretation
from repro.interp.profiler import profile_run, profile_trace
from repro.lang import compile_source, parse_program
from repro.lang.lint import lint, lint_program, lint_scheme
from repro.zoo import FIG1_PROGRAM, fig2_scheme


def codes(warnings):
    return sorted(w.code for w in warnings)


class TestProgramLints:
    def test_clean_program(self):
        program = parse_program(FIG1_PROGRAM)
        assert lint_program(program) == []

    def test_dead_procedure(self):
        program = parse_program(
            "program main { end; } procedure ghost { end; }"
        )
        assert codes(lint_program(program)) == ["W001"]

    def test_unreachable_statement(self):
        program = parse_program("program main { end; a1; }")
        assert "W003" in codes(lint_program(program))

    def test_labelled_statement_after_goto_ok(self):
        program = parse_program("program main { goto l; l: end; }")
        assert "W003" not in codes(lint_program(program))

    def test_empty_loop(self):
        program = parse_program("program main { while b do { } end; }")
        assert "W007" in codes(lint_program(program))

    def test_nested_findings(self):
        program = parse_program(
            "program main { if b then { end; a1; } end; }"
        )
        assert "W003" in codes(lint_program(program))


class TestSchemeLints:
    def test_clean_scheme(self):
        assert lint_scheme(fig2_scheme()) == []

    def test_unreachable_node(self):
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.end("q0")
        b.end("orphan")
        assert codes(lint_scheme(b.build(root="q0"))) == ["W005"]

    def test_moot_test(self):
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.test("q0", "b", then="q1", orelse="q1")
        b.end("q1")
        assert "W004" in codes(lint_scheme(b.build(root="q0")))

    def test_noop_wait(self):
        compiled = compile_source("program main { wait; end; }")
        assert "W002" in codes(lint_scheme(compiled.scheme))

    def test_unjoined_pcall(self):
        compiled = compile_source(
            "program main { pcall p; end; } procedure p { end; }"
        )
        assert "W006" in codes(lint_scheme(compiled.scheme))

    def test_joined_pcall_clean(self):
        compiled = compile_source(
            "program main { pcall p; wait; end; } procedure p { end; }"
        )
        findings = codes(lint_scheme(compiled.scheme))
        assert "W006" not in findings
        assert "W002" not in findings

    def test_lint_facade(self):
        program = parse_program("program main { wait; end; } procedure g { end; }")
        findings = codes(lint(program))
        assert "W001" in findings  # dead procedure g
        assert "W002" in findings  # no-op wait

    def test_warning_str(self):
        program = parse_program("program main { wait; end; }")
        [warning] = [w for w in lint(program) if w.code == "W002"]
        assert "W002" in str(warning)


class TestProfiler:
    SOURCE = """
    global jobs := 2;
    program main {
        pcall worker;
        pcall worker;
        wait;
        end;
    }
    procedure worker {
        jobs := jobs - 1;
        end;
    }
    """

    def test_profile_run_basics(self):
        compiled = compile_source(self.SOURCE)
        profile, final = profile_run(
            compiled.scheme, ProgramInterpretation(compiled)
        )
        assert final.is_terminated()
        assert profile.spawned == 3  # main + two workers
        assert profile.terminated == 3
        assert profile.waits_fired == 1
        assert profile.peak_parallelism >= 2
        assert profile.spawns_per_procedure == {"worker": 2}
        assert profile.final_live == 0

    def test_action_counts(self):
        compiled = compile_source(self.SOURCE)
        profile, _ = profile_run(compiled.scheme, ProgramInterpretation(compiled))
        assert sum(profile.action_counts.values()) == profile.visible_steps
        [label] = profile.action_counts
        assert profile.action_counts[label] == 2  # two decrements

    def test_blocked_wait_steps_counted(self):
        # main blocks at its wait while the worker works
        compiled = compile_source(self.SOURCE)
        profile, _ = profile_run(compiled.scheme, ProgramInterpretation(compiled))
        assert profile.blocked_wait_steps > 0

    def test_depth_on_recursive_program(self):
        compiled = compile_source(FIG1_PROGRAM)
        interp = TrivialInterpretation(branches={"b1": False, "b2": False})
        # b2 = False recurses once... b2=False means else-branch: pcall;
        # a5; wait — infinite recursion; bound the run and profile the
        # prefix via a scheduler with a step limit
        from repro.errors import ExecutionError
        from repro.interp import run_scheduled

        with pytest.raises(ExecutionError):
            run_scheduled(compiled.scheme, interp, max_steps=40)

    def test_profile_trace_empty(self):
        compiled = compile_source(self.SOURCE)
        from repro.interp import InterpretedSemantics, ProgramInterpretation

        semantics = InterpretedSemantics(
            compiled.scheme, ProgramInterpretation(compiled)
        )
        profile = profile_trace(
            compiled.scheme, [], initial=semantics.initial_state
        )
        assert profile.steps == 0
        assert profile.final_live == 1

    def test_summary_renders(self):
        compiled = compile_source(self.SOURCE)
        profile, _ = profile_run(compiled.scheme, ProgramInterpretation(compiled))
        text = profile.summary()
        assert "parallelism" in text
        assert "waits" in text
