"""Tests for RP scheme construction and validation."""

import pytest

from repro.core.alphabet import TAU, Alphabet
from repro.core.builder import SchemeBuilder
from repro.core.scheme import Node, NodeKind, RPScheme
from repro.errors import SchemeError
from repro.zoo import fig2_scheme


class TestAlphabet:
    def test_basic(self):
        a = Alphabet(["a1", "a2"])
        assert "a1" in a
        assert len(a) == 2
        assert TAU in a.with_tau()

    def test_tau_rejected(self):
        with pytest.raises(ValueError):
            Alphabet([TAU])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Alphabet([""])

    def test_union_and_equality(self):
        assert Alphabet(["a"]) | Alphabet(["b"]) == Alphabet(["a", "b"])
        assert hash(Alphabet(["a", "b"])) == hash(Alphabet(["b", "a"]))

    def test_iteration_sorted(self):
        assert list(Alphabet(["b", "a"])) == ["a", "b"]


class TestValidation:
    def test_unknown_root(self):
        with pytest.raises(SchemeError):
            RPScheme([Node("q0", NodeKind.END)], root="qX")

    def test_duplicate_ids(self):
        with pytest.raises(SchemeError):
            RPScheme([Node("q0", NodeKind.END), Node("q0", NodeKind.END)], root="q0")

    def test_unknown_successor(self):
        with pytest.raises(SchemeError):
            RPScheme(
                [Node("q0", NodeKind.ACTION, label="a", successors=("qX",))],
                root="q0",
            )

    def test_action_needs_label(self):
        with pytest.raises(SchemeError):
            RPScheme(
                [Node("q0", NodeKind.ACTION, successors=("q1",)), Node("q1", NodeKind.END)],
                root="q0",
            )

    def test_test_needs_two_successors(self):
        with pytest.raises(SchemeError):
            RPScheme(
                [Node("q0", NodeKind.TEST, label="b", successors=("q1",)),
                 Node("q1", NodeKind.END)],
                root="q0",
            )

    def test_pcall_needs_invoked(self):
        with pytest.raises(SchemeError):
            RPScheme(
                [Node("q0", NodeKind.PCALL, successors=("q1",)), Node("q1", NodeKind.END)],
                root="q0",
            )

    def test_end_cannot_have_successors(self):
        with pytest.raises(SchemeError):
            RPScheme(
                [Node("q0", NodeKind.END, successors=("q0",))],
                root="q0",
            )

    def test_wait_cannot_carry_label(self):
        with pytest.raises(SchemeError):
            RPScheme(
                [Node("q0", NodeKind.WAIT, label="x", successors=("q1",)),
                 Node("q1", NodeKind.END)],
                root="q0",
            )

    def test_unknown_procedure_entry(self):
        with pytest.raises(SchemeError):
            RPScheme([Node("q0", NodeKind.END)], root="q0", procedures={"p": "qZ"})


class TestBuilder:
    def test_duplicate_node_rejected(self):
        b = SchemeBuilder()
        b.end("q0")
        with pytest.raises(SchemeError):
            b.end("q0")

    def test_duplicate_procedure_rejected(self):
        b = SchemeBuilder()
        b.end("q0")
        b.procedure("p", "q0")
        with pytest.raises(SchemeError):
            b.procedure("p", "q0")

    def test_fresh_ids_do_not_collide(self):
        b = SchemeBuilder()
        b.end("q0")
        assert b.fresh_id() == "q1"
        assert b.fresh_id() == "q2"

    def test_contains(self):
        b = SchemeBuilder()
        b.end("q0")
        assert "q0" in b
        assert "q1" not in b


class TestSchemeQueries:
    def test_fig2_inventory(self):
        scheme = fig2_scheme()
        assert len(scheme) == 13
        assert scheme.root == "q0"
        kinds = {
            NodeKind.ACTION: 5,
            NodeKind.TEST: 2,
            NodeKind.PCALL: 2,
            NodeKind.WAIT: 2,
            NodeKind.END: 2,
        }
        for kind, count in kinds.items():
            assert len(scheme.nodes_of_kind(kind)) == count

    def test_fig2_alphabet(self):
        assert fig2_scheme().alphabet() == Alphabet(
            ["a1", "a2", "a3", "a4", "a5", "b1", "b2"]
        )

    def test_transition_labels(self):
        scheme = fig2_scheme()
        assert scheme.transition_label("q0") == "a1"
        assert scheme.transition_label("q1") == TAU  # pcall
        assert scheme.transition_label("q4") == TAU  # wait
        assert scheme.transition_label("q6") == TAU  # end

    def test_initial_state(self):
        assert fig2_scheme().initial_state().to_notation() == "q0"

    def test_graph_reachability_complete_for_fig2(self):
        scheme = fig2_scheme()
        assert scheme.unreachable_in_graph() == frozenset()

    def test_unreachable_node_detected(self):
        b = SchemeBuilder()
        b.end("q0")
        b.end("orphan")
        scheme = b.build(root="q0")
        assert scheme.unreachable_in_graph() == frozenset({"orphan"})

    def test_is_wait_free(self):
        assert not fig2_scheme().is_wait_free
        b = SchemeBuilder()
        b.action("q0", "a", "q1")
        b.end("q1")
        assert b.build(root="q0").is_wait_free

    def test_unknown_node_lookup(self):
        with pytest.raises(SchemeError):
            fig2_scheme().node("qZZ")

    def test_procedures_metadata(self):
        scheme = fig2_scheme()
        assert scheme.procedures == {"main": "q0", "subr1": "q7"}
