"""Tests for the AST → scheme compiler and scheme isomorphism."""

import pytest

from repro.core.isomorphism import find_isomorphism, isomorphic
from repro.core.scheme import NodeKind
from repro.errors import SemanticError
from repro.lang import compile_source
from repro.zoo import FIG1_PROGRAM, fig2_scheme


class TestBasicCompilation:
    def test_single_end(self):
        compiled = compile_source("program main { end; }")
        scheme = compiled.scheme
        assert len(scheme) == 1
        assert scheme.node(scheme.root).kind is NodeKind.END

    def test_action_chain(self):
        compiled = compile_source("program main { a1; a2; end; }")
        scheme = compiled.scheme
        assert len(scheme) == 3
        root = scheme.node(scheme.root)
        assert root.kind is NodeKind.ACTION and root.label == "a1"
        second = scheme.node(root.successors[0])
        assert second.label == "a2"
        assert scheme.node(second.successors[0]).kind is NodeKind.END

    def test_implicit_end(self):
        compiled = compile_source("program main { a1; }")
        scheme = compiled.scheme
        assert len(scheme) == 2
        last = scheme.node(scheme.node(scheme.root).successors[0])
        assert last.kind is NodeKind.END

    def test_empty_body_gets_end(self):
        scheme = compile_source("program main { }").scheme
        assert scheme.node(scheme.root).kind is NodeKind.END

    def test_pcall_wires_procedure_entry(self):
        compiled = compile_source(
            "program main { pcall p; wait; end; } procedure p { w; end; }"
        )
        scheme = compiled.scheme
        root = scheme.node(scheme.root)
        assert root.kind is NodeKind.PCALL
        invoked = scheme.node(root.invoked)
        assert invoked.label == "w"
        assert scheme.procedures["p"] == invoked.id

    def test_if_branches_join(self):
        compiled = compile_source(
            "program main { if b then { a1; } else { a2; } a3; end; }"
        )
        scheme = compiled.scheme
        test = scheme.node(scheme.root)
        assert test.kind is NodeKind.TEST
        then_node = scheme.node(test.successors[0])
        else_node = scheme.node(test.successors[1])
        assert then_node.label == "a1"
        assert else_node.label == "a2"
        # both branches join at a3
        assert then_node.successors[0] == else_node.successors[0]
        join = scheme.node(then_node.successors[0])
        assert join.label == "a3"

    def test_empty_else_falls_through(self):
        compiled = compile_source("program main { if b then { a1; } a2; end; }")
        scheme = compiled.scheme
        test = scheme.node(scheme.root)
        else_target = scheme.node(test.successors[1])
        assert else_target.label == "a2"

    def test_while_desugars_to_test_with_back_edge(self):
        compiled = compile_source("program main { while b do { a1; } a2; end; }")
        scheme = compiled.scheme
        test = scheme.node(scheme.root)
        assert test.kind is NodeKind.TEST
        body = scheme.node(test.successors[0])
        assert body.label == "a1"
        assert body.successors[0] == test.id  # back edge
        assert scheme.node(test.successors[1]).label == "a2"

    def test_goto_backward(self):
        compiled = compile_source("program main { l: a1; goto l; }")
        scheme = compiled.scheme
        action = scheme.node(scheme.root)
        assert action.successors[0] == action.id

    def test_goto_forward(self):
        compiled = compile_source("program main { goto skip; a1; skip: a2; end; }")
        scheme = compiled.scheme
        root = scheme.node(scheme.root)
        assert root.label == "a2"

    def test_recursive_procedure(self):
        compiled = compile_source(
            "program main { pcall p; end; } "
            "procedure p { if b then { pcall p; wait; } end; }"
        )
        scheme = compiled.scheme
        entry = scheme.procedures["p"]
        inner_pcalls = [
            n for n in scheme if n.kind is NodeKind.PCALL and n.invoked == entry
        ]
        assert len(inner_pcalls) == 2  # from main and from p itself


class TestCompilationErrors:
    def test_unknown_procedure(self):
        with pytest.raises(SemanticError):
            compile_source("program main { pcall ghost; end; }")

    def test_unknown_label(self):
        with pytest.raises(SemanticError):
            compile_source("program main { goto nowhere; end; }")

    def test_duplicate_label(self):
        with pytest.raises(SemanticError):
            compile_source("program main { l: a1; l: a2; end; }")

    def test_labels_are_procedure_scoped(self):
        compiled = compile_source(
            "program main { l: a1; goto l; } procedure p { l: a2; goto l; }"
        )
        assert len(compiled.scheme) >= 2

    def test_goto_cycle(self):
        with pytest.raises(SemanticError):
            compile_source("program main { l1: goto l2; l2: goto l1; }")

    def test_duplicate_procedure(self):
        with pytest.raises(SemanticError):
            compile_source(
                "program main { end; } procedure p { end; } procedure p { end; }"
            )

    def test_undeclared_assignment_target(self):
        with pytest.raises(SemanticError):
            compile_source("program main { x := 1; end; }")

    def test_undeclared_expression_variable(self):
        with pytest.raises(SemanticError):
            compile_source("global x := 0; program main { x := y + 1; end; }")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError):
            compile_source("global x; global x; program main { end; }")

    def test_duplicate_local(self):
        with pytest.raises(SemanticError):
            compile_source(
                "program main { local a; local a; end; }"
            )


class TestInterpretationTables:
    def test_assignment_action_def(self):
        compiled = compile_source(
            "global x := 0; program main { x := x + 1; end; }"
        )
        [label] = [l for l in compiled.actions if compiled.actions[l].kind == "assign"]
        definition = compiled.actions[label]
        assert definition.target == "x"
        assert definition.scope == "global"
        assert definition.value.evaluate({"x": 4}, {}) == 5

    def test_local_scope_assignment(self):
        compiled = compile_source(
            "program main { local y := 1; y := y * 2; end; }"
        )
        [definition] = [d for d in compiled.actions.values() if d.kind == "assign"]
        assert definition.scope == "local"

    def test_concrete_test_def(self):
        compiled = compile_source(
            "global n := 2; program main { if n > 0 then { a; } end; }"
        )
        [label] = [l for l in compiled.tests if compiled.tests[l].kind == "expr"]
        assert compiled.tests[label].value.evaluate({"n": 1}, {}) == 1
        assert compiled.is_fully_concrete

    def test_abstract_test_blocks_concreteness(self):
        compiled = compile_source("program main { if b then { a; } end; }")
        assert not compiled.is_fully_concrete

    def test_node_lines_recorded(self):
        compiled = compile_source("program main { a1;\n a2; end; }")
        lines = set(compiled.node_lines.values())
        assert len(lines) >= 2


class TestFig1Fig2:
    """FIG-1/FIG-2: the paper's program compiles to the paper's scheme."""

    def test_fig1_compiles_to_fig2(self):
        compiled = compile_source(FIG1_PROGRAM)
        assert isomorphic(compiled.scheme, fig2_scheme())

    def test_fig1_node_inventory(self):
        scheme = compile_source(FIG1_PROGRAM).scheme
        assert len(scheme) == 13
        by_kind = {
            kind: len(scheme.nodes_of_kind(kind))
            for kind in NodeKind
        }
        assert by_kind[NodeKind.ACTION] == 5
        assert by_kind[NodeKind.TEST] == 2
        assert by_kind[NodeKind.PCALL] == 2
        assert by_kind[NodeKind.WAIT] == 2
        assert by_kind[NodeKind.END] == 2

    def test_isomorphism_mapping_sane(self):
        compiled = compile_source(FIG1_PROGRAM)
        mapping = find_isomorphism(compiled.scheme, fig2_scheme())
        assert mapping is not None
        assert mapping[compiled.scheme.root] == "q0"
        # labels preserved under the mapping
        for node in compiled.scheme:
            assert fig2_scheme().node(mapping[node.id]).label == node.label


class TestIsomorphism:
    def test_reflexive(self):
        scheme = fig2_scheme()
        assert isomorphic(scheme, scheme)

    def test_renamed_schemes_isomorphic(self):
        a = compile_source("program main { a1; a2; end; }").scheme
        b = compile_source("program other { a1; a2; end; }").scheme
        assert isomorphic(a, b)

    def test_label_mismatch_not_isomorphic(self):
        a = compile_source("program main { a1; end; }").scheme
        b = compile_source("program main { a2; end; }").scheme
        assert not isomorphic(a, b)

    def test_structure_mismatch_not_isomorphic(self):
        a = compile_source("program main { if b then { a1; } a1; end; }").scheme
        b = compile_source("program main { if b then { a1; } else { a1; } end; }").scheme
        assert not isomorphic(a, b)

    def test_branch_order_matters(self):
        a = compile_source("program main { if b then { a1; } else { a2; } end; }").scheme
        b = compile_source("program main { if b then { a2; } else { a1; } end; }").scheme
        assert not isomorphic(a, b)
