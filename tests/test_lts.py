"""Tests for the generic LTS toolkit: traces, simulations, safety."""

import pytest

from repro.core.alphabet import TAU
from repro.lts import (
    LTS,
    at_most_n_occurrences,
    check_safety,
    check_simulation_relation,
    completed_weak_traces,
    d_simulates,
    lts_terminates,
    never_follows,
    never_occurs,
    strong_traces,
    strongly_bisimilar,
    strongly_simulates,
    weak_trace_equivalent,
    weak_traces,
    weakly_simulates,
)


def chain(*labels):
    lts = LTS(initial=0)
    for i, label in enumerate(labels):
        lts.add_transition(i, label, i + 1)
    return lts


class TestLTSBasics:
    def test_duplicate_edges_ignored(self):
        lts = LTS(initial=0)
        lts.add_transition(0, "a", 1)
        lts.add_transition(0, "a", 1)
        assert lts.num_transitions == 1

    def test_post_and_labels(self):
        lts = chain("a", "b")
        assert lts.post(0, "a") == [1]
        assert lts.labels() == {"a", "b"}

    def test_determinism(self):
        lts = chain("a", "b")
        assert lts.is_deterministic()
        lts.add_transition(0, "a", 2)
        assert not lts.is_deterministic()

    def test_reachability_restriction(self):
        lts = chain("a")
        lts.add_transition(99, "z", 100)
        restricted = lts.restricted_to_reachable()
        assert 99 not in restricted.states
        assert restricted.num_transitions == 1

    def test_tau_closure(self):
        lts = LTS(initial=0)
        lts.add_transition(0, TAU, 1)
        lts.add_transition(1, TAU, 2)
        lts.add_transition(2, "a", 3)
        assert lts.tau_closure(0) == {0, 1, 2}
        assert lts.weak_post(0, "a") == {3}

    def test_weak_post_tau(self):
        lts = LTS(initial=0)
        lts.add_transition(0, TAU, 1)
        assert lts.weak_post(0, TAU) == {0, 1}

    def test_divergence(self):
        lts = LTS(initial=0)
        lts.add_transition(0, TAU, 1)
        lts.add_transition(1, TAU, 0)
        lts.add_transition(1, "a", 2)
        assert lts.diverges(0)
        assert lts.diverges(1)
        assert not lts.diverges(2)

    def test_visible_cycle_is_not_divergence(self):
        lts = LTS(initial=0)
        lts.add_transition(0, "a", 1)
        lts.add_transition(1, "a", 0)
        assert not lts.diverges(0)


class TestTraces:
    def test_strong_traces(self):
        lts = chain("a", TAU, "b")
        traces = strong_traces(lts, 3)
        assert ("a", TAU, "b") in traces
        assert ("a", "b") not in traces

    def test_weak_traces_abstract_tau(self):
        lts = chain("a", TAU, "b")
        traces = weak_traces(lts, 2)
        assert ("a", "b") in traces
        assert ("a",) in traces  # prefix-closed

    def test_weak_traces_with_tau_cycle(self):
        lts = LTS(initial=0)
        lts.add_transition(0, TAU, 1)
        lts.add_transition(1, TAU, 0)
        lts.add_transition(1, "a", 2)
        assert ("a",) in weak_traces(lts, 1)

    def test_completed_traces(self):
        lts = LTS(initial=0)
        lts.add_transition(0, "a", 1)
        lts.add_transition(0, "b", 2)
        lts.add_transition(2, TAU, 3)
        completed = completed_weak_traces(lts, 5)
        assert completed == {("a",), ("b",)}

    def test_trace_equivalence(self):
        assert weak_trace_equivalent(chain("a", "b"), chain("a", TAU, "b"), 5)
        assert not weak_trace_equivalent(chain("a"), chain("b"), 5)

    def test_branching_traces(self):
        lts = LTS(initial=0)
        lts.add_transition(0, "a", 1)
        lts.add_transition(0, "b", 2)
        assert weak_traces(lts, 1) == {(), ("a",), ("b",)}


class TestSimulations:
    def test_strong_simulation_basic(self):
        small = chain("a")
        big = LTS(initial=0)
        big.add_transition(0, "a", 1)
        big.add_transition(0, "b", 2)
        assert strongly_simulates(small, big)
        assert not strongly_simulates(big, small)

    def test_weak_simulation_absorbs_tau(self):
        concrete = chain("a", "b")
        abstract = chain("a", TAU, "b")
        assert weakly_simulates(concrete, abstract)
        assert weakly_simulates(abstract, concrete)
        assert not strongly_simulates(abstract, concrete)

    def test_bisimilarity_vs_trace_equivalence(self):
        # the classic a(b+c) vs ab+ac: trace equivalent, not bisimilar
        left = LTS(initial="s")
        left.add_transition("s", "a", "m")
        left.add_transition("m", "b", "x")
        left.add_transition("m", "c", "y")
        right = LTS(initial="t")
        right.add_transition("t", "a", "m1")
        right.add_transition("t", "a", "m2")
        right.add_transition("m1", "b", "x2")
        right.add_transition("m2", "c", "y2")
        assert weak_trace_equivalent(left, right, 3)
        assert not strongly_bisimilar(left, right)
        # and simulation holds one way only
        assert strongly_simulates(right, left)
        assert not strongly_simulates(left, right)

    def test_d_simulation_rejects_lost_divergence(self):
        # concrete diverges, abstract does not: ⊑_d must fail even though
        # the weak simulation holds
        concrete = LTS(initial=0)
        concrete.add_transition(0, TAU, 0)
        abstract = LTS(initial=0)  # no transitions at all
        assert weakly_simulates(concrete, abstract)
        assert not d_simulates(concrete, abstract)

    def test_d_simulation_accepts_matched_divergence(self):
        concrete = LTS(initial=0)
        concrete.add_transition(0, TAU, 0)
        abstract = LTS(initial="x")
        abstract.add_transition("x", TAU, "x")
        assert d_simulates(concrete, abstract)

    def test_check_simulation_relation_validates(self):
        small, big = chain("a"), chain("a", "b")
        relation = {(0, 0), (1, 1)}
        assert check_simulation_relation(small, big, relation) is None
        bogus = {(0, 1)}
        assert check_simulation_relation(small, big, bogus) is not None

    def test_bisimilar_identical_chains(self):
        assert strongly_bisimilar(chain("a", "b"), chain("a", "b"))


class TestSafetyProperties:
    def test_never_occurs(self):
        prop = never_occurs("crash")
        ok, _ = check_safety(chain("a", "b"), prop)
        assert ok
        bad, counterexample = check_safety(chain("a", "crash"), prop)
        assert not bad
        assert counterexample == ["a", "crash"]

    def test_never_follows(self):
        prop = never_follows("lock", "lock")
        ok, _ = check_safety(chain("lock", "unlock"), prop)
        assert ok
        bad, _ = check_safety(chain("lock", "lock"), prop)
        assert not bad

    def test_at_most_n(self):
        prop = at_most_n_occurrences("ping", 2)
        ok, _ = check_safety(chain("ping", "ping"), prop)
        assert ok
        bad, _ = check_safety(chain("ping", "ping", "ping"), prop)
        assert not bad

    def test_tau_does_not_move_the_dfa(self):
        prop = never_follows("a", "b")
        ok, _ = check_safety(chain("a", TAU, TAU, "c"), prop)
        assert ok

    def test_violates_on_words(self):
        prop = never_follows("a", "b")
        assert prop.violates(["a", "x", "b"])
        assert not prop.violates(["b", "a"])

    def test_lts_terminates(self):
        assert lts_terminates(chain("a", "b"))
        loop = LTS(initial=0)
        loop.add_transition(0, "a", 1)
        loop.add_transition(1, "b", 0)
        assert not lts_terminates(loop)


class TestCompatibility:
    """Proposition 12: safety and termination are ⊑_d-compatible."""

    def test_safety_transfers_down_simulation(self):
        # concrete ⊑ abstract; abstract satisfies never(c); so must concrete
        abstract = LTS(initial=0)
        abstract.add_transition(0, "a", 1)
        abstract.add_transition(1, "b", 0)
        concrete = chain("a", "b", "a")
        assert d_simulates(concrete, abstract)
        prop = never_occurs("c")
        abstract_ok, _ = check_safety(abstract, prop)
        concrete_ok, _ = check_safety(concrete, prop)
        assert abstract_ok and concrete_ok

    def test_termination_transfers(self):
        # abstract terminates and concrete ⊑_d abstract ⟹ concrete terminates
        abstract = chain("a", "b")
        concrete = chain("a")
        assert d_simulates(concrete, abstract)
        assert lts_terminates(abstract)
        assert lts_terminates(concrete)

    def test_divergence_clause_is_what_makes_termination_compatible(self):
        # without the divergence clause, a diverging concrete system would
        # be "simulated" by a terminating abstract one — Prop 12 would fail
        concrete = LTS(initial=0)
        concrete.add_transition(0, TAU, 0)
        abstract = LTS(initial="x")
        assert lts_terminates(abstract)
        assert not lts_terminates(concrete)
        assert weakly_simulates(concrete, abstract)  # the unsound relation
        assert not d_simulates(concrete, abstract)  # ⊑_d correctly refuses
