"""Unit and property tests for hierarchical states (Definition 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hstate import EMPTY, HState
from repro.errors import NotationError, StateError

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

NODE_NAMES = ["q0", "q1", "q2", "q7", "q9", "r"]


def hstates(max_leaves: int = 6, max_depth: int = 3) -> st.SearchStrategy:
    """Random hierarchical states of bounded size."""
    return st.recursive(
        st.builds(HState),
        lambda children: st.builds(
            lambda items: HState(items),
            st.lists(
                st.tuples(st.sampled_from(NODE_NAMES), children),
                max_size=max_leaves,
            ),
        ),
        max_leaves=max_leaves,
    )


# ----------------------------------------------------------------------
# Construction and canonicity
# ----------------------------------------------------------------------


class TestConstruction:
    def test_empty_is_singleton_value(self):
        assert HState.empty() == EMPTY
        assert HState.empty().is_empty()
        assert HState(()).to_notation() == "∅"

    def test_leaf(self):
        leaf = HState.leaf("q0")
        assert leaf.size == 1
        assert leaf.height == 1
        assert leaf.items == (("q0", EMPTY),)

    def test_tree(self):
        t = HState.tree("q1", HState.leaf("q2"))
        assert t.size == 2
        assert t.height == 2

    def test_of_mixed_specs(self):
        state = HState.of("q1", ("q2", ["q3", "q4"]))
        assert state.size == 4
        assert state.width == 2

    def test_of_nested_pair_spec(self):
        state = HState.of(("q1", ("q2", "q3")))
        assert state.height == 3

    def test_canonical_ordering_is_input_order_independent(self):
        a = HState.of("q2", "q1", ("q1", ["q9"]))
        b = HState.of(("q1", ["q9"]), "q2", "q1")
        assert a == b
        assert hash(a) == hash(b)
        assert a.to_notation() == b.to_notation()

    def test_duplicates_are_kept(self):
        state = HState.of("q1", "q1")
        assert state.count("q1") == 2
        assert state.size == 2

    def test_rejects_bad_node(self):
        with pytest.raises(StateError):
            HState(((42, EMPTY),))  # type: ignore[arg-type]
        with pytest.raises(StateError):
            HState((("", EMPTY),))

    def test_rejects_bad_child(self):
        with pytest.raises(StateError):
            HState((("q1", "not a state"),))  # type: ignore[arg-type]


class TestAlgebra:
    def test_addition_is_multiset_union(self):
        s = HState.leaf("q1") + HState.leaf("q1")
        assert s.count("q1") == 2

    def test_addition_identity(self):
        s = HState.of("q1", ("q2", ["q3"]))
        assert s + EMPTY == s
        assert EMPTY + s == s

    def test_subtraction(self):
        s = HState.of("q1", "q1", "q2")
        assert (s - HState.leaf("q1")).count("q1") == 1

    def test_subtraction_requires_inclusion(self):
        with pytest.raises(StateError):
            HState.leaf("q1") - HState.leaf("q2")

    def test_includes(self):
        big = HState.of("q1", "q1", ("q2", ["q3"]))
        assert big.includes(HState.of("q1", ("q2", ["q3"])))
        assert not big.includes(HState.of("q1", "q1", "q1"))
        # inclusion compares whole trees, not embedded ones
        assert not big.includes(HState.leaf("q2"))

    @given(hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(hstates(), hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_subtraction_inverts_addition(self, a, b):
        assert (a + b) - b == a

    @given(hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_sum_includes_both_parts(self, a, b):
        assert (a + b).includes(a)
        assert (a + b).includes(b)


class TestNodeViews:
    def test_node_multiset_counts_everything(self):
        state = HState.parse("q1,{q9,{q11},q12,{q10}}")
        counts = state.node_multiset()
        assert counts == {"q1": 1, "q9": 1, "q11": 1, "q12": 1, "q10": 1}

    def test_top_nodes(self):
        state = HState.of("q1", ("q2", ["q3"]))
        assert state.top_nodes() == {"q1": 1, "q2": 1}

    def test_contains_node_deep(self):
        state = HState.of(("q1", ("q2", "q3")))
        assert state.contains_node("q3")
        assert not state.contains_node("q4")

    def test_contains_all_nodes_respects_multiplicity(self):
        state = HState.of("q1", ("q2", ["q1"]))
        assert state.contains_all_nodes(["q1", "q1"])
        assert not state.contains_all_nodes(["q2", "q2"])

    def test_contains_any_node(self):
        state = HState.of("q1")
        assert state.contains_any_node(["q9", "q1"])
        assert not state.contains_any_node(["q9"])

    @given(hstates())
    @settings(max_examples=60, deadline=None)
    def test_size_equals_total_node_count(self, state):
        assert state.size == sum(state.node_multiset().values())


class TestPositions:
    def test_positions_enumerate_all_tokens(self):
        state = HState.parse("q1,{q9,{q11},q12,{q10}}")
        positions = list(state.positions())
        assert len(positions) == state.size == 5
        nodes = sorted(node for _, node, _ in positions)
        assert nodes == ["q1", "q10", "q11", "q12", "q9"]

    def test_subtree_roundtrip(self):
        state = HState.parse("q1,{q9,{q11},q12,{q10}}")
        for path, node, children in state.positions():
            assert state.subtree(path) == (node, children)

    def test_replace_with_one_item(self):
        state = HState.of("q1", "q2")
        path = next(p for p, n, _ in state.positions() if n == "q1")
        out = state.replace(path, (("q9", EMPTY),))
        assert out == HState.of("q9", "q2")

    def test_replace_with_nothing_deletes(self):
        state = HState.of("q1", "q2")
        path = next(p for p, n, _ in state.positions() if n == "q1")
        assert state.replace(path, ()) == HState.leaf("q2")

    def test_replace_releases_children(self):
        # the end-rule shape: (q, σ) replaced by the items of σ
        state = HState.of(("q9", ["q11", "q12"]), "q2")
        path = next(p for p, n, _ in state.positions() if n == "q9")
        _, children = state.subtree(path)
        out = state.replace(path, children.items)
        assert out == HState.of("q11", "q12", "q2")

    def test_replace_deep(self):
        state = HState.of(("q1", ("q2", "q3")))
        path = next(p for p, n, _ in state.positions() if n == "q3")
        out = state.replace(path, (("q4", EMPTY),))
        assert out == HState.of(("q1", ("q2", "q4")))

    def test_replace_empty_path_rejected(self):
        with pytest.raises(StateError):
            HState.leaf("q1").replace((), ())


class TestNotation:
    def test_paper_sigma1(self):
        sigma1 = HState.parse("q1,{q9,{q11},q12,{q10}}")
        assert sigma1.size == 5
        assert sigma1.width == 1
        assert sigma1.height == 3

    def test_empty_forms(self):
        assert HState.parse("") == EMPTY
        assert HState.parse("∅") == EMPTY

    def test_commas_optional(self):
        assert HState.parse("q1 {q2 q3}") == HState.parse("q1,{q2,q3}")

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(NotationError):
            HState.parse("q1,{q2")
        with pytest.raises(NotationError):
            HState.parse("q1}")

    def test_bad_character_rejected(self):
        with pytest.raises(NotationError):
            HState.parse("q1;q2")

    @given(hstates())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, state):
        assert HState.parse(state.to_notation()) == state


class TestOrderingKey:
    @given(hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_sort_key_consistent_with_equality(self, a, b):
        assert (a.sort_key() == b.sort_key()) == (a == b)

    @given(st.lists(hstates(), max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_states_sortable(self, states):
        ordered = sorted(states)
        assert sorted(ordered) == ordered
