"""FIG-3 / FIG-4 / quickstart-level checks tying the paper's figures to
the implementation (see EXPERIMENTS.md)."""

from repro.core.dot import hstate_to_dot, scheme_to_dot
from repro.core.hstate import HState
from repro.core.semantics import AbstractSemantics
from repro.lang import compile_source, parse_program, render_program
from repro.zoo import FIG1_PROGRAM, fig2_scheme, fig5_states, sigma1


class TestFig1:
    def test_program_parses(self):
        program = parse_program(FIG1_PROGRAM)
        assert program.main.name == "main"
        assert [p.name for p in program.procedures] == ["subr1"]
        assert program.is_abstract

    def test_label_l1_on_the_pcall(self):
        program = parse_program(FIG1_PROGRAM)
        pcall = program.main.body[1]
        assert pcall.labels == ("l1",)

    def test_roundtrip(self):
        program = parse_program(FIG1_PROGRAM)
        assert parse_program(render_program(program)) == program


class TestFig3:
    """σ1 and the paper's prose about its structure."""

    def test_notation(self):
        state = sigma1()
        assert state == HState.parse("q1,{q9,{q11},q12,{q10}}")
        assert HState.parse(state.to_notation()) == state

    def test_five_concurrent_components(self):
        # "1 has five concurrent components"
        assert sigma1().size == 5

    def test_dependency_chains(self):
        # "One, in state q11, depends of its father (currently in state
        # q9) that itself depends on its father (currently in state q1).
        # This father invocation has another child invocation (currently
        # in q12) with its own child (currently in q10)."
        state = sigma1()
        [(q1_node, q1_children)] = state.items
        assert q1_node == "q1"
        children = dict(q1_children.items)
        assert set(children) == {"q9", "q12"}
        assert children["q9"].top_nodes() == {"q11": 1}
        assert children["q12"].top_nodes() == {"q10": 1}

    def test_trees_are_unordered(self):
        # "(Trees and subtrees are unordered.)"
        reordered = HState.parse("q1,{q12,{q10},q9,{q11}}")
        assert reordered == sigma1()


class TestFig4:
    """σ1 as a marking of scheme G."""

    def test_marking_view(self):
        counts = sigma1().node_multiset()
        assert counts == {"q1": 1, "q9": 1, "q11": 1, "q12": 1, "q10": 1}

    def test_dot_overlay(self):
        dot = scheme_to_dot(fig2_scheme(), marking=sigma1())
        assert "● × 1" in dot
        # dotted parent-child links between token-bearing nodes
        assert "style=dotted" in dot
        assert '"q1" -> "q9"' in dot

    def test_hstate_dot(self):
        dot = hstate_to_dot(sigma1())
        assert dot.count("label=") == 5


class TestFig5:
    def test_full_evolution_is_a_run(self):
        semantics = AbstractSemantics(fig2_scheme())
        states = fig5_states()
        expected_rules = [("call", "q10"), ("call", "q1"), ("end", "q9")]
        for (current, following), (rule, node) in zip(
            zip(states, states[1:]), expected_rules
        ):
            matches = [
                t
                for t in semantics.successors(current)
                if t.target == following and t.rule == rule and t.node == node
            ]
            assert matches, (current.to_notation(), rule, node)

    def test_evolution_matches_on_compiled_scheme_via_isomorphism(self):
        # the same evolution exists on the scheme compiled from FIG-1,
        # modulo the node renaming of the isomorphism
        from repro.core.isomorphism import find_isomorphism

        compiled = compile_source(FIG1_PROGRAM).scheme
        mapping = find_isomorphism(fig2_scheme(), compiled)
        assert mapping is not None
        semantics = AbstractSemantics(compiled)

        def rename(state: HState) -> HState:
            return HState(
                (mapping[node], rename(child)) for node, child in state.items
            )

        states = [rename(s) for s in fig5_states()]
        for current, following in zip(states, states[1:]):
            assert any(
                t.target == following for t in semantics.successors(current)
            )
