"""Tests for the layered verification methodology and weak bisimilarity."""

import pytest

from repro.core.alphabet import TAU
from repro.errors import AnalysisBudgetExceeded
from repro.interp import ProgramInterpretation, TrivialInterpretation, verify_safety
from repro.lang import compile_source
from repro.lts import LTS, never_follows, never_occurs, weakly_bisimilar
from repro.zoo import spawner_loop


class TestWeakBisimilarity:
    def _chain(self, *labels):
        lts = LTS(initial=0)
        for i, label in enumerate(labels):
            lts.add_transition(i, label, i + 1)
        return lts

    def test_tau_insensitive(self):
        assert weakly_bisimilar(self._chain("a", "b"), self._chain("a", TAU, "b"))

    def test_distinguishes_languages(self):
        assert not weakly_bisimilar(self._chain("a"), self._chain("b"))

    def test_finer_than_trace_equivalence(self):
        # a(b+c) vs ab+ac: weak-trace equal but not weakly bisimilar
        left = LTS(initial="s")
        left.add_transition("s", "a", "m")
        left.add_transition("m", "b", "x")
        left.add_transition("m", "c", "y")
        right = LTS(initial="t")
        right.add_transition("t", "a", "m1")
        right.add_transition("t", "a", "m2")
        right.add_transition("m1", "b", "x2")
        right.add_transition("m2", "c", "y2")
        assert not weakly_bisimilar(left, right)

    def test_tau_loop_vs_nothing(self):
        # weak bisimilarity (non-divergence-sensitive) equates a τ-loop
        # with a stuck state
        loop = LTS(initial=0)
        loop.add_transition(0, TAU, 0)
        stuck = LTS(initial="z")
        assert weakly_bisimilar(loop, stuck)


class TestVerifySafety:
    SAFE = """
    global x := 0;
    program main {
        pcall w;
        x := x + 1;
        wait;
        finish;
        end;
    }
    procedure w { work; end; }
    """

    def test_abstract_layer_suffices(self):
        compiled = compile_source(self.SAFE)
        verdict = verify_safety(compiled.scheme, never_occurs("crash"))
        assert verdict.holds
        assert verdict.layer == "abstract"
        assert verdict.exact

    def test_abstract_violation_reported_without_interpretation(self):
        compiled = compile_source(self.SAFE)
        verdict = verify_safety(compiled.scheme, never_occurs("finish"))
        assert not verdict.holds
        assert verdict.counterexample[-1] == "finish"

    def test_concrete_refutes_abstract_false_alarm(self):
        # abstract tests are nondeterministic: the abstract model can fire
        # `panic`, but the concrete interpretation never takes that branch
        source = """
        global armed := 0;
        program main {
            if armed > 0 then { panic; } else { ok; }
            end;
        }
        """
        compiled = compile_source(source)
        prop = never_occurs("panic")
        abstract_only = verify_safety(compiled.scheme, prop)
        assert not abstract_only.holds  # the abstract model CAN panic
        concrete = verify_safety(
            compiled.scheme, prop, interpretation=ProgramInterpretation(compiled)
        )
        assert concrete.holds
        assert concrete.layer == "concrete"
        assert concrete.abstract_counterexample is not None

    def test_concrete_violation_with_both_counterexamples(self):
        source = """
        global armed := 1;
        program main {
            if armed > 0 then { panic; } else { ok; }
            end;
        }
        """
        compiled = compile_source(source)
        verdict = verify_safety(
            compiled.scheme,
            never_occurs("panic"),
            interpretation=ProgramInterpretation(compiled),
        )
        assert not verdict.holds
        assert verdict.layer == "concrete"
        # the counterexample word includes the visible test label
        assert verdict.counterexample == ["armed>0", "panic"]

    def test_violation_found_in_unbounded_abstract_fragment(self):
        # the spawner is unbounded, but a finite fragment already exhibits
        # the violating prefix — safety violations are finite evidence
        scheme = spawner_loop()
        verdict = verify_safety(scheme, never_follows("b", "work"), max_states=800)
        assert not verdict.holds

    def test_budget_raises_when_inconclusive(self):
        scheme = spawner_loop()
        with pytest.raises(AnalysisBudgetExceeded):
            verify_safety(scheme, never_occurs("crash"), max_states=200)

    def test_concrete_fallback_on_unbounded_abstract(self):
        # abstract unbounded; the trivial interpretation with the spawn
        # branch disabled is tiny and saturates
        scheme = spawner_loop()
        interp = TrivialInterpretation(branches={"b": False})
        verdict = verify_safety(
            scheme, never_occurs("work"), interpretation=interp, max_states=800
        )
        assert verdict.holds
        assert verdict.layer == "concrete"
