"""Differential validation on random schemes.

Independent procedures answering the same question must agree; core
structural lemmas (downward compatibility, strong compatibility on
wait-free schemes) are tested directly.  Seeds are fixed, so failures
reproduce.
"""

import pytest

from repro.analysis import (
    backward_coverability,
    boundedness,
    halting_via_inevitability,
    halts,
    minimal_reachable_states,
    node_reachable,
    predecessor_basis,
)
from repro.analysis.explore import Explorer
from repro.core.embedding import embeds, strictly_embeds
from repro.core.generate import random_scheme
from repro.core.hstate import EMPTY, HState
from repro.core.semantics import AbstractSemantics
from repro.errors import AnalysisBudgetExceeded

SEEDS = list(range(24))


def _bounded_graph(scheme, max_states=3_000):
    # cap state sizes: random schemes can double their invocation count
    # per step, making successor generation quadratic in state size; such
    # schemes are simply reported unbounded-fragment (None) here
    graph = Explorer(scheme, max_states=max_states, max_state_size=60).explore(None)
    return graph if graph.complete else None


class TestBoundednessDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_boundedness_agrees_with_exploration(self, seed):
        scheme = random_scheme(seed, max_nodes=8)
        graph = _bounded_graph(scheme)
        try:
            verdict = boundedness(scheme, max_states=5_000)
        except AnalysisBudgetExceeded:
            # inconclusive is only acceptable when exploration is too
            assert graph is None
            return
        if graph is not None:
            assert verdict.holds, f"seed {seed}: saturated but called unbounded"
        elif verdict.holds:
            # the size-capped exploration was inconclusive but boundedness
            # claims saturation: re-explore with the certified state count
            # and no size cap — it must saturate at exactly that count
            recheck = Explorer(
                scheme, max_states=verdict.certificate.states + 1
            ).explore(None)
            assert recheck.complete, f"seed {seed}: bogus saturation claim"
            assert len(recheck) == verdict.certificate.states
        else:
            pass  # both inconclusive-capped and unbounded: consistent

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pump_certificates_replay(self, seed):
        scheme = random_scheme(seed, max_nodes=8)
        try:
            verdict = boundedness(scheme, max_states=5_000)
        except AnalysisBudgetExceeded:
            return
        if verdict.holds:
            return
        cert = verdict.certificate
        semantics = AbstractSemantics(scheme)
        # the pump must re-fire twice more with strict growth
        state = cert.pumped
        for _ in range(2):
            trace = semantics.replay(state, list(cert.pump_descriptors))
            assert trace is not None, f"seed {seed}: pump does not replay"
            new_state = trace[-1].target
            assert strictly_embeds(state, new_state), f"seed {seed}: no growth"
            state = new_state


class TestHaltingDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_direct_vs_inevitability(self, seed):
        scheme = random_scheme(seed, max_nodes=7)
        try:
            direct = halts(scheme, max_states=5_000)
            via = halting_via_inevitability(scheme, max_states=5_000)
        except AnalysisBudgetExceeded:
            return
        assert direct.holds == via.holds, f"seed {seed}"


class TestCoverabilityDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_backward_vs_exploration_wait_free(self, seed):
        scheme = random_scheme(seed, max_nodes=8, allow_wait=False)
        graph = _bounded_graph(scheme)
        if graph is None:
            return
        for node in scheme.node_ids:
            target = HState.leaf(node)
            forward = any(s.contains_node(node) for s in graph.states)
            backward = backward_coverability(scheme, [target])
            assert backward.holds == forward, (seed, node)
            assert backward.exact

    @pytest.mark.parametrize("seed", SEEDS[:12])
    def test_backward_negatives_sound_with_wait(self, seed):
        scheme = random_scheme(seed, max_nodes=8, allow_wait=True)
        graph = _bounded_graph(scheme)
        if graph is None:
            return
        for node in scheme.node_ids:
            backward = backward_coverability(scheme, [HState.leaf(node)])
            forward = any(s.contains_node(node) for s in graph.states)
            if not backward.holds:
                assert not forward, (seed, node)  # refutations always exact
            elif forward:
                pass  # positive agreement
            else:
                assert not backward.exact, (seed, node)  # flagged approximation

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_predecessor_bases_are_sound(self, seed):
        scheme = random_scheme(seed, max_nodes=6)
        semantics = AbstractSemantics(scheme)
        targets = [HState.leaf(scheme.root), HState.of(scheme.root, scheme.root)]
        for target in targets:
            for pred in predecessor_basis(scheme, target):
                assert any(
                    embeds(target, t.target) for t in semantics.successors(pred)
                ), (seed, pred.to_notation(), target.to_notation())


class TestSupReachabilityDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_basis_against_exploration(self, seed):
        scheme = random_scheme(seed, max_nodes=7)
        graph = _bounded_graph(scheme)
        basis = minimal_reachable_states(scheme, max_kept=100_000)
        if graph is None:
            assert basis  # must still terminate and be non-empty
            return
        # every reachable state dominates some basis element and each
        # basis element is a reachable minimum
        for state in graph.states:
            assert any(embeds(low, state) for low in basis), (seed, state)
        reachable = set(graph.states)
        for low in basis:
            assert low in reachable, (seed, low.to_notation())


class TestStructuralLemmas:
    """The compatibility lemmas the engines rely on, tested directly."""

    @pytest.mark.parametrize("seed", SEEDS[:12])
    def test_downward_compatibility(self, seed):
        # σ ⪯ σ' and σ' → τ'  ⟹  σ ⪯ τ' or ∃ σ → τ ⪯ τ'
        scheme = random_scheme(seed, max_nodes=8)
        semantics = AbstractSemantics(scheme)
        graph = Explorer(scheme, max_states=120, max_state_size=25).explore(None)
        states = graph.states
        for big in states:
            for small in states:
                if small.size >= big.size or not embeds(small, big):
                    continue
                small_successors = [t.target for t in semantics.successors(small)]
                for transition in semantics.successors(big):
                    target = transition.target
                    ok = embeds(small, target) or any(
                        embeds(succ, target) for succ in small_successors
                    )
                    assert ok, (
                        seed,
                        small.to_notation(),
                        big.to_notation(),
                        target.to_notation(),
                    )

    @pytest.mark.parametrize("seed", SEEDS[:12])
    def test_strong_compatibility_wait_free(self, seed):
        # wait-free: σ ⪯ σ' and σ → τ  ⟹  ∃ σ' → τ' with τ ⪯ τ'
        scheme = random_scheme(seed, max_nodes=8, allow_wait=False)
        semantics = AbstractSemantics(scheme)
        graph = Explorer(scheme, max_states=70, max_state_size=18).explore(None)
        states = graph.states
        for small in states:
            small_out = semantics.successors(small)
            for big in states:
                if small.size >= big.size or not embeds(small, big):
                    continue
                big_targets = [t.target for t in semantics.successors(big)]
                for transition in small_out:
                    assert any(
                        embeds(transition.target, target) for target in big_targets
                    ), (seed, small.to_notation(), big.to_notation())


class TestSemanticsInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_size_delta_per_rule(self, seed):
        scheme = random_scheme(seed, max_nodes=8)
        semantics = AbstractSemantics(scheme)
        graph = Explorer(scheme, max_states=300, max_state_size=40).explore(None)
        deltas = {"action": 0, "test": 0, "wait": 0, "call": 1, "end": -1}
        for state in graph.states:
            for transition in semantics.successors(state):
                assert (
                    transition.target.size - state.size
                    == deltas[transition.rule]
                )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_deadlock_random(self, seed):
        scheme = random_scheme(seed, max_nodes=8)
        semantics = AbstractSemantics(scheme)
        graph = Explorer(scheme, max_states=300, max_state_size=40).explore(None)
        for state in graph.states:
            assert semantics.successors(state) or state == EMPTY
