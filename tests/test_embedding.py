"""Tests for the forest embedding ⪯ and the gap (⋆) embedding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding import (
    PLAIN_EMBEDDING,
    GapEmbedding,
    embeds,
    is_minimal_among,
    strictly_embeds,
)
from repro.core.hstate import EMPTY, HState

from .test_hstate import hstates

P = HState.parse


class TestEmbedsBasics:
    def test_empty_embeds_everywhere(self):
        assert embeds(EMPTY, EMPTY)
        assert embeds(EMPTY, P("q1,{q2}"))

    def test_nothing_but_empty_embeds_in_empty(self):
        assert not embeds(P("q1"), EMPTY)

    def test_reflexive_examples(self):
        for text in ["q1", "q1,{q2,q3}", "q1,{q9,{q11},q12,{q10}}"]:
            assert embeds(P(text), P(text))

    def test_leaf_in_deep_tree(self):
        assert embeds(P("q3"), P("q1,{q2,{q3}}"))

    def test_label_mismatch(self):
        assert not embeds(P("q4"), P("q1,{q2,{q3}}"))

    def test_ancestorship_preserved(self):
        # a above b embeds into a above x above b
        assert embeds(P("a,{b}"), P("a,{x,{b}}"))
        # but not into b above a
        assert not embeds(P("a,{b}"), P("b,{a}"))

    def test_two_sources_into_one_target_tree(self):
        # {a, b} embeds into {c,{a,b}}: both images inside c, incomparable
        assert embeds(P("a,b"), P("c,{a,b}"))

    def test_incomparability_required(self):
        # {a, a} needs two incomparable a's; the chain a,{a} only offers a
        # root and its child, which are comparable — so this must FAIL.
        assert not embeds(P("a a"), P("a,{a}"))
        # ...but two separate a's do work
        assert embeds(P("a a"), P("a a"))
        # and a tree with two incomparable a's below one root works too
        assert embeds(P("a a"), P("x,{a,a}"))

    def test_multiplicity_respected(self):
        assert not embeds(P("a,a,a"), P("a,a"))
        assert embeds(P("a,a"), P("a,a,a"))

    def test_deep_mixed_case(self):
        small = P("q1,{q9,q12}")
        big = P("q1,{q9,{q11},q12,{q10}}")
        assert embeds(small, big)
        assert not embeds(big, small)

    def test_children_cannot_migrate_to_other_parent(self):
        assert not embeds(P("a,{b},c"), P("a,c,{b}"))

    def test_forest_split_across_targets(self):
        assert embeds(P("a,b"), P("x,{a},y,{b}"))

    def test_strictly_embeds(self):
        assert strictly_embeds(P("a"), P("a,b"))
        assert not strictly_embeds(P("a"), P("a"))

    def test_is_minimal_among(self):
        assert is_minimal_among(P("a,b"), [P("a,c"), P("b,b")])
        assert not is_minimal_among(P("a,b"), [P("a")])


class TestEmbedsProperties:
    @given(hstates())
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, state):
        assert embeds(state, state)

    @given(hstates())
    @settings(max_examples=60, deadline=None)
    def test_empty_is_minimum(self, state):
        assert embeds(EMPTY, state)

    @given(hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_addition_increases(self, a, b):
        assert embeds(a, a + b)

    @given(hstates(), hstates())
    @settings(max_examples=40, deadline=None)
    def test_antisymmetry_on_size(self, a, b):
        # mutual embedding of equal-size states forces equality
        if embeds(a, b) and embeds(b, a):
            assert a.size == b.size
            assert a == b

    @given(hstates(max_leaves=4), hstates(max_leaves=4), hstates(max_leaves=4))
    @settings(max_examples=30, deadline=None)
    def test_transitive(self, a, b, c):
        if embeds(a, b) and embeds(b, c):
            assert embeds(a, c)

    @given(hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_size_monotone(self, a, b):
        if embeds(a, b):
            assert a.size <= b.size

    @given(hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_node_multiset_monotone(self, a, b):
        if embeds(a, b):
            counts_a, counts_b = a.node_multiset(), b.node_multiset()
            assert all(counts_b[n] >= c for n, c in counts_a.items())

    @given(hstates(), hstates())
    @settings(max_examples=60, deadline=None)
    def test_wrapping_target_preserves(self, a, b):
        if embeds(a, b):
            assert embeds(a, HState.tree("r", b))


class TestGapEmbedding:
    def test_unrestricted_coincides_with_plain(self):
        ge = GapEmbedding(None)
        assert ge.embeds(P("a,b"), P("c,{a,b}"))
        assert not ge.embeds(P("a,{b}"), P("b,{a}"))

    def test_gap_restriction_blocks_disallowed_deletion(self):
        small, big = P("a,{b}"), P("a,{x,{b}}")
        assert GapEmbedding(["x"]).embeds(small, big)
        assert not GapEmbedding(["y"]).embeds(small, big)

    def test_extra_sibling_tree_must_be_fully_deletable(self):
        small, big = P("a"), P("a,x,{y}")
        assert GapEmbedding(["x", "y"]).embeds(small, big)
        assert not GapEmbedding(["x"]).embeds(small, big)

    def test_exact_match_needs_no_gaps(self):
        assert GapEmbedding([]).embeds(P("a,{b}"), P("a,{b}"))
        assert not GapEmbedding([]).embeds(P("a"), P("a,b"))

    def test_gap_finer_than_plain(self):
        # every ⪯⋆ pair is a ⪯ pair
        ge = GapEmbedding(["x"])
        pairs = [
            (P("a"), P("a,x")),
            (P("a,{b}"), P("a,{x,{b}}")),
            (P("a"), P("x,{a}")),
        ]
        for small, big in pairs:
            assert ge.embeds(small, big)
            assert embeds(small, big)

    def test_group_descent_consumes_root_as_gap(self):
        # {a, b} into c,{a,b}: the root c is deleted, so c must be a gap node
        assert GapEmbedding(["c"]).embeds(P("a,b"), P("c,{a,b}"))
        assert not GapEmbedding(["d"]).embeds(P("a,b"), P("c,{a,b}"))

    def test_dominates(self):
        basis = [P("a"), P("b,{c}")]
        assert PLAIN_EMBEDDING.dominates(P("x,{a}"), basis)
        assert not PLAIN_EMBEDDING.dominates(P("c,{b}"), basis)

    @given(hstates(max_leaves=4), hstates(max_leaves=4))
    @settings(max_examples=40, deadline=None)
    def test_restricted_implies_plain(self, a, b):
        ge = GapEmbedding(["q0", "q1"])
        if ge.embeds(a, b):
            assert embeds(a, b)

    @given(hstates(max_leaves=4))
    @settings(max_examples=40, deadline=None)
    def test_gap_reflexive(self, a):
        assert GapEmbedding([]).embeds(a, a)
