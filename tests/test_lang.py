"""Tests for the RP language front-end: lexer, parser, expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, LexError, ParseError
from repro.lang import (
    AbstractAction,
    Assign,
    End,
    Goto,
    If,
    PCall,
    Wait,
    While,
    parse_expression,
    parse_program,
    render_program,
    tokenize,
)
from repro.lang.tokens import TokenKind


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("pcall mypcall wait waiting")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.PCALL,
            TokenKind.IDENT,
            TokenKind.WAIT,
            TokenKind.IDENT,
        ]

    def test_operators(self):
        kinds = [t.kind for t in tokenize(":= == != <= >= < > + - * / %")[:-1]]
        assert kinds == [
            TokenKind.ASSIGN,
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
        ]

    def test_line_comments(self):
        tokens = tokenize("a1; // a comment\nb2;")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["a1", ";", "b2", ";"]

    def test_block_comments(self):
        tokens = tokenize("a1; /* multi\nline */ b2;")
        assert [t.text for t in tokens[:-1]] == ["a1", ";", "b2", ";"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a1; /* oops")

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_primed_identifiers(self):
        tokens = tokenize("a1' q0")
        assert tokens[0].text == "a1'"

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a1 $ b2")

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.evaluate({}, {}) == 7

    def test_parentheses(self):
        assert parse_expression("(1 + 2) * 3").evaluate({}, {}) == 9

    def test_unary_minus(self):
        assert parse_expression("-2 + 5").evaluate({}, {}) == 3
        assert parse_expression("--3").evaluate({}, {}) == 3

    def test_comparison_returns_01(self):
        assert parse_expression("2 < 3").evaluate({}, {}) == 1
        assert parse_expression("3 < 2").evaluate({}, {}) == 0

    def test_boolean_operators(self):
        assert parse_expression("1 < 2 and 3 < 4").evaluate({}, {}) == 1
        assert parse_expression("1 < 2 and 4 < 3").evaluate({}, {}) == 0
        assert parse_expression("1 > 2 or 3 < 4").evaluate({}, {}) == 1
        assert parse_expression("not 0").evaluate({}, {}) == 1

    def test_truth_literals(self):
        assert parse_expression("true").evaluate({}, {}) == 1
        assert parse_expression("false or true").evaluate({}, {}) == 1

    def test_variable_scoping_locals_shadow_globals(self):
        expr = parse_expression("x + y")
        assert expr.evaluate({"x": 10, "y": 1}, {"x": 2}) == 3

    def test_undefined_variable(self):
        with pytest.raises(ExecutionError):
            parse_expression("nope").evaluate({}, {})

    def test_division(self):
        assert parse_expression("7 / 2").evaluate({}, {}) == 3
        assert parse_expression("7 % 2").evaluate({}, {}) == 1

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            parse_expression("1 / 0").evaluate({}, {})

    def test_render_roundtrip(self):
        for text in ["1+2*3", "x>0 and y<2", "not (a==b)", "-x%3"]:
            expr = parse_expression(text)
            again = parse_expression(expr.render())
            assert again.render() == expr.render()

    def test_variables_collected(self):
        assert parse_expression("x + y * x").variables() == {"x", "y"}

    @given(st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_arith_agrees_with_python(self, a, b):
        env = {"a": a, "b": b}
        assert parse_expression("a+b").evaluate(env, {}) == a + b
        assert parse_expression("a*b-a").evaluate(env, {}) == a * b - a
        assert parse_expression("a<b").evaluate(env, {}) == int(a < b)


class TestParser:
    def test_minimal_program(self):
        program = parse_program("program main { end; }")
        assert program.main.name == "main"
        assert isinstance(program.main.body[0], End)

    def test_missing_program_block(self):
        with pytest.raises(ParseError):
            parse_program("procedure p { end; }")

    def test_duplicate_program_block(self):
        with pytest.raises(ParseError):
            parse_program("program a { end; } program b { end; }")

    def test_statement_kinds(self):
        program = parse_program(
            """
            program main {
                a1;
                pcall p;
                wait;
                goto l;
            l:  x := 1;
                end;
            }
            procedure p { end; }
            global x := 0;
            """
        )
        body = program.main.body
        assert isinstance(body[0], AbstractAction)
        assert isinstance(body[1], PCall)
        assert isinstance(body[2], Wait)
        assert isinstance(body[3], Goto)
        assert isinstance(body[4], Assign)
        assert body[4].labels == ("l",)
        assert isinstance(body[5], End)

    def test_abstract_vs_concrete_test(self):
        program = parse_program(
            """
            global x := 0;
            program main {
                if b1 then { a1; } else { a2; }
                if x > 0 then { a3; }
                end;
            }
            """
        )
        first, second = program.main.body[0], program.main.body[1]
        assert isinstance(first, If) and first.test == "b1"
        assert isinstance(second, If) and not isinstance(second.test, str)

    def test_while_loop(self):
        program = parse_program(
            """
            global n := 3;
            program main { while n > 0 do { n := n - 1; } end; }
            """
        )
        loop = program.main.body[0]
        assert isinstance(loop, While)
        assert len(loop.body) == 1

    def test_abstract_while_test(self):
        program = parse_program("program main { while busy do { a1; } end; }")
        assert program.main.body[0].test == "busy"

    def test_multiple_labels(self):
        program = parse_program("program main { l1: l2: a1; end; }")
        assert program.main.body[0].labels == ("l1", "l2")

    def test_locals_must_precede_statements(self):
        program = parse_program(
            "procedure p { local k := 2; a1; end; } program main { end; }"
        )
        proc = program.procedures[0]
        assert proc.locals[0].name == "k"
        assert proc.locals[0].initial == 2

    def test_local_in_nested_block_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "program main { if b then { local x; } end; }"
            )

    def test_negative_initialiser(self):
        program = parse_program("global t := -5; program main { end; }")
        assert program.globals[0].initial == -5

    def test_is_abstract(self):
        abstract = parse_program("program main { a1; if b then { a2; } end; }")
        assert abstract.is_abstract
        concrete = parse_program(
            "global x := 0; program main { x := 1; end; }"
        )
        assert not concrete.is_abstract

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("program main { a1 }")
        assert "1:" in str(excinfo.value)


class TestPretty:
    SAMPLES = [
        "program main { end; }",
        "program main { a1; l1: pcall p; wait; end; }\nprocedure p { end; }",
        """
        global x := 2;
        program main {
            local y := 1;
            while x > 0 do { x := x - 1; }
            if b then { a1; } else { goto l; }
        l:  end;
        }
        """,
    ]

    @pytest.mark.parametrize("source", SAMPLES)
    def test_roundtrip(self, source):
        program = parse_program(source)
        rendered = render_program(program)
        assert parse_program(rendered) == program

    def test_renders_fig1(self):
        from repro.zoo import FIG1_PROGRAM

        program = parse_program(FIG1_PROGRAM)
        assert parse_program(render_program(program)) == program
