"""Differential gate for the sharded parallel explorer (`repro.analysis.parallel`).

The parallelism contract under test:

* **verdict parity** — every decision procedure returns the *same*
  answer (holds/method, or the same structured inconclusive) on a
  ``workers=2`` session as on a sequential one, across the zoo families
  (the ``test_robustness`` matrix);
* **graph identity** — the parallel exploration discovers the exact
  same states in the exact same order with the exact same transitions:
  parity is a construction property (window-synchronous in-order
  apply), not a statistical hope;
* **checkpoint round-trip** — a parallel run's ``rpcheck-checkpoint/1``
  resumes sequentially and vice versa, landing on the uninterrupted
  run's graph;
* **governance** — budget exhaustion under workers surfaces at the
  coordinator as the usual structured exhaustion/`PartialVerdict` with
  a clean resumable frontier;
* **observability** — per-worker registries fold into the session
  registry via the established ``merge()`` contract
  (``parallel.states_expanded{worker=i}`` etc.);
* **surfaces** — ``workers`` rides ``rpcheck-request/1``, is honored by
  ``execute`` and the serve daemon, and lands in the run ledger.
"""

import json
import os
import uuid

import pytest

from repro.analysis import AnalysisSession
from repro.analysis.parallel import WorkerPool, default_start_method
from repro.api import AnalysisRequest, ApiError, execute, worker_expansions
from repro.errors import AnalysisBudgetExceeded, AnalysisError, BudgetExhausted
from repro.obs import Ledger, registry_from_dict, scheme_fingerprint
from repro.robust import (
    Budget,
    PartialVerdict,
    load_checkpoint,
    restore_session,
    save_checkpoint,
)
from repro.zoo import spawner_loop, wide_mix

from .test_robustness import CAP, FAMILIES, PROCEDURES, ticking_clock

WORKERS = 2


def _outcome(scheme, procedure, workers):
    """(comparable outcome, graph-state notations) for one fresh session."""
    session = AnalysisSession(scheme, workers=workers)
    try:
        try:
            verdict = PROCEDURES[procedure](scheme, session, None)
            outcome = ("verdict", verdict.holds, getattr(verdict, "method", None))
        except AnalysisBudgetExceeded as exc:
            outcome = ("inconclusive", exc.explored, None)
        return outcome, [state.to_notation() for state in session.graph.states]
    finally:
        session.close()


class TestDifferentialGate:
    """Sharded verdicts == sequential verdicts, all procedures x families."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("procedure", sorted(PROCEDURES))
    def test_parallel_matches_sequential(self, family, procedure):
        sequential, seq_states = _outcome(FAMILIES[family](), procedure, 1)
        parallel, par_states = _outcome(FAMILIES[family](), procedure, WORKERS)
        assert parallel == sequential, (
            f"{procedure} on {family}: workers={WORKERS} drifted: "
            f"{parallel!r} != {sequential!r}"
        )
        assert par_states == seq_states, (
            f"{procedure} on {family}: parallel graph diverged "
            f"({len(par_states)} vs {len(seq_states)} states)"
        )


class TestGraphIdentity:
    def test_states_order_and_transitions_identical(self):
        seq = AnalysisSession(wide_mix(3))
        par = AnalysisSession(wide_mix(3), workers=3)
        try:
            g1 = seq.explore(1200)
            g2 = par.explore(1200)
            assert [s.to_notation() for s in g1.states] == [
                s.to_notation() for s in g2.states
            ]
            assert g1.complete == g2.complete
            for out1, out2 in zip(g1.edges, g2.edges):
                assert [
                    (t.label, t.target.to_notation(), t.rule, t.node, t.path, t.branch)
                    for t in out1
                ] == [
                    (t.label, t.target.to_notation(), t.rule, t.node, t.path, t.branch)
                    for t in out2
                ]
            assert seq.stats.states_expanded == par.stats.states_expanded
            assert seq.stats.transitions_fired == par.stats.transitions_fired
            assert seq.stats.peak_frontier == par.stats.peak_frontier
        finally:
            par.close()

    def test_stop_when_pauses_identically(self):
        predicate = lambda state: state.size >= 5
        seq = AnalysisSession(wide_mix(3))
        par = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            g1 = seq.explore(5000, stop_when=predicate)
            g2 = par.explore(5000, stop_when=predicate)
            assert [s.to_notation() for s in g1.states] == [
                s.to_notation() for s in g2.states
            ]
            assert seq.expanded_count == par.expanded_count
        finally:
            par.close()

    def test_workers_1_never_spawns_a_pool(self):
        session = AnalysisSession(spawner_loop(), workers=1)
        session.explore(CAP)
        assert session._pool is None  # the sequential path, untouched
        session.close()

    def test_resumed_parallel_growth_matches_fresh_run(self):
        par = AnalysisSession(wide_mix(3), workers=WORKERS)
        ref = AnalysisSession(wide_mix(3))
        try:
            par.explore(300)
            par.explore(1200)  # resume from the saved frontier
            ref.explore(1200)
            assert [s.to_notation() for s in par.graph.states] == [
                s.to_notation() for s in ref.graph.states
            ]
        finally:
            par.close()


class TestCheckpointRoundTrip:
    def test_parallel_checkpoint_resumes_sequentially(self, tmp_path):
        par = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            par.explore(400)
            data = par.checkpoint()
        finally:
            par.close()
        path = tmp_path / "par.json"
        save_checkpoint(data, str(path))
        resumed = restore_session(load_checkpoint(str(path)))
        assert resumed.workers == 1
        resumed.explore(1200)
        ref = AnalysisSession(wide_mix(3))
        ref.explore(1200)
        assert [s.to_notation() for s in resumed.graph.states] == [
            s.to_notation() for s in ref.graph.states
        ]

    def test_sequential_checkpoint_resumes_in_parallel(self, tmp_path):
        seq = AnalysisSession(wide_mix(3))
        seq.explore(400)
        path = tmp_path / "seq.json"
        save_checkpoint(seq.checkpoint(), str(path))
        resumed = restore_session(load_checkpoint(str(path)), workers=WORKERS)
        assert resumed.workers == WORKERS
        try:
            resumed.explore(1200)
            ref = AnalysisSession(wide_mix(3))
            ref.explore(1200)
            assert [s.to_notation() for s in resumed.graph.states] == [
                s.to_notation() for s in ref.graph.states
            ]
        finally:
            resumed.close()


class TestBudgetGovernance:
    def test_deadline_exhaustion_surfaces_at_coordinator(self):
        budget = Budget(deadline=5.0, clock=ticking_clock(0.25))
        session = AnalysisSession(wide_mix(3), workers=WORKERS, budget=budget)
        budget.start()
        try:
            with pytest.raises(BudgetExhausted) as excinfo:
                session.explore(100_000)
            assert excinfo.value.resource == "deadline"
            # the interrupted frontier is a clean resumable BFS prefix
            data = session.checkpoint()
        finally:
            session.close()
        resumed = restore_session(data)
        resumed.explore(1200)
        ref = AnalysisSession(wide_mix(3))
        ref.explore(1200)
        assert [s.to_notation() for s in resumed.graph.states] == [
            s.to_notation() for s in ref.graph.states
        ]

    def test_partial_verdict_with_workers_resumes_to_clean_answer(self, tmp_path):
        scheme = spawner_loop()
        clean = PROCEDURES["boundedness"](scheme, AnalysisSession(scheme), None)
        budget = Budget(
            deadline=2.0, clock=ticking_clock(0.9), on_exhaust="partial"
        )
        session = AnalysisSession(scheme, workers=WORKERS)
        try:
            interrupted = PROCEDURES["boundedness"](scheme, session, budget)
        finally:
            session.close()
        if not isinstance(interrupted, PartialVerdict):
            assert interrupted.holds == clean.holds
            return
        assert interrupted.resumable
        path = tmp_path / "partial.json"
        save_checkpoint(interrupted.checkpoint, str(path))
        resumed_session = restore_session(load_checkpoint(str(path)), scheme=scheme)
        resumed = PROCEDURES["boundedness"](scheme, resumed_session, None)
        assert not isinstance(resumed, PartialVerdict)
        assert resumed.holds == clean.holds

    def test_state_cap_respects_overshoot_contract(self):
        seq = AnalysisSession(wide_mix(3))
        par = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            g1 = seq.explore(777)
            g2 = par.explore(777)
            assert len(g2.states) == len(g1.states)  # same overshoot, exactly
        finally:
            par.close()


class TestObservability:
    def test_per_worker_metrics_fold_into_session_registry(self):
        session = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            session.explore(800)
        finally:
            session.close()
        snapshot = session.metrics.as_dict()
        expansions = worker_expansions(snapshot)
        assert set(expansions) <= {str(i) for i in range(WORKERS)}
        assert expansions, "no per-worker states_expanded counters recorded"
        # workers may expand a few window states the coordinator then
        # abandons (budget boundary), so per-worker totals bound above
        assert sum(expansions.values()) >= session.expanded_count
        assert snapshot["parallel.workers"]["value"] == WORKERS
        assert snapshot["parallel.rounds"]["value"] >= 1
        assert session.stats.peak_frontier == int(
            session.metrics.gauge("explore.frontier", "").max or 0
        )

    def test_registry_round_trips_through_dict(self):
        session = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            session.explore(600)
        finally:
            session.close()
        snapshot = session.metrics.as_dict()
        rebuilt = registry_from_dict(snapshot)
        assert rebuilt.as_dict() == snapshot


class TestWorkerPool:
    def test_shard_assignment_is_stable_per_signature(self):
        scheme = wide_mix(3)
        pool = WorkerPool(scheme, 2)
        try:
            session = AnalysisSession(scheme)
            session.explore(50)
            for state in session.graph.states:
                assert pool.shard_of(state) == pool.shard_of(state)
                assert 0 <= pool.shard_of(state) < 2
        finally:
            pool.close()

    def test_close_is_idempotent_and_reaps_processes(self):
        pool = WorkerPool(spawner_loop(), 2)
        processes = [handle.process for handle in pool.workers]
        pool.close()
        pool.close()
        for process in processes:
            assert not process.is_alive()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(AnalysisError):
            WorkerPool(spawner_loop(), 0)
        with pytest.raises(AnalysisError):
            AnalysisSession(spawner_loop(), workers=0)
        session = AnalysisSession(spawner_loop())
        with pytest.raises(AnalysisError):
            session.workers = -3

    def test_check_alive_drains_survivors_before_raising(self):
        import signal

        from repro.analysis.parallel import WorkerFailure
        from repro.core.semantics import MemoizingSemantics

        scheme = wide_mix(3)
        probe = AnalysisSession(scheme)
        probe.explore(4)
        semantics = MemoizingSemantics(scheme)
        roots = [semantics.intern(state) for state in probe.graph.states]
        pool = WorkerPool(scheme, 2)
        try:
            survivor = pool.workers[1]
            survivor.connection.send(
                ("expand", 0, 0, [("s", state) for state in roots])
            )
            assert survivor.connection.poll(30.0), "survivor must answer"
            victim = pool.workers[0].process
            victim.kill()
            victim.join()
            with pytest.raises(WorkerFailure) as failure:
                pool.check_alive(semantics)
            assert list(failure.value.indices) == [0]
            # the survivor's in-flight announcements were mirrored, not lost
            assert len(survivor.table) > 0
            assert not survivor.connection.poll()
        finally:
            pool.close()

    def test_close_escalates_to_kill_for_wedged_worker(self, monkeypatch):
        import signal
        import time

        import repro.analysis.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "_JOIN_TIMEOUT", 0.2)
        pool = WorkerPool(wide_mix(3), 2)
        processes = [handle.process for handle in pool.workers]
        for process in processes:
            os.kill(process.pid, signal.SIGSTOP)  # ignores stop and SIGTERM
        started = time.monotonic()
        pool.close()
        assert time.monotonic() - started < 10.0, "shutdown must stay bounded"
        for process in processes:
            assert not process.is_alive()
        pool.close()  # still idempotent after the escalation path

    def test_resizing_workers_respawns_pool_lazily(self):
        session = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            session.explore(300)
            first = session._pool
            assert first is not None and first.size == WORKERS
            session.workers = 3
            assert session._pool is None  # torn down, respawn is lazy
            session.explore(600)
            assert session._pool is not None and session._pool.size == 3
            ref = AnalysisSession(wide_mix(3))
            ref.explore(600)
            assert [s.to_notation() for s in session.graph.states] == [
                s.to_notation() for s in ref.graph.states
            ]
        finally:
            session.close()

    def test_start_method_env_override_is_validated(self, monkeypatch):
        monkeypatch.setenv("RP_PARALLEL_START", "not-a-method")
        with pytest.raises(AnalysisError):
            default_start_method()
        monkeypatch.delenv("RP_PARALLEL_START")
        assert default_start_method() in ("fork", "spawn")


class TestApiSurface:
    def test_request_workers_round_trips_json(self):
        request = AnalysisRequest(
            procedure="boundedness", source="x", workers=4
        )
        wire = json.loads(json.dumps(request.to_json_dict()))
        assert wire["workers"] == 4
        assert AnalysisRequest.from_json_dict(wire).workers == 4
        absent = AnalysisRequest(procedure="boundedness", source="x")
        assert absent.to_json_dict()["workers"] is None

    def test_request_workers_validation(self):
        with pytest.raises(ApiError):
            AnalysisRequest(
                procedure="boundedness", source="x", workers=0
            ).validate()
        with pytest.raises(ApiError):
            AnalysisRequest(
                procedure="boundedness", source="x", workers="four"
            ).validate()

    def test_execute_honors_workers_and_matches_sequential(self, tmp_path):
        from repro.zoo import FIG1_PROGRAM

        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        sequential = execute(
            AnalysisRequest(procedure="boundedness", source=FIG1_PROGRAM)
        )
        parallel = execute(
            AnalysisRequest(
                procedure="boundedness", source=FIG1_PROGRAM, workers=WORKERS
            ),
            ledger=ledger,
        )
        assert parallel.comparable() == sequential.comparable()
        (entry,) = ledger.entries()
        assert entry["extra"]["workers"] == WORKERS

    def test_ledger_records_workers_and_per_worker_counts(self, tmp_path):
        scheme = wide_mix(3)
        session = AnalysisSession(scheme, workers=WORKERS)
        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        try:
            response = execute(
                AnalysisRequest(
                    procedure="halts",
                    fingerprint=scheme_fingerprint(scheme),
                    params={"max_states": 800},
                    workers=WORKERS,
                ),
                scheme=scheme,
                session=session,
                ledger=ledger,
            )
        finally:
            session.close()
        assert response.ok
        (entry,) = ledger.entries()
        assert entry["extra"]["workers"] == WORKERS
        recorded = entry["extra"].get("worker_expansions")
        assert recorded and sum(recorded.values()) >= session.expanded_count


class TestServeSurface:
    def test_daemon_honors_request_workers(self):
        from repro.serve import ServeClient, daemon_in_thread

        tmp = f"/tmp/rpp-{uuid.uuid4().hex[:8]}"
        os.makedirs(tmp, exist_ok=True)
        sock = os.path.join(tmp, "s.sock")
        scheme = wide_mix(3)
        fingerprint = scheme_fingerprint(scheme)
        with daemon_in_thread(sock, flight_dir=tmp) as daemon:
            daemon.pool.adopt(scheme)
            with ServeClient(sock) as client:
                served_parallel = client.query(
                    "boundedness",
                    fingerprint=fingerprint,
                    workers=WORKERS,
                    max_states=CAP,
                )
                entry = daemon.pool.get(fingerprint)
                assert entry is not None
                assert entry.session.workers == WORKERS
                served_sequential = client.query(
                    "halts", fingerprint=fingerprint, max_states=CAP
                )
                # an absent workers field resets the pooled session
                assert entry.session.workers == 1
        local = execute(
            AnalysisRequest(
                procedure="boundedness",
                fingerprint=fingerprint,
                params={"max_states": CAP},
            ),
            scheme=scheme,
            session=AnalysisSession(scheme),
        )
        assert served_parallel.comparable() == local.comparable()
        assert served_sequential.ok


