"""Tests for mutex, persistence, sup-reachability, halting, inevitability
(Theorems 4–6, Corollary 7, §5.2–5.3)."""

import pytest

from repro.analysis import (
    Explorer,
    halting_via_inevitability,
    halts,
    inevitability,
    may_terminate,
    minimal_reachable_states,
    mutually_exclusive,
    never_terminates_procedure,
    nodes_never_cooccur,
    persistent,
    reaches_downward_closed,
    sup_reachability,
    write_conflicts,
)
from repro.analysis.certificates import (
    LassoCertificate,
    PumpCertificate,
    WitnessPath,
)
from repro.core.embedding import GapEmbedding, embeds
from repro.core.hstate import EMPTY, HState
from repro.core.semantics import AbstractSemantics
from repro.zoo import (
    ZOO_BOUNDED,
    bounded_spawner,
    deep_recursion,
    diverging_loop,
    fig2_scheme,
    mutex_pair,
    nonterminating_choice,
    persistent_server,
    racing_writers,
    spawner_loop,
    terminating_chain,
    wait_blocked,
)

P = HState.parse


class TestMutex:
    def test_wait_separated_writers_are_exclusive(self):
        scheme = mutex_pair()
        verdict = mutually_exclusive(scheme, "m0", "c0")
        assert verdict.holds  # w1 runs before the child is spawned

    def test_post_wait_writer_exclusive_with_child(self):
        scheme = mutex_pair()
        # m3 runs after the wait, so the child (c0) is gone
        assert mutually_exclusive(scheme, "m3", "c0").holds

    def test_racing_writers_conflict(self):
        scheme = racing_writers()
        verdict = mutually_exclusive(scheme, "m1", "c0")
        assert not verdict.holds
        witness = verdict.certificate
        assert isinstance(witness, WitnessPath)
        assert witness.final.contains_all_nodes(["m1", "c0"])

    def test_witness_is_a_real_run(self):
        scheme = racing_writers()
        verdict = mutually_exclusive(scheme, "m1", "c0")
        sem = AbstractSemantics(scheme)
        final = sem.run(verdict.certificate.transitions)
        assert final.contains_all_nodes(["m1", "c0"])

    def test_self_exclusion_multiplicity(self):
        # two simultaneous c0 invocations exist in the spawner loop
        verdict = nodes_never_cooccur(spawner_loop(), ["c0", "c0"])
        assert not verdict.holds

    def test_self_exclusion_holds_when_single(self):
        # bounded_spawner(1) spawns a single child: two c0's impossible
        verdict = nodes_never_cooccur(bounded_spawner(1), ["c0", "c0"])
        assert verdict.holds

    def test_write_conflicts_report(self):
        report = write_conflicts(mutex_pair(), ["m0", "m3", "c0"])
        assert set(report) == {("c0", "m0"), ("c0", "m3"), ("m0", "m3")}
        assert all(v.holds for v in report.values())

    def test_write_conflicts_detects_race(self):
        report = write_conflicts(racing_writers(), ["m1", "c0"])
        assert not report[("c0", "m1")].holds


class TestSupReachability:
    @pytest.mark.parametrize("name,factory", ZOO_BOUNDED)
    def test_basis_matches_exhaustive_minima_on_bounded(self, name, factory):
        scheme = factory()
        graph = Explorer(scheme).explore()
        assert graph.complete
        basis = set(minimal_reachable_states(scheme))
        # every reachable state dominates a basis element, and basis
        # elements are reachable minima
        for state in graph.states:
            assert any(embeds(low, state) for low in basis), (name, state)
        for low in basis:
            assert low in graph.index
            assert not any(
                embeds(other, low) and other != low for other in graph.states
            )

    def test_terminates_on_unbounded_schemes(self):
        for factory in (spawner_loop, deep_recursion, persistent_server, fig2_scheme):
            basis = minimal_reachable_states(factory())
            assert basis  # never empty: σ0 dominates something

    def test_empty_state_is_sole_minimum_when_reachable(self):
        # spawner can terminate: ∅ reachable, hence the basis is {∅}
        assert minimal_reachable_states(spawner_loop()) == [EMPTY]

    def test_server_minima(self):
        # the server never terminates: every state has s0 or s1
        basis = minimal_reachable_states(persistent_server())
        assert EMPTY not in basis
        assert all(s.contains_any_node(["s0", "s1"]) for s in basis)

    def test_verdict_details(self):
        verdict = sup_reachability(terminating_chain(3))
        assert verdict.holds
        assert verdict.details["basis_size"] == len(verdict.certificate.basis)

    def test_reaches_downward_closed(self):
        witness = reaches_downward_closed(
            spawner_loop(), predicate=lambda s: s.is_empty()
        )
        assert witness == EMPTY
        nothing = reaches_downward_closed(
            persistent_server(), predicate=lambda s: s.is_empty()
        )
        assert nothing is None


class TestPersistence:
    def test_server_nodes_are_persistent(self):
        verdict = persistent(persistent_server(), ["s0", "s1"])
        assert verdict.holds
        assert verdict.exact

    def test_single_server_node_not_persistent(self):
        # while the server sits at s1, no s0 is live
        verdict = persistent(persistent_server(), ["s0"])
        assert not verdict.holds
        witness = verdict.certificate
        assert not witness.contains_node("s0")

    def test_terminating_scheme_nothing_persistent(self):
        verdict = persistent(terminating_chain(3), ["q0", "q1", "q2", "q3"])
        assert not verdict.holds  # ∅ is reachable

    def test_diverging_loop_persistent(self):
        assert persistent(diverging_loop(), ["d0", "d1"]).holds

    def test_persistence_on_unbounded_wait_scheme(self):
        # deep_recursion: p0..p3 cover all nodes; every nonempty state has
        # one, but ∅ is reachable (decline the recursion immediately)
        verdict = persistent(deep_recursion(), ["p0", "p1", "p2", "p3"])
        assert not verdict.holds

    def test_blocked_parent_is_persistent(self):
        # wait_blocked: the parent never passes m1 and the child spins
        verdict = persistent(wait_blocked(), ["m0", "m1"])
        assert verdict.holds

    def test_never_terminates_procedure(self):
        scheme = persistent_server()
        # the zoo scheme has no procedure metadata for the server; add via
        # a fresh build
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder("server")
        b.action("s0", "poll", "s1")
        b.pcall("s1", invoked="w0", succ="s0")
        b.action("w0", "serve", "w1")
        b.end("w1")
        b.procedure("server", "s0")
        b.procedure("worker", "w0")
        scheme = b.build(root="s0")
        assert never_terminates_procedure(scheme, "server").holds
        assert not never_terminates_procedure(scheme, "worker").holds

    def test_unknown_procedure(self):
        with pytest.raises(KeyError):
            never_terminates_procedure(fig2_scheme(), "nope")


class TestHalting:
    def test_halting_schemes(self):
        for factory in (lambda: terminating_chain(4), lambda: bounded_spawner(3)):
            verdict = halts(factory())
            assert verdict.holds
            assert verdict.exact

    def test_diverging_loop_does_not_halt(self):
        verdict = halts(diverging_loop())
        assert not verdict.holds
        assert isinstance(verdict.certificate, LassoCertificate)

    def test_choice_does_not_halt_but_may_terminate(self):
        scheme = nonterminating_choice()
        assert not halts(scheme).holds
        assert may_terminate(scheme).holds

    def test_unbounded_does_not_halt(self):
        verdict = halts(spawner_loop())
        assert not verdict.holds
        assert isinstance(verdict.certificate, PumpCertificate)

    def test_lasso_certificate_is_real(self):
        scheme = diverging_loop()
        cert = halts(scheme).certificate
        sem = AbstractSemantics(scheme)
        assert cert.loop[0].source == cert.loop[-1].target  # a real cycle
        state = cert.loop[0].source
        for transition in cert.loop:
            assert transition in sem.successors(state)
            state = transition.target

    def test_wait_blocked_does_not_halt(self):
        assert not halts(wait_blocked()).holds


class TestInevitability:
    def test_initial_outside(self):
        verdict = inevitability(terminating_chain(2), [P("q9")])
        assert verdict.holds
        assert verdict.method == "initial-outside"

    def test_leaving_a_region_inevitable(self):
        # chain: states containing q0 or q1 are inevitably left
        scheme = terminating_chain(4)
        verdict = inevitability(scheme, [P("q0"), P("q1")])
        assert verdict.holds
        assert verdict.exact

    def test_violation_by_lasso(self):
        # diverging loop stays within {d0, d1} forever
        scheme = diverging_loop()
        verdict = inevitability(scheme, [P("d0"), P("d1")])
        assert not verdict.holds
        assert verdict.method in ("lasso-inside", "terminating-run-inside")

    def test_violation_by_termination_inside(self):
        # I contains ∅: terminated runs never leave ↑I
        scheme = terminating_chain(2)
        verdict = inevitability(scheme, [EMPTY])
        assert not verdict.holds
        assert verdict.method == "terminating-run-inside"

    def test_gap_embedding_variant(self):
        # with gap nodes restricted, fewer states are "inside"
        scheme = diverging_loop()
        strict = GapEmbedding([])
        verdict = inevitability(scheme, [P("d0")], embedding=strict)
        # ↑{d0} under the strict embedding is {d0} alone; the loop leaves
        # it at d1, so inevitability holds
        assert verdict.holds

    def test_halting_via_inevitability_agrees_with_direct(self):
        cases = [
            (lambda: terminating_chain(3), True),
            (lambda: bounded_spawner(2), True),
            (diverging_loop, False),
            (nonterminating_choice, False),
            (wait_blocked, False),
        ]
        for factory, expected in cases:
            scheme = factory()
            via_inevitability = halting_via_inevitability(scheme)
            direct = halts(scheme)
            assert via_inevitability.holds == direct.holds == expected

    def test_unbounded_inside_via_pump(self):
        # the spawner loop can grow forever while always holding an m0/m1
        scheme = spawner_loop()
        verdict = inevitability(
            scheme, [P("m0"), P("m1"), P("m2")], max_states=20_000
        )
        assert not verdict.holds
