"""Tests for the WQO toolkit: orderings, Higman, Kruskal, bases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wqo import (
    QuasiOrder,
    UpwardClosedSet,
    antichain,
    check_increasing_pair,
    equality_order,
    gap_embedding_order,
    greedy_bad_sequence,
    is_bad_sequence,
    minimal_elements,
    multiset_leq,
    multiset_order,
    natural_order,
    product_order,
    subword_leq,
    subword_order,
    tree_embedding_order,
)
from repro.core.hstate import HState

from .test_hstate import hstates

P = HState.parse


class TestQuasiOrder:
    def test_strict_and_equivalent(self):
        nat = natural_order()
        assert nat.lt(1, 2)
        assert not nat.lt(2, 2)
        assert nat.equivalent(3, 3)

    def test_incomparable(self):
        eq = equality_order()
        assert eq.incomparable("a", "b")
        assert not eq.incomparable("a", "a")

    def test_product_order(self):
        order = product_order(natural_order(), natural_order())
        assert order.leq((1, 2), (2, 2))
        assert not order.leq((1, 3), (2, 2))
        assert not order.leq((1,), (1, 2))

    def test_check_increasing_pair(self):
        nat = natural_order()
        assert check_increasing_pair(nat, [3, 2, 1, 2]) == (1, 3)
        with pytest.raises(ValueError):
            check_increasing_pair(nat, [3, 2, 1])

    def test_is_bad_sequence(self):
        nat = natural_order()
        assert is_bad_sequence(nat, [5, 4, 3])
        assert not is_bad_sequence(nat, [5, 4, 4])

    def test_minimal_elements(self):
        nat = natural_order()
        assert minimal_elements(nat, [3, 1, 2]) == [1]
        pairs = product_order(natural_order(), natural_order())
        assert sorted(minimal_elements(pairs, [(1, 2), (2, 1), (2, 2)])) == [
            (1, 2),
            (2, 1),
        ]


class TestHigman:
    def test_subword_basics(self):
        eq = equality_order()
        assert subword_leq(eq, "ab", "xaxbx")
        assert not subword_leq(eq, "ba", "ab")
        assert subword_leq(eq, "", "anything")

    def test_subword_over_naturals(self):
        nat = natural_order()
        assert subword_leq(nat, [1, 2], [0, 3, 0, 5])
        assert not subword_leq(nat, [4], [1, 2, 3])

    def test_multiset_ignores_order(self):
        eq = equality_order()
        assert multiset_leq(eq, "ba", "ab")
        assert not multiset_leq(eq, "aab", "ab")

    def test_multiset_needs_matching_not_greedy(self):
        # base order: a ≤ a, a ≤ b', b ≤ b' only — a case where greedy
        # assignment of 'a' to the first compatible slot would fail
        def leq(x, y):
            return x == y or (x == "a" and y == "c") or (x == "b" and y == "c")

        order = QuasiOrder(leq)
        assert multiset_leq(order, ["a", "b"], ["c", "a"])
        assert multiset_leq(order, ["b", "a"], ["a", "c"])
        assert not multiset_leq(order, ["b", "b"], ["a", "c"])

    @given(st.lists(st.integers(0, 5)), st.lists(st.integers(0, 5)))
    @settings(max_examples=60, deadline=None)
    def test_subword_implies_multiset(self, small, big):
        nat = natural_order()
        if subword_leq(nat, small, big):
            assert multiset_leq(nat, small, big)

    @given(st.lists(st.integers(0, 3), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_subword_reflexive(self, word):
        assert subword_leq(natural_order(), word, word)

    @given(
        st.lists(st.integers(0, 3), max_size=5),
        st.lists(st.integers(0, 3), max_size=5),
        st.lists(st.integers(0, 3), max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_subword_transitive(self, a, b, c):
        order = subword_order(natural_order())
        if order.leq(a, b) and order.leq(b, c):
            assert order.leq(a, c)

    @given(st.lists(st.lists(st.integers(0, 2), max_size=3), min_size=25, max_size=25))
    @settings(max_examples=20, deadline=None)
    def test_long_sequences_are_good(self, words):
        # an empirical echo of Higman's lemma: with a tiny alphabet and
        # short words, 25 samples always contain an increasing pair
        order = subword_order(natural_order())
        assert not is_bad_sequence(order, words)


class TestKruskalOrder:
    def test_tree_embedding_order_wraps_embeds(self):
        order = tree_embedding_order()
        assert order.leq(P("a,b"), P("c,{a,b}"))
        assert order.lt(P("a"), P("a,b"))

    def test_gap_embedding_order(self):
        order = gap_embedding_order(["x"])
        assert order.leq(P("a"), P("a,x"))
        assert not order.leq(P("a"), P("a,y"))

    @given(st.lists(hstates(max_leaves=3), min_size=30, max_size=30))
    @settings(max_examples=10, deadline=None)
    def test_greedy_bad_sequences_stay_short(self, states):
        # wqo in action: random bad sequences over small states are short
        order = tree_embedding_order()
        bad = greedy_bad_sequence(order, states)
        assert is_bad_sequence(order, bad)
        assert len(bad) < 30  # ∅ or duplicates force an increasing pair


class TestUpwardClosedSet:
    def test_membership(self):
        ucs = UpwardClosedSet(tree_embedding_order(), [P("a")])
        assert P("a") in ucs
        assert P("x,{a}") in ucs
        assert P("b") not in ucs

    def test_empty(self):
        ucs = UpwardClosedSet(tree_embedding_order())
        assert ucs.is_empty()
        assert P("a") not in ucs

    def test_add_keeps_basis_minimal(self):
        ucs = UpwardClosedSet(tree_embedding_order(), [P("a,b")])
        assert ucs.add(P("a"))
        assert list(ucs.basis) == [P("a")]
        assert not ucs.add(P("a,c"))

    def test_add_reports_growth(self):
        ucs = UpwardClosedSet(tree_embedding_order(), [P("a")])
        assert not ucs.add(P("a,b"))
        assert ucs.add(P("c"))

    def test_union_and_inclusion(self):
        order = tree_embedding_order()
        left = UpwardClosedSet(order, [P("a")])
        right = UpwardClosedSet(order, [P("b")])
        both = left.union(right)
        assert both.includes(left)
        assert both.includes(right)
        assert not left.includes(both)

    def test_equality(self):
        order = tree_embedding_order()
        assert UpwardClosedSet(order, [P("a"), P("a,b")]) == UpwardClosedSet(
            order, [P("a")]
        )

    def test_copy_is_independent(self):
        order = tree_embedding_order()
        original = UpwardClosedSet(order, [P("a")])
        copy = original.copy()
        copy.add(P("b"))
        assert P("b") not in original

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(UpwardClosedSet(tree_embedding_order()))

    def test_antichain_helper(self):
        result = antichain(tree_embedding_order(), [P("a,b"), P("a"), P("c")])
        assert result == [P("a"), P("c")]

    @given(st.lists(hstates(max_leaves=3), max_size=8), hstates(max_leaves=3))
    @settings(max_examples=40, deadline=None)
    def test_minimization_preserves_membership(self, generators, probe):
        order = tree_embedding_order()
        ucs = UpwardClosedSet(order, generators)
        raw = any(order.leq(g, probe) for g in generators)
        assert (probe in ucs) == raw
