"""Tests for telemetry export and live introspection (PR 8 tentpole).

Covers the export surface end to end: OTLP/JSON span and metrics
mapping, the :class:`OtlpJsonSink` (file and HTTP transports, bounded
queue, orphan-event accounting), the Prometheus text exposition, the
stdlib sampling profiler (signal and thread modes), histogram bucket
percentiles (merge, wire round-trip), the ``rpcheck-diff/1`` schema tag,
the latency-percentile report section, and the static ledger dashboard —
module and ``rpcheck dashboard`` CLI.
"""

import http.server
import json
import re
import threading
import time

import pytest

from repro.cli import main
from repro.obs import (
    DIFF_SCHEMA,
    JsonlSink,
    Ledger,
    MemorySink,
    MetricsRegistry,
    OtlpJsonSink,
    OTLP_ENV,
    SamplingProfiler,
    Tracer,
    build_tree,
    latency_percentiles,
    make_entry,
    otlp_metrics_request,
    otlp_span,
    otlp_spans_request,
    prometheus_exposition,
    registry_from_dict,
    render_dashboard,
)
from repro.obs.export import INSTRUMENTATION_SCOPE
from repro.obs.metrics import HISTOGRAM_BUCKET_BOUNDS, HistogramMetric
from repro.zoo import FIG1_PROGRAM


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.rp"
    path.write_text(FIG1_PROGRAM)
    return str(path)


# ----------------------------------------------------------------------
# OTLP/JSON mapping
# ----------------------------------------------------------------------


class TestOtlpMapping:
    def test_span_record_maps_onto_otlp_span(self):
        record = {
            "type": "span",
            "id": 7,
            "parent": 3,
            "name": "boundedness",
            "start": 100.0,
            "wall": 0.25,
            "cpu": 0.2,
            "attrs": {"states": 41, "ok": True, "ratio": 0.5},
        }
        span = otlp_span(record, trace_id="ab" * 16, epoch_anchor=1000.0)
        assert span["traceId"] == "ab" * 16
        assert re.fullmatch(r"[0-9a-f]{16}", span["spanId"])
        assert re.fullmatch(r"[0-9a-f]{16}", span["parentSpanId"])
        assert span["name"] == "boundedness"
        # perf-counter start + anchor -> epoch nanos, as decimal strings
        assert span["startTimeUnixNano"] == str(int(1100.0 * 1e9))
        assert int(span["endTimeUnixNano"]) - int(span["startTimeUnixNano"]) == int(
            0.25 * 1e9
        )
        attrs = {a["key"]: a["value"] for a in span["attributes"]}
        assert attrs["states"] == {"intValue": "41"}  # proto3 int64-as-string
        assert attrs["ok"] == {"boolValue": True}
        assert attrs["ratio"] == {"doubleValue": 0.5}
        assert attrs["repro.cpu_seconds"] == {"doubleValue": 0.2}

    def test_events_become_span_events(self):
        record = {"type": "span", "id": 1, "name": "s", "start": 0.0, "wall": 1.0}
        events = [
            {"type": "event", "span": 1, "name": "tick", "time": 0.5, "attrs": {"n": 2}}
        ]
        span = otlp_span(record, trace_id="0" * 32, epoch_anchor=0.0, events=events)
        [event] = span["events"]
        assert event["name"] == "tick"
        assert event["timeUnixNano"] == str(int(0.5 * 1e9))

    def test_spans_request_envelope(self):
        request = otlp_spans_request([{"name": "x"}], service_name="svc")
        [resource_spans] = request["resourceSpans"]
        attrs = {
            a["key"]: a["value"] for a in resource_spans["resource"]["attributes"]
        }
        assert attrs["service.name"] == {"stringValue": "svc"}
        [scope_spans] = resource_spans["scopeSpans"]
        assert scope_spans["scope"]["name"] == INSTRUMENTATION_SCOPE
        assert scope_spans["spans"] == [{"name": "x"}]

    def test_metrics_request_shapes(self):
        registry = MetricsRegistry()
        registry.counter("queries", "total queries").inc(3)
        registry.counter("queries").labels(procedure="halts").inc(2)
        registry.gauge("frontier").set(11)
        registry.histogram("latency").observe(0.5)
        request = otlp_metrics_request(registry)
        [rm] = request["resourceMetrics"]
        [scope_metrics] = rm["scopeMetrics"]
        metrics = {m["name"]: m for m in scope_metrics["metrics"]}
        sum_body = metrics["queries"]["sum"]
        assert sum_body["isMonotonic"] is True
        assert sum_body["aggregationTemporality"] == 2  # CUMULATIVE
        values = {
            tuple(
                (a["key"], a["value"]["stringValue"])
                for a in p["attributes"]
            ): p["asDouble"]
            for p in sum_body["dataPoints"]
        }
        assert values[()] == 3.0
        assert values[(("procedure", "halts"),)] == 2.0
        [gauge_point] = metrics["frontier"]["gauge"]["dataPoints"]
        assert gauge_point["asDouble"] == 11.0
        [hist_point] = metrics["latency"]["histogram"]["dataPoints"]
        assert hist_point["count"] == "1"
        assert hist_point["sum"] == 0.5
        assert len(hist_point["bucketCounts"]) == len(HISTOGRAM_BUCKET_BOUNDS) + 1
        assert sum(int(c) for c in hist_point["bucketCounts"]) == 1
        assert hist_point["explicitBounds"] == list(HISTOGRAM_BUCKET_BOUNDS)

    def test_empty_metrics_are_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never-set")
        registry.histogram("never-observed")
        request = otlp_metrics_request(registry)
        assert request["resourceMetrics"][0]["scopeMetrics"][0]["metrics"] == []


class TestOtlpSink:
    def _trace_through(self, sink):
        tracer = Tracer(sink)
        with tracer.span("root", program="t"):
            with tracer.span("child"):
                tracer.event("progress", states=5)
        tracer.close()

    def test_file_transport_round_trip(self, tmp_path):
        target = tmp_path / "otlp.json"
        sink = OtlpJsonSink(str(target))
        self._trace_through(sink)
        lines = [
            json.loads(line)
            for line in target.read_text().splitlines()
            if line.strip()
        ]
        assert lines, "expected at least one export request line"
        spans = [
            span
            for request in lines
            for rs in request["resourceSpans"]
            for ss in rs["scopeSpans"]
            for span in ss["spans"]
        ]
        by_name = {span["name"]: span for span in spans}
        assert set(by_name) == {"root", "child"}
        # the event emitted inside "child" attached to the child span
        [event] = by_name["child"]["events"]
        assert event["name"] == "progress"
        assert by_name["child"]["parentSpanId"] != "0" * 16
        assert sink.stats()["exported_spans"] == 2
        assert sink.stats()["dropped_events"] == 0

    def test_bounded_queue_drops_and_counts(self, tmp_path):
        sink = OtlpJsonSink(
            str(tmp_path / "o.json"), queue_size=2, batch_size=100
        )
        # batch_size > queue_size: nothing flushes, overflow must drop
        for index in range(5):
            sink.emit(
                {"type": "span", "id": index, "name": "s", "start": 0.0, "wall": 0.0}
            )
        assert sink.stats()["queued"] == 2
        assert sink.stats()["dropped_spans"] == 3

    def test_orphan_events_counted_at_close(self, tmp_path):
        sink = OtlpJsonSink(str(tmp_path / "o.json"))
        sink.emit({"type": "event", "span": 99, "name": "orphan", "time": 0.0})
        sink.close()
        assert sink.stats()["dropped_events"] == 1

    def test_http_transport_posts_json(self, tmp_path):
        received = []

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers["Content-Length"])
                received.append(
                    (
                        self.headers["Content-Type"],
                        json.loads(self.rfile.read(length)),
                    )
                )
                self.send_response(200)
                self.end_headers()

            def log_message(self, *args):
                pass

        server = http.server.HTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}/v1/traces"
            sink = OtlpJsonSink(url)
            self._trace_through(sink)
            sink.close()
        finally:
            server.shutdown()
            thread.join(timeout=10)
        assert received
        content_type, body = received[0]
        assert content_type == "application/json"
        assert "resourceSpans" in body
        assert sink.stats()["export_failures"] == 0

    def test_unreachable_endpoint_counts_failures_not_raises(self):
        sink = OtlpJsonSink("http://127.0.0.1:9/", http_timeout=0.5)
        sink.emit({"type": "span", "id": 1, "name": "s", "start": 0.0, "wall": 0.0})
        sink.flush()
        stats = sink.stats()
        assert stats["export_failures"] >= 1
        assert stats["dropped_spans"] == 1
        assert stats["exported_spans"] == 0


class TestCliOtlp:
    def _export_lines(self, path):
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]

    def test_trace_format_otlp_flag(self, fig1_file, tmp_path, capsys):
        target = tmp_path / "trace.otlp.json"
        code = main(
            [
                fig1_file,
                "--max-states",
                "2000",
                "--trace",
                str(target),
                "--trace-format",
                "otlp",
            ]
        )
        assert code == 0
        lines = self._export_lines(target)
        span_requests = [l for l in lines if "resourceSpans" in l]
        metric_requests = [l for l in lines if "resourceMetrics" in l]
        assert span_requests, "expected OTLP span export requests"
        assert metric_requests, "expected one final metrics export"
        names = {
            span["name"]
            for request in span_requests
            for rs in request["resourceSpans"]
            for ss in rs["scopeSpans"]
            for span in ss["spans"]
        }
        assert "rpcheck" in names
        assert "boundedness" in names
        metric_names = {
            m["name"]
            for request in metric_requests
            for rm in request["resourceMetrics"]
            for sm in rm["scopeMetrics"]
            for m in sm["metrics"]
        }
        assert "explore.states_discovered" in metric_names

    def test_otlp_env_var_adds_exporter(self, fig1_file, tmp_path, monkeypatch, capsys):
        target = tmp_path / "env.otlp.json"
        monkeypatch.setenv(OTLP_ENV, str(target))
        code = main([fig1_file, "--max-states", "2000"])
        assert code == 0
        assert any("resourceSpans" in l for l in self._export_lines(target))

    def test_default_remains_jsonl(self, fig1_file, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        code = main([fig1_file, "--max-states", "2000", "--trace", str(target)])
        assert code == 0
        records = self._export_lines(target)
        assert all("type" in r for r in records)  # tracer records, not OTLP
        assert not any("resourceSpans" in r for r in records)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

# text exposition 0.0.4: comment lines or `name{labels} value`
PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+(Inf|NaN)?$"
)


def assert_valid_prometheus(text):
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert PROM_SAMPLE.match(line), f"invalid exposition line: {line!r}"


class TestPrometheus:
    def test_counter_gauge_histogram_families(self):
        registry = MetricsRegistry()
        registry.counter("serve.served", "queries answered").inc(7)
        registry.counter("serve.served").labels(procedure="halts").inc(2)
        registry.gauge("explore.frontier").set(3)
        hist = registry.histogram("latency.seconds", "per-query latency")
        for value in (0.001, 0.01, 0.01, 4.0):
            hist.observe(value)
        text = prometheus_exposition(registry)
        assert_valid_prometheus(text)
        assert "# TYPE serve_served_total counter" in text
        assert "serve_served_total 7" in text
        assert 'serve_served_total{procedure="halts"} 2' in text
        assert "# TYPE explore_frontier gauge" in text
        assert "explore_frontier 3" in text
        assert "# TYPE latency_seconds histogram" in text
        assert "latency_seconds_count 4" in text
        assert "latency_seconds_sum" in text
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("latency_seconds_bucket")
        ]
        assert buckets == sorted(buckets)  # cumulative
        assert buckets[-1] == 4  # +Inf bucket == count
        assert 'le="+Inf"' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").labels(path='a"b\\c').inc()
        text = prometheus_exposition(registry)
        assert '\\"' in text and "\\\\" in text

    def test_unset_gauge_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("g", "never sampled")
        text = prometheus_exposition(registry)
        assert "\ng " not in text and not text.startswith("g ")


# ----------------------------------------------------------------------
# Histogram percentiles
# ----------------------------------------------------------------------


class TestHistogramPercentiles:
    def test_percentiles_track_uniform_distribution(self):
        hist = HistogramMetric("h")
        for index in range(1, 10001):
            hist.observe(index / 1000.0)  # uniform over (0, 10]
        assert hist.percentile(0.50) == pytest.approx(5.0, rel=0.10)
        assert hist.percentile(0.95) == pytest.approx(9.5, rel=0.10)
        assert hist.percentile(0.99) == pytest.approx(9.9, rel=0.10)

    def test_single_observation_is_exact(self):
        hist = HistogramMetric("h")
        hist.observe(0.125)
        for q in (0.5, 0.95, 0.99):
            assert hist.percentile(q) == 0.125

    def test_value_dict_carries_percentiles_and_buckets(self):
        hist = HistogramMetric("h")
        hist.observe(1.0)
        snapshot = hist.value_dict()
        assert {"p50", "p95", "p99", "buckets"} <= snapshot.keys()
        assert sum(snapshot["buckets"]) == 1

    def test_merge_of_percentile_bearing_histograms(self):
        # satellite: merge() must fold bucket arrays elementwise so the
        # merged percentiles see both sides' observations
        a, b = MetricsRegistry(), MetricsRegistry()
        fast = a.histogram("latency")
        slow = b.histogram("latency")
        for _ in range(900):
            fast.observe(0.001)
        for _ in range(100):
            slow.observe(1.0)
        a.merge(b)
        merged = a.histogram("latency")
        assert merged.count == 1000
        assert sum(merged.buckets) == 1000
        assert merged.percentile(0.50) == pytest.approx(0.001, rel=0.5)
        # p95 exceeds the 90%-fast mass and lands in the slow tail
        assert merged.percentile(0.99) == pytest.approx(1.0, rel=0.5)

    def test_buckets_survive_wire_round_trip(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (0.001, 0.5, 0.5, 20.0):
            hist.observe(value)
        clone = registry_from_dict(registry.as_dict())
        assert clone.histogram("h").buckets == hist.buckets
        assert clone.histogram("h").percentile(0.95) == hist.percentile(0.95)


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------


def _burn(n=400000):
    total = 0
    for index in range(n):
        total += index * index
    return total


COLLAPSED_LINE = re.compile(r"^\S.* \d+$")


class TestSamplingProfiler:
    def test_signal_mode_collects_samples(self):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        try:
            deadline = time.time() + 2.0
            while profiler.stats()["samples"] < 3 and time.time() < deadline:
                _burn(100000)
        finally:
            profiler.stop()
        stats = profiler.stats()
        assert stats["samples"] >= 3
        lines = profiler.collapsed()
        assert lines
        for line in lines:
            assert COLLAPSED_LINE.match(line), line
        assert any("_burn" in line for line in lines)

    def test_thread_mode_fallback(self):
        profiler = SamplingProfiler(hz=500, mode="thread")
        with profiler:
            deadline = time.time() + 2.0
            while profiler.stats()["samples"] < 2 and time.time() < deadline:
                _burn(100000)
        assert profiler.stats()["mode"] == "thread"
        assert profiler.stats()["samples"] >= 2

    def test_start_stop_restores_and_restarts(self):
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        profiler.stop()
        # a second session on the same profiler keeps accumulating
        profiler.start()
        _burn(50000)
        profiler.stop()
        assert profiler.stats()["samples"] >= 0  # no crash, coherent stats

    def test_flamegraph_sample_cli(self, fig1_file, tmp_path, capsys):
        out = tmp_path / "stacks.txt"
        code = main(
            [
                "flamegraph",
                fig1_file,
                "--sample",
                "500",
                "--max-states",
                "4000",
                "--out",
                str(out),
            ]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "sampled" in err and "500Hz" in err
        for line in out.read_text().splitlines():
            assert COLLAPSED_LINE.match(line), line


# ----------------------------------------------------------------------
# Diff schema / report percentiles
# ----------------------------------------------------------------------


class TestDiffSchema:
    def _ledger_with_two_runs(self, tmp_path):
        from repro.zoo import spawner_loop

        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        scheme = spawner_loop()
        for wall in (1.0, 2.0):
            ledger.append(
                make_entry(kind="analysis", scheme=scheme, wall_seconds=wall)
            )
        return ledger

    def test_diff_json_carries_schema_tag(self, tmp_path, capsys):
        ledger = self._ledger_with_two_runs(tmp_path)
        code = main(["diff", "0", "1", "--ledger", ledger.path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == DIFF_SCHEMA == "rpcheck-diff/1"
        assert isinstance(payload["clean"], bool)
        # exit codes unchanged: 0 clean / 1 drift
        assert code == (0 if payload["clean"] else 1)


class TestReportPercentiles:
    def test_stats_flag_renders_percentiles(self, fig1_file, capsys):
        code = main([fig1_file, "--max-states", "2000", "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "p50" in out and "p95" in out and "p99" in out

    def test_report_text_and_json_percentiles(self, fig1_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main([fig1_file, "--max-states", "2000", "--trace", str(trace)])
        capsys.readouterr()
        code = main(["report", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "percentiles" in out
        code = main(["report", str(trace), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "latency" in payload
        row = payload["latency"]["rpcheck"]
        assert {"count", "p50", "p95", "p99", "max"} <= row.keys()

    def test_latency_percentiles_from_tree(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        for _ in range(5):
            with tracer.span("unit"):
                pass
        rows = latency_percentiles(build_tree(sink.records))
        assert rows["unit"]["count"] == 5
        assert rows["unit"]["p50"] <= rows["unit"]["p99"] <= rows["unit"]["max"]


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------


def _synthetic_entries(count=4):
    from repro.zoo import spawner_loop

    scheme = spawner_loop()
    entries = []
    for index in range(count):
        entry = make_entry(
            kind="analysis",
            scheme=scheme,
            wall_seconds=0.1 * (index + 1),
            procedures={
                "boundedness": {"verdict": "no", "seconds": 0.05 * (index + 1)}
            },
            spans={"boundedness": {"count": 1, "wall": 0.05, "self": 0.04}},
            outcome="ok" if index % 2 == 0 else "partial",
            extra={"workers": 2, "worker_expansions": {"0": 10 + index, "1": 12}},
        )
        entries.append(entry)
    return entries


class TestDashboard:
    def test_render_is_self_contained_html(self):
        page = render_dashboard(_synthetic_entries(), source="runs.jsonl")
        assert page.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in page and "<style>" in page
        assert "<script" not in page
        assert 'src="http' not in page and 'href="http' not in page
        assert "boundedness" in page
        # every run appears as one scatter point
        assert page.count('class="run-dot"') == 4 or "circle" in page

    def test_render_empty_ledger_still_valid(self):
        page = render_dashboard([])
        assert "<!DOCTYPE html>" in page
        assert "no runs" in page.lower() or "0 runs" in page

    def test_dashboard_cli_renders_three_runs(self, fig1_file, tmp_path, capsys):
        # acceptance: a real ledger with >= 3 runs renders through the CLI
        ledger = tmp_path / "runs.jsonl"
        for _ in range(3):
            main([fig1_file, "--max-states", "2000", "--ledger", str(ledger)])
        capsys.readouterr()
        out = tmp_path / "dash.html"
        code = main(["dashboard", "--ledger", str(ledger), "-o", str(out)])
        message = capsys.readouterr().out
        assert code == 0
        assert "3 runs" in message
        page = out.read_text()
        assert "<svg" in page and "<script" not in page
        assert "boundedness" in page

    def test_dashboard_cli_bad_ledger_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code = main(
            ["dashboard", "--ledger", str(bad), "-o", str(tmp_path / "o.html")]
        )
        assert code == 2
