"""Tests for the interpreted semantics M_I_G (Section 4)."""

import pytest

from repro.core.alphabet import TAU
from repro.errors import ExecutionError, InterpretationError
from repro.interp import (
    GlobalState,
    InterpretedExplorer,
    InterpretedSemantics,
    IState,
    ProgramInterpretation,
    TrivialInterpretation,
    UNIT,
    VarStore,
    first_scheduler,
    random_scheduler,
    round_robin_scheduler,
    run_program,
    run_scheduled,
)
from repro.lang import compile_source
from repro.zoo import FIG1_PROGRAM, fig2_scheme

SUM_PROGRAM = """
global total := 0;
global n := 4;
program main {
    while n > 0 do {
        total := total + n;
        n := n - 1;
    }
    end;
}
"""

PARALLEL_PROGRAM = """
global acc := 0;
program main {
    pcall worker;
    pcall worker;
    wait;
    acc := acc * 10;
    end;
}
procedure worker {
    acc := acc + 1;
    end;
}
"""


class TestVarStore:
    def test_mapping_interface(self):
        store = VarStore(x=1, y=2)
        assert store["x"] == 1
        assert len(store) == 2
        assert set(store) == {"x", "y"}
        assert "x" in store and "z" not in store

    def test_missing_key(self):
        with pytest.raises(KeyError):
            VarStore()["ghost"]

    def test_functional_update(self):
        store = VarStore(x=1)
        updated = store.set("x", 5).set("y", 7)
        assert store["x"] == 1
        assert updated["x"] == 5 and updated["y"] == 7

    def test_equality_and_hash(self):
        assert VarStore(x=1, y=2) == VarStore(y=2, x=1)
        assert hash(VarStore(x=1)) == hash(VarStore({"x": 1}))

    def test_update_many(self):
        assert VarStore(x=1).update({"x": 2, "y": 3}) == VarStore(x=2, y=3)


class TestIState:
    def test_leaf_and_forget(self):
        state = IState.leaf("q0", VarStore(k=1))
        assert state.forget().to_notation() == "q0"

    def test_canonicity(self):
        a = IState(
            (("q1", VarStore(x=1), IState.empty()), ("q0", UNIT, IState.empty()))
        )
        b = IState(
            (("q0", UNIT, IState.empty()), ("q1", VarStore(x=1), IState.empty()))
        )
        assert a == b and hash(a) == hash(b)

    def test_memory_distinguishes_states(self):
        a = IState.leaf("q0", VarStore(x=1))
        b = IState.leaf("q0", VarStore(x=2))
        assert a != b
        assert a.forget() == b.forget()

    def test_addition(self):
        combined = IState.leaf("q0", UNIT) + IState.leaf("q1", UNIT)
        assert combined.size == 2

    def test_replace_deep(self):
        inner = IState.leaf("q2", UNIT)
        state = IState((("q1", UNIT, inner),))
        [(path, node, mem, child)] = [
            p for p in state.positions() if p[1] == "q2"
        ]
        out = state.replace(path, (("q3", UNIT, IState.empty()),))
        assert out.forget().to_notation() == "q1,{q3}"


class TestTrivialInterpretation:
    def test_runs_are_subbehaviour_of_abstract(self):
        scheme = fig2_scheme()
        interp = TrivialInterpretation(branches={"b1": False, "b2": True})
        final, trace = run_scheduled(scheme, interp, max_steps=500)
        assert final.is_terminated()
        # every step projects to an abstract step
        from repro.core.semantics import AbstractSemantics

        abstract = AbstractSemantics(scheme)
        for step in trace:
            projected = step.forget()
            assert any(
                t.label == projected[0] and t.target == projected[2]
                for t in abstract.successors(projected[1])
            )

    def test_divergent_branches(self):
        scheme = fig2_scheme()
        interp = TrivialInterpretation(branches={"b1": True, "b2": True})
        # b1 = true loops forever spawning children
        with pytest.raises(ExecutionError):
            run_scheduled(scheme, interp, max_steps=200)


class TestProgramExecution:
    def test_sum_program(self):
        compiled = compile_source(SUM_PROGRAM)
        final, visible = run_program(compiled)
        assert final["total"] == 10
        assert final["n"] == 0
        assert all(label != TAU for label in visible)

    def test_parallel_program_all_schedulers(self):
        compiled = compile_source(PARALLEL_PROGRAM)
        for scheduler in (
            first_scheduler,
            round_robin_scheduler,
            random_scheduler(7),
            random_scheduler(99),
        ):
            final, _ = run_program(compiled, scheduler=scheduler)
            # both workers add 1, then main multiplies by 10 after wait
            assert final["acc"] == 20

    def test_interpretation_requires_concrete_tests(self):
        compiled = compile_source("program main { if b then { a; } end; }")
        with pytest.raises(InterpretationError):
            ProgramInterpretation(compiled)

    def test_abstract_actions_are_noops(self):
        compiled = compile_source(
            "global x := 1; program main { log_start; x := x + 1; end; }"
        )
        final, visible = run_program(compiled)
        assert final["x"] == 2
        assert "log_start" in visible

    def test_locals_are_per_invocation(self):
        source = """
        global out := 0;
        program main {
            pcall child;
            pcall child;
            wait;
            end;
        }
        procedure child {
            local mine := 0;
            mine := mine + 1;
            out := out + mine;
            end;
        }
        """
        final, _ = run_program(compile_source(source))
        # each child gets a fresh `mine`, so out = 1 + 1
        assert final["out"] == 2

    def test_nondeterministic_outcomes_explored(self):
        # racing increments: exploring all interleavings finds both orders,
        # but the final memory is the same (addition commutes)
        compiled = compile_source(PARALLEL_PROGRAM)
        interp = ProgramInterpretation(compiled)
        explorer = InterpretedExplorer(compiled.scheme, interp, max_states=5_000)
        lts = explorer.explore_or_raise()
        finals = {
            s.global_memory["acc"]
            for s in lts.states
            if isinstance(s, GlobalState) and s.is_terminated()
        }
        assert finals == {20}

    def test_racy_program_has_outcome_variance(self):
        source = """
        global x := 0;
        program main {
            pcall doubler;
            x := x + 1;
            wait;
            end;
        }
        procedure doubler {
            x := x * 2;
            end;
        }
        """
        compiled = compile_source(source)
        interp = ProgramInterpretation(compiled)
        lts = InterpretedExplorer(compiled.scheme, interp).explore_or_raise()
        finals = {
            s.global_memory["x"] for s in lts.states if s.is_terminated()
        }
        # (0*2)+1 = 1 if doubler first, (0+1)*2 = 2 if increment first
        assert finals == {1, 2}

    def test_determinism_per_invocation(self):
        # a single-invocation concrete program has a deterministic M_I
        compiled = compile_source(SUM_PROGRAM)
        interp = ProgramInterpretation(compiled)
        lts = InterpretedExplorer(compiled.scheme, interp).explore_or_raise()
        assert lts.is_deterministic()


class TestInterpretedSemanticsRules:
    def test_test_rule_is_deterministic(self):
        compiled = compile_source(
            "global n := 1; program main { if n > 0 then { a; } else { b; } end; }"
        )
        semantics = InterpretedSemantics(
            compiled.scheme, ProgramInterpretation(compiled)
        )
        [transition] = semantics.successors(semantics.initial_state)
        assert transition.rule == "test"
        assert transition.branch == 0  # n > 0 holds

    def test_wait_blocked_with_children(self):
        compiled = compile_source(
            "program main { pcall p; wait; end; } procedure p { spin; end; }"
        )
        interp = TrivialInterpretation()
        semantics = InterpretedSemantics(compiled.scheme, interp)
        state = semantics.initial_state
        [call] = semantics.successors(state)
        assert call.rule == "call"
        after_call = call.target
        rules = {t.rule for t in semantics.successors(after_call)}
        assert "wait" not in rules  # parent blocked while the child lives

    def test_end_releases_children_with_memories(self):
        compiled = compile_source(FIG1_PROGRAM)
        interp = TrivialInterpretation(branches={"b1": False, "b2": True})
        semantics = InterpretedSemantics(compiled.scheme, interp)
        final, trace = run_scheduled(compiled.scheme, interp, max_steps=500)
        assert final.is_terminated()

    def test_label_on_tests_is_visible(self):
        compiled = compile_source(
            "global n := 0; program main { if n > 0 then { a; } end; }"
        )
        semantics = InterpretedSemantics(
            compiled.scheme, ProgramInterpretation(compiled)
        )
        [transition] = semantics.successors(semantics.initial_state)
        assert transition.label == "n>0"
