"""Theorem 10 (Preservation: M_I_G ⊑_d M_G) and the P_G machine model,
checked on finite instances."""

import pytest

from repro.analysis.explore import Explorer
from repro.interp import (
    InterpretedExplorer,
    ProgramInterpretation,
    TrivialInterpretation,
    explore_machine_or_raise,
    MachineSemantics,
)
from repro.lang import compile_source
from repro.lts import d_simulates, is_projection_consistent, map_lts, weakly_simulates
from repro.lts.lts import LTS
from repro.zoo import FIG1_PROGRAM

BOUNDED_CONCRETE = """
global credit := 2;
program main {
    pcall worker;
    if credit > 0 then {
        credit := credit - 1;
    } else {
        log_empty;
    }
    wait;
    end;
}
procedure worker {
    credit := credit + 1;
    end;
}
"""

DIVERGING_CONCRETE = """
global k := 0;
program main {
    while k < 1 do {
        k := 0;
    }
    end;
}
"""


def _abstract_lts(scheme, max_states=20_000):
    graph = Explorer(scheme, max_states=max_states).explore_or_raise()
    return graph.to_lts()


def _interpreted_lts(scheme, interpretation, max_states=20_000):
    explorer = InterpretedExplorer(scheme, interpretation, max_states=max_states)
    return explorer.explore_or_raise()


class TestProjectionCorrectness:
    """The structural half: concrete edges project to abstract edges."""

    @pytest.mark.parametrize(
        "source,branches",
        [
            (BOUNDED_CONCRETE, None),
            (FIG1_PROGRAM, {"b1": False, "b2": True}),
        ],
    )
    def test_every_concrete_edge_is_abstract(self, source, branches):
        compiled = compile_source(source)
        if branches is None:
            interpretation = ProgramInterpretation(compiled)
        else:
            interpretation = TrivialInterpretation(branches=branches)
        concrete = _interpreted_lts(compiled.scheme, interpretation)
        from repro.core.semantics import AbstractSemantics

        abstract = AbstractSemantics(compiled.scheme)

        def abstract_successors(hstate):
            return [(t.label, t.target) for t in abstract.successors(hstate)]

        offending = is_projection_consistent(
            concrete, abstract_successors, lambda g: g.forget()
        )
        assert offending is None


class TestPreservationTheorem:
    """M_I_G ⊑_d M_G on finite fragments."""

    def test_bounded_concrete_program(self):
        compiled = compile_source(BOUNDED_CONCRETE)
        interpretation = ProgramInterpretation(compiled)
        concrete = _interpreted_lts(compiled.scheme, interpretation)
        abstract = _abstract_lts(compiled.scheme)
        assert d_simulates(concrete, abstract)

    def test_trivial_interpretation_of_fig1(self):
        compiled = compile_source(FIG1_PROGRAM)
        interpretation = TrivialInterpretation(branches={"b1": False, "b2": True})
        concrete = _interpreted_lts(compiled.scheme, interpretation)
        # fig2's abstract model is unbounded, so compare against the
        # *projection* of the concrete fragment: its states and edges are
        # genuine M_G states and edges (projection consistency is checked
        # in TestProjectionCorrectness), i.e. a finite sub-LTS of M_G —
        # simulation by a sub-LTS implies simulation by M_G itself.
        projected = map_lts(concrete, lambda g: g.forget())
        # every projected state must be an abstract reachable state
        assert weakly_simulates(concrete, projected)
        assert d_simulates(concrete, projected)

    def test_diverging_program_preserved(self):
        # the concrete program diverges; its abstraction must diverge too
        compiled = compile_source(DIVERGING_CONCRETE)
        interpretation = ProgramInterpretation(compiled)
        concrete = _interpreted_lts(compiled.scheme, interpretation)
        abstract = _abstract_lts(compiled.scheme)
        assert d_simulates(concrete, abstract)
        assert concrete.diverges(concrete.initial) is False  # 'k<1' is visible
        # the loop is a visible cycle, not a τ-divergence; ⊑_d still holds

    def test_preservation_direction_is_oneway(self):
        # the abstract model has behaviours the concrete one lacks (tests
        # are resolved deterministically), so M_G ⋢ M_I in general
        compiled = compile_source(BOUNDED_CONCRETE)
        interpretation = ProgramInterpretation(compiled)
        concrete = _interpreted_lts(compiled.scheme, interpretation)
        abstract = _abstract_lts(compiled.scheme)
        assert d_simulates(concrete, abstract)
        assert not d_simulates(abstract, concrete)


class TestMachineModel:
    """P_G ⊑_d M_I_G ⊑_d M_G with a fixed number of processors."""

    def test_machine_runs_are_interpreted_runs(self):
        compiled = compile_source(BOUNDED_CONCRETE)
        interpretation = ProgramInterpretation(compiled)
        machine = explore_machine_or_raise(compiled.scheme, interpretation, processors=1)
        interpreted = _interpreted_lts(compiled.scheme, interpretation)
        # every machine edge is an interpreted edge
        interpreted_edges = set(interpreted.edges())
        for edge in machine.edges():
            assert edge in interpreted_edges

    def test_chain_of_models(self):
        compiled = compile_source(BOUNDED_CONCRETE)
        interpretation = ProgramInterpretation(compiled)
        machine = explore_machine_or_raise(compiled.scheme, interpretation, processors=1)
        interpreted = _interpreted_lts(compiled.scheme, interpretation)
        abstract = _abstract_lts(compiled.scheme)
        assert d_simulates(machine, interpreted)
        assert d_simulates(interpreted, abstract)
        assert d_simulates(machine, abstract)  # transitivity, checked directly

    def test_more_processors_more_behaviour(self):
        compiled = compile_source(BOUNDED_CONCRETE)
        interpretation = ProgramInterpretation(compiled)
        one = explore_machine_or_raise(compiled.scheme, interpretation, processors=1)
        many = explore_machine_or_raise(compiled.scheme, interpretation, processors=4)
        assert d_simulates(one, many)
        assert len(one.states) <= len(many.states)

    def test_priority_prefers_youngest(self):
        compiled = compile_source(BOUNDED_CONCRETE)
        interpretation = ProgramInterpretation(compiled)
        semantics = MachineSemantics(compiled.scheme, interpretation, processors=1)
        state = semantics.initial_state
        # after the pcall, the worker (deeper) must be scheduled, not main
        [call] = semantics.successors(state)
        assert call.rule == "call"
        scheduled = semantics.successors(call.target)
        assert len(scheduled) == 1
        assert len(scheduled[0].path) == 2  # the child invocation

    def test_processor_validation(self):
        compiled = compile_source(BOUNDED_CONCRETE)
        with pytest.raises(ValueError):
            MachineSemantics(
                compiled.scheme, ProgramInterpretation(compiled), processors=0
            )
