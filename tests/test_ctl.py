"""CTL model checking over bounded schemes, cross-checked against the
dedicated Section 3 procedures."""

import pytest

from repro.analysis import halts, mutually_exclusive, node_reachable, normed
from repro.analysis.ctl import (
    AF,
    AG,
    AX,
    And,
    Atom,
    EF,
    EG,
    EU,
    EX,
    Implies,
    Not,
    TrueF,
    atom,
    check_ctl,
    node,
    terminated,
    width_at_least,
)
from repro.errors import AnalysisBudgetExceeded
from repro.zoo import (
    ZOO_BOUNDED,
    bounded_spawner,
    diverging_loop,
    mutex_pair,
    nonterminating_choice,
    racing_writers,
    spawner_loop,
    terminating_chain,
)


class TestOperators:
    def test_atoms(self):
        result = check_ctl(terminating_chain(2), node("q0"))
        assert result.holds  # the initial state is at q0

    def test_true(self):
        assert check_ctl(terminating_chain(2), TrueF()).holds

    def test_not(self):
        assert not check_ctl(terminating_chain(2), Not(node("q0"))).holds

    def test_and_or_implies(self):
        scheme = terminating_chain(2)
        assert check_ctl(scheme, node("q0") & EF(node("q1"))).holds
        assert check_ctl(scheme, node("q9") | node("q0")).holds
        assert check_ctl(scheme, Implies(node("q9"), node("q0"))).holds

    def test_ex(self):
        scheme = terminating_chain(2)
        assert check_ctl(scheme, EX(node("q1"))).holds
        assert not check_ctl(scheme, EX(node("q2"))).holds

    def test_ax(self):
        scheme = terminating_chain(2)
        assert check_ctl(scheme, AX(node("q1"))).holds  # deterministic chain

    def test_ef_eg(self):
        assert check_ctl(diverging_loop(), EG(Not(terminated()))).holds
        assert check_ctl(diverging_loop(), EF(node("d1"))).holds

    def test_eu(self):
        scheme = terminating_chain(3)
        until = EU(Not(terminated()), node("q2"))
        assert check_ctl(scheme, until).holds

    def test_af_on_terminal_states(self):
        # AF terminated on a halting scheme
        assert check_ctl(terminating_chain(3), AF(terminated())).holds
        assert not check_ctl(diverging_loop(), AF(terminated())).holds

    def test_eg_convention_on_finite_maximal_paths(self):
        # a terminated state satisfying f keeps EG f (maximal finite run)
        assert check_ctl(terminating_chain(1), EG(TrueF())).holds

    def test_width_atom(self):
        result = check_ctl(bounded_spawner(3), EF(width_at_least(4)))
        assert result.holds  # main + 3 children live simultaneously

    def test_unbounded_scheme_raises(self):
        with pytest.raises(AnalysisBudgetExceeded):
            check_ctl(spawner_loop(), EF(terminated()), max_states=300)

    def test_operator_sugar(self):
        scheme = terminating_chain(2)
        assert check_ctl(scheme, ~node("q1") & (node("q0") | node("q2"))).holds


class TestCrossValidation:
    """CTL formulae vs the dedicated Section 3 procedures."""

    @pytest.mark.parametrize("name,factory", ZOO_BOUNDED)
    def test_ef_node_equals_node_reachability(self, name, factory):
        scheme = factory()
        for node_id in scheme.node_ids:
            via_ctl = check_ctl(scheme, EF(node(node_id))).holds
            direct = node_reachable(scheme, node_id).holds
            assert via_ctl == direct, (name, node_id)

    def test_ag_not_both_equals_mutex(self):
        for scheme, a, b in [
            (mutex_pair(), "m0", "c0"),
            (racing_writers(), "m1", "c0"),
        ]:
            via_ctl = check_ctl(scheme, AG(Not(node(a) & node(b)))).holds
            direct = mutually_exclusive(scheme, a, b).holds
            assert via_ctl == direct

    @pytest.mark.parametrize("name,factory", ZOO_BOUNDED)
    def test_af_terminated_equals_halting(self, name, factory):
        scheme = factory()
        via_ctl = check_ctl(scheme, AF(terminated())).holds
        direct = halts(scheme).holds
        assert via_ctl == direct, name

    @pytest.mark.parametrize("name,factory", ZOO_BOUNDED)
    def test_ag_ef_terminated_equals_normedness(self, name, factory):
        scheme = factory()
        via_ctl = check_ctl(scheme, AG(EF(terminated()))).holds
        direct = normed(scheme).holds
        assert via_ctl == direct, name

    def test_nested_property(self):
        # whenever the choice scheme is at c1 (the loop branch), it can
        # still eventually reach c2's end... actually c1 loops back to c0,
        # from which termination stays possible
        scheme = nonterminating_choice()
        assert check_ctl(scheme, AG(Implies(node("c1"), EF(terminated())))).holds

    def test_result_carries_labelling(self):
        scheme = terminating_chain(2)
        result = check_ctl(scheme, EF(terminated()))
        assert result.states == 4
        assert len(result.satisfying) == 4  # every state can terminate
