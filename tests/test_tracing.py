"""End-to-end distributed tracing (PR 10 tentpole).

The contract under test:

* **TraceContext** — the ``traceparent`` wire format round-trips,
  malformed values are rejected to ``None`` (never an exception), and
  local span ids map into the 64-bit OTLP id space injectively per
  process;
* **per-root trace identity** — every root span mints a fresh trace id
  unless a propagated context supplies one, so one long-lived
  :class:`OtlpJsonSink` exports concurrent queries as distinct traces
  (the PR 8 per-sink-trace-id bug, fixed);
* **coordinator → worker propagation** — a traced ``--workers N``
  exploration produces ONE span tree: worker-side ``parallel.chunk``
  spans are shipped back, re-based into the coordinator's id space and
  re-parented under their ``parallel.window`` span, with zero dangling
  parents and zero duplicate ids;
* **span integrity under supervision** — a seeded worker ``SIGKILL``
  and window replay yield exactly one chunk span per (round, chunk);
  replayed windows never double-report;
* **serve propagation** — a client-side span's context flows through
  ``traceparent`` on ``rpcheck-request/1`` into the daemon's
  ``serve.query`` root span and down into worker chunks: one trace id
  from client to worker;
* **request ids** — minted client-side (and daemon-side for raw
  requests) when omitted, stamped on the query's root span, echoed in
  the response;
* **timeline** — ``rpcheck timeline`` renders the per-worker waterfall
  (text, SVG, JSON) from exactly these spans.
"""

import json
import time
import uuid

import pytest

from repro.analysis import AnalysisSession
from repro.obs import (
    MemorySink,
    OtlpJsonSink,
    Tracer,
    build_tree,
    build_timeline,
    collapse_stacks,
    otlp_span,
    render_timeline_svg,
    render_timeline_text,
    timeline_as_dict,
    worker_rollup,
)
from repro.obs.tracer import TraceContext, trace_context
from repro.robust import ProcessFaultPlan, install_process_faults
from repro.serve import ServeClient, daemon_in_thread
from repro.zoo import FIG1_PROGRAM, mixed_grove, wide_mix

from .test_parallel import WORKERS

EXPLORE_CAP = 3000


def _span_records(sink):
    return [r for r in sink.snapshot() if r.get("type") == "span"]


def _otlp(records):
    """Map tracer records to OTLP spans with a recognisable fallback id."""
    anchor = time.time() - time.perf_counter()
    return [
        otlp_span(r, trace_id="f" * 32, epoch_anchor=anchor) for r in records
    ]


def _assert_one_clean_trace(spans):
    """One trace id, unique span ids, every parent resolves."""
    traces = {s["traceId"] for s in spans}
    assert len(traces) == 1, f"expected one trace, got {sorted(traces)}"
    assert "f" * 32 not in traces, "fallback trace id leaked into records"
    ids = [s["spanId"] for s in spans]
    assert len(ids) == len(set(ids)), "duplicate OTLP span ids"
    known = set(ids)
    dangling = [
        (s["name"], s["parentSpanId"])
        for s in spans
        if s.get("parentSpanId") and s["parentSpanId"] not in known
    ]
    assert not dangling, f"dangling parentSpanIds: {dangling}"


class TestTraceContext:
    def test_traceparent_round_trip(self):
        ctx = TraceContext()
        wire = ctx.to_traceparent()
        parsed = TraceContext.from_traceparent(wire)
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.parent_span is None  # all-zero parent = trace only

    def test_child_names_remote_parent(self):
        ctx = TraceContext()
        child = ctx.child(7)
        assert child.trace_id == ctx.trace_id
        assert child.parent_span == ctx.otlp_span_id(7)
        parsed = TraceContext.from_traceparent(child.to_traceparent())
        assert parsed.parent_span == ctx.otlp_span_id(7)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "not-a-traceparent",
            "00-abc-def-01",
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "00-" + "1" * 32 + "-" + "2" * 16,  # missing flags
        ],
    )
    def test_malformed_is_none_not_an_exception(self, bad):
        assert TraceContext.from_traceparent(bad) is None

    def test_span_base_keeps_small_ids_distinct(self):
        ctx = TraceContext()
        ids = {ctx.otlp_span_id(i) for i in range(1000)}
        assert len(ids) == 1000
        assert all(len(i) == 16 for i in ids)


class TestPerRootTraceIdentity:
    def test_two_root_spans_two_traces(self, tmp_path):
        target = str(tmp_path / "otlp.jsonl")
        sink = OtlpJsonSink(target)
        tracer = Tracer(sink)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        sink.close()
        spans = []
        with open(target, "r", encoding="utf-8") as handle:
            for line in handle:
                request = json.loads(line)
                for rs in request.get("resourceSpans", []):
                    for ss in rs["scopeSpans"]:
                        spans.extend(ss["spans"])
        assert len(spans) == 2
        assert spans[0]["traceId"] != spans[1]["traceId"], (
            "root spans through one sink must be distinct traces"
        )
        assert sink.trace_id not in {s["traceId"] for s in spans}

    def test_children_inherit_the_root_trace(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        spans = _otlp(_span_records(sink))
        _assert_one_clean_trace(spans)

    def test_propagated_context_wins(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        ctx = TraceContext()
        remote_parent = ctx.otlp_span_id(42)
        with trace_context(ctx.child(42)):
            with tracer.span("adopted"):
                pass
        [record] = _span_records(sink)
        assert record["trace"] == ctx.trace_id
        assert record["remote_parent"] == remote_parent
        assert record.get("parent") is None  # still a local root
        [span] = _otlp([record])
        assert span["traceId"] == ctx.trace_id
        assert span["parentSpanId"] == remote_parent

    def test_null_context_is_a_no_op(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with trace_context(None):
            with tracer.span("fresh"):
                pass
        [record] = _span_records(sink)
        assert record["trace"]
        assert "remote_parent" not in record


class TestParallelTraceIntegrity:
    def _traced_explore(self, scheme, workers, plan=None):
        sink = MemorySink()
        session = AnalysisSession(scheme, tracer=Tracer(sink), workers=workers)
        try:
            if plan is not None:
                install_process_faults(session, plan)
            session.explore(EXPLORE_CAP)
        finally:
            session.close()
        return sink

    def test_workers_produce_one_clean_trace(self):
        sink = self._traced_explore(wide_mix(3), WORKERS)
        records = _span_records(sink)
        chunk_spans = [r for r in records if r["name"] == "parallel.chunk"]
        assert chunk_spans, "a traced sharded run must record chunk spans"
        _assert_one_clean_trace(_otlp(records))
        # every chunk span hangs off a window span, windows off explore
        roots = build_tree(records)
        by_name = {}
        for root in roots:
            for node in root.walk():
                by_name.setdefault(node.name, []).append(node)
        for window in by_name.get("parallel.window", []):
            assert all(c.name == "parallel.chunk" for c in window.children)
        for chunk in by_name["parallel.chunk"]:
            assert chunk.attrs.get("worker") is not None
            assert chunk.attrs.get("states")

    def test_chunk_spans_are_unique_per_round_and_chunk(self):
        sink = self._traced_explore(wide_mix(3), WORKERS)
        seen = set()
        for record in _span_records(sink):
            if record["name"] != "parallel.chunk":
                continue
            key = (record["attrs"]["round"], record["attrs"]["chunk"])
            assert key not in seen, f"chunk {key} traced twice"
            seen.add(key)

    def test_sigkill_replay_traces_each_chunk_exactly_once(self):
        plan = ProcessFaultPlan(
            kill_at=((1, 0), (2, 1 % WORKERS)), max_kills=2, immune=0
        )
        sink = self._traced_explore(mixed_grove(3, 3), WORKERS, plan=plan)
        records = _span_records(sink)
        seen = set()
        for record in records:
            if record["name"] != "parallel.chunk":
                continue
            key = (record["attrs"]["round"], record["attrs"]["chunk"])
            assert key not in seen, (
                f"chunk {key} double-traced across a window replay"
            )
            seen.add(key)
        assert seen, "the kills must not have suppressed all chunk tracing"
        _assert_one_clean_trace(_otlp(records))

    def test_parallel_and_sequential_forests_agree_on_procedures(self):
        def shape(node):
            children = tuple(
                shape(c)
                for c in node.children
                if not c.name.startswith("parallel.")
            )
            return (node.name, children)

        shapes = []
        for workers in (1, WORKERS):
            sink = MemorySink()
            session = AnalysisSession(
                wide_mix(3), tracer=Tracer(sink), workers=workers
            )
            try:
                session.explore(EXPLORE_CAP)
            finally:
                session.close()
            roots = build_tree(_span_records(sink))
            shapes.append([shape(root) for root in roots])
        assert shapes[0] == shapes[1], (
            "procedure-level span structure must not depend on sharding"
        )


class TestServePropagation:
    def _streamed_query(self, tmp_path, **query_kwargs):
        sock = str(tmp_path / "rp.sock")
        streamed = []
        client_sink = MemorySink()
        tracer = Tracer(client_sink)
        with daemon_in_thread(sock):
            with ServeClient(sock) as client:
                with tracer.span("client.request"):
                    response = client.query(
                        "boundedness",
                        source=FIG1_PROGRAM,
                        stream=True,
                        on_event=streamed.append,
                        **query_kwargs,
                    )
        server_spans = [r for r in streamed if r.get("type") == "span"]
        return response, _span_records(client_sink), server_spans

    def test_one_trace_spans_client_daemon_and_workers(self, tmp_path):
        response, client_spans, server_spans = self._streamed_query(
            tmp_path, workers=WORKERS
        )
        assert response.ok
        names = {r["name"] for r in server_spans}
        assert {"serve.query", "session.explore", "parallel.window"} <= names
        _assert_one_clean_trace(_otlp(client_spans + server_spans))

    def test_request_id_minted_and_stamped(self, tmp_path):
        response, _, server_spans = self._streamed_query(tmp_path)
        assert response.request_id, "client must mint a request id"
        [query_span] = [r for r in server_spans if r["name"] == "serve.query"]
        assert query_span["attrs"]["request_id"] == response.request_id

    def test_explicit_request_id_is_preserved(self, tmp_path):
        rid = uuid.uuid4().hex
        response, _, server_spans = self._streamed_query(
            tmp_path, request_id=rid
        )
        assert response.request_id == rid
        [query_span] = [r for r in server_spans if r["name"] == "serve.query"]
        assert query_span["attrs"]["request_id"] == rid

    def test_traceparent_echoed_on_response(self, tmp_path):
        response, client_spans, _ = self._streamed_query(tmp_path)
        assert response.traceparent
        parsed = TraceContext.from_traceparent(response.traceparent)
        assert parsed is not None
        [client_root] = client_spans
        assert parsed.trace_id == client_root["trace"]


class TestTimelineAndRollup:
    @pytest.fixture(scope="class")
    def traced_records(self):
        sink = MemorySink()
        session = AnalysisSession(
            wide_mix(3), tracer=Tracer(sink), workers=WORKERS
        )
        try:
            session.explore(EXPLORE_CAP)
        finally:
            session.close()
        return sink.snapshot()

    def test_build_timeline(self, traced_records):
        timeline = build_timeline(traced_records)
        assert timeline.windows
        assert timeline.workers
        total_chunks = sum(len(w.chunks) for w in timeline.windows)
        spans = [
            r
            for r in traced_records
            if r.get("type") == "span" and r["name"] == "parallel.chunk"
        ]
        assert total_chunks == len(spans)
        for window in timeline.windows:
            if window.chunks:
                assert window.critical in window.chunks

    def test_text_and_svg_renderings(self, traced_records):
        timeline = build_timeline(traced_records)
        text = render_timeline_text(timeline)
        assert "critical" in text
        svg = render_timeline_svg(timeline)
        assert svg.startswith("<svg") and "<script" not in svg
        standalone = render_timeline_svg(timeline, standalone=True)
        assert standalone.startswith("<?xml")

    def test_timeline_dict_schema(self, traced_records):
        payload = timeline_as_dict(build_timeline(traced_records))
        assert payload["schema"] == "rpcheck-timeline/1"
        assert payload["windows"]
        json.dumps(payload)  # must be JSON-clean

    def test_worker_rollup_and_flamegraph_frames(self, traced_records):
        spans = [r for r in traced_records if r.get("type") == "span"]
        roots = build_tree(spans)
        rollup = worker_rollup(roots)
        assert rollup, "chunk spans carry worker attrs"
        chunk_count = sum(1 for r in spans if r["name"] == "parallel.chunk")
        assert sum(row["chunks"] for row in rollup.values()) == chunk_count
        stacks = collapse_stacks(roots)
        worker_frames = [l for l in stacks if "parallel.chunk[w" in l]
        assert worker_frames, "flamegraph frames must be worker-qualified"
