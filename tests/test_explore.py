"""Tests for the exploration engine and state graphs."""

import pytest

from repro.analysis.explore import Explorer, StateGraph
from repro.core.hstate import EMPTY, HState
from repro.errors import AnalysisBudgetExceeded
from repro.zoo import (
    bounded_spawner,
    diverging_loop,
    fig2_scheme,
    nonterminating_choice,
    spawner_loop,
    terminating_chain,
)

P = HState.parse


class TestExplorer:
    def test_chain_exact_state_count(self):
        # q0..qn plus ∅
        graph = Explorer(terminating_chain(5)).explore()
        assert graph.complete
        assert len(graph) == 7
        assert graph.terminal_states() == [EMPTY]

    def test_bounded_spawner_saturates(self):
        graph = Explorer(bounded_spawner(2)).explore()
        assert graph.complete
        assert EMPTY in graph

    def test_budget_exhaustion_marks_incomplete(self):
        graph = Explorer(spawner_loop(), max_states=50).explore()
        assert not graph.complete
        assert len(graph) == 50
        assert graph.unexpanded

    def test_explore_or_raise(self):
        with pytest.raises(AnalysisBudgetExceeded):
            Explorer(spawner_loop(), max_states=50).explore_or_raise()

    def test_stop_when_records_witness(self):
        graph = Explorer(terminating_chain(5)).explore(
            stop_when=lambda s: s.contains_node("q3")
        )
        target = graph.find(lambda s: s.contains_node("q3"))
        assert target is not None
        path = graph.path_to(target)
        assert [t.label for t in path] == ["a0", "a1", "a2"]

    def test_stop_when_on_initial(self):
        scheme = terminating_chain(3)
        graph = Explorer(scheme).explore(stop_when=lambda s: True)
        assert len(graph) == 1
        assert not graph.complete

    def test_restrict_to_avoids_expansion(self):
        # restrict to non-empty states: ∅ is discovered but not expanded
        graph = Explorer(terminating_chain(2)).explore(
            restrict_to=lambda s: not s.is_empty()
        )
        assert graph.complete
        assert EMPTY in graph

    def test_path_to_initial_is_empty(self):
        graph = Explorer(terminating_chain(2)).explore()
        assert graph.path_to(graph.initial) == []

    def test_custom_initial_state(self):
        scheme = fig2_scheme()
        graph = Explorer(scheme, max_states=500).explore(initial=P("q5"))
        assert graph.complete
        assert set(graph.states) == {P("q5"), P("q6"), EMPTY}


class TestStateGraph:
    def test_num_transitions(self):
        graph = Explorer(terminating_chain(3)).explore()
        assert graph.num_transitions == 4  # three actions + one end

    def test_successors_recorded(self):
        graph = Explorer(nonterminating_choice()).explore()
        initial_out = graph.successors(graph.initial)
        assert len(initial_out) == 2

    def test_cycle_detection_positive(self):
        graph = Explorer(diverging_loop()).explore()
        assert graph.complete
        assert graph.has_cycle()

    def test_cycle_detection_negative(self):
        graph = Explorer(terminating_chain(4)).explore()
        assert not graph.has_cycle()

    def test_find_lasso_positive(self):
        graph = Explorer(nonterminating_choice()).explore()
        lasso = graph.find_lasso()
        assert lasso is not None
        stem, loop = lasso
        assert loop
        # the loop really cycles
        assert loop[0].source == loop[-1].target
        # the stem really connects the initial state to the loop
        if stem:
            assert stem[0].source == graph.initial
            assert stem[-1].target == loop[0].source
        else:
            assert loop[0].source == graph.initial

    def test_find_lasso_negative(self):
        graph = Explorer(terminating_chain(4)).explore()
        assert graph.find_lasso() is None

    def test_find_all(self):
        graph = Explorer(bounded_spawner(2)).explore()
        with_worker = graph.find_all(lambda s: s.contains_node("c0"))
        assert with_worker
        assert all(s.contains_node("c0") for s in with_worker)

    def test_to_lts(self):
        graph = Explorer(terminating_chain(2)).explore()
        lts = graph.to_lts()
        assert lts.initial == graph.initial
        assert len(lts.states) == len(graph)


class TestDeepGraphs:
    """Regression: traversals must not depend on the recursion limit.

    ``find_lasso`` used to recurse per graph edge and grow
    ``sys.setrecursionlimit`` without bound; these tests pin the
    iterative behaviour on graphs deeper than the interpreter limit.
    """

    def test_find_lasso_on_deep_chain_without_recursion_limit(self, monkeypatch):
        import sys

        depth = sys.getrecursionlimit() * 3
        graph = Explorer(terminating_chain(depth), max_states=depth + 10).explore()
        assert graph.complete and len(graph) == depth + 2

        def forbidden(_limit):
            raise AssertionError("find_lasso must not touch the recursion limit")

        monkeypatch.setattr(sys, "setrecursionlimit", forbidden)
        assert graph.find_lasso() is None

    def test_find_lasso_on_deep_pipeline_prefix(self, monkeypatch):
        import sys

        from repro.analysis.session import AnalysisSession
        from repro.zoo import deep_pipeline

        sess = AnalysisSession(deep_pipeline(4))
        graph = sess.explore(3_000)
        assert not graph.complete  # unbounded family, truncated prefix

        def forbidden(_limit):
            raise AssertionError("find_lasso must not touch the recursion limit")

        monkeypatch.setattr(sys, "setrecursionlimit", forbidden)
        assert graph.find_lasso() is None  # tall acyclic prefix

    def test_find_lasso_split_still_correct_after_rewrite(self):
        graph = Explorer(spawner_loop(), max_states=200).explore()
        lasso = graph.find_lasso()
        assert lasso is not None
        stem, loop = lasso
        assert loop and loop[-1].target == loop[0].source
        for earlier, later in zip(loop, loop[1:]):
            assert earlier.target == later.source
        current = graph.initial
        for step in stem:
            assert step.source == current
            current = step.target
        assert current == loop[0].source


class TestOvershootContract:
    """``AnalysisSession.explore`` may overshoot ``max_states`` by at most
    one expansion batch (the out-degree of the last expanded state)."""

    def test_overshoot_bounded_by_one_batch(self):
        from repro.analysis.session import AnalysisSession

        for cap in (1, 2, 3, 5, 8, 13):
            sess = AnalysisSession(spawner_loop())
            graph = sess.explore(cap)
            max_out_degree = max(
                (len(edges) for edges in graph.edges if edges), default=0
            )
            assert len(graph) >= min(cap, 1)
            assert len(graph) <= cap + max_out_degree

    def test_explore_or_raise_reports_exact_exhaustion_point(self):
        from repro.analysis.session import AnalysisSession

        sess = AnalysisSession(spawner_loop())
        with pytest.raises(AnalysisBudgetExceeded) as info:
            sess.explore_or_raise(10, what="overshoot probe")
        assert f"exactly {len(sess.graph)} discovered states" in str(info.value)
        assert info.value.explored == len(sess.graph)
