"""Tests for the exploration engine and state graphs."""

import pytest

from repro.analysis.explore import Explorer, StateGraph
from repro.core.hstate import EMPTY, HState
from repro.errors import AnalysisBudgetExceeded
from repro.zoo import (
    bounded_spawner,
    diverging_loop,
    fig2_scheme,
    nonterminating_choice,
    spawner_loop,
    terminating_chain,
)

P = HState.parse


class TestExplorer:
    def test_chain_exact_state_count(self):
        # q0..qn plus ∅
        graph = Explorer(terminating_chain(5)).explore()
        assert graph.complete
        assert len(graph) == 7
        assert graph.terminal_states() == [EMPTY]

    def test_bounded_spawner_saturates(self):
        graph = Explorer(bounded_spawner(2)).explore()
        assert graph.complete
        assert EMPTY in graph

    def test_budget_exhaustion_marks_incomplete(self):
        graph = Explorer(spawner_loop(), max_states=50).explore()
        assert not graph.complete
        assert len(graph) == 50
        assert graph.unexpanded

    def test_explore_or_raise(self):
        with pytest.raises(AnalysisBudgetExceeded):
            Explorer(spawner_loop(), max_states=50).explore_or_raise()

    def test_stop_when_records_witness(self):
        graph = Explorer(terminating_chain(5)).explore(
            stop_when=lambda s: s.contains_node("q3")
        )
        target = graph.find(lambda s: s.contains_node("q3"))
        assert target is not None
        path = graph.path_to(target)
        assert [t.label for t in path] == ["a0", "a1", "a2"]

    def test_stop_when_on_initial(self):
        scheme = terminating_chain(3)
        graph = Explorer(scheme).explore(stop_when=lambda s: True)
        assert len(graph) == 1
        assert not graph.complete

    def test_restrict_to_avoids_expansion(self):
        # restrict to non-empty states: ∅ is discovered but not expanded
        graph = Explorer(terminating_chain(2)).explore(
            restrict_to=lambda s: not s.is_empty()
        )
        assert graph.complete
        assert EMPTY in graph

    def test_path_to_initial_is_empty(self):
        graph = Explorer(terminating_chain(2)).explore()
        assert graph.path_to(graph.initial) == []

    def test_custom_initial_state(self):
        scheme = fig2_scheme()
        graph = Explorer(scheme, max_states=500).explore(initial=P("q5"))
        assert graph.complete
        assert set(graph.states) == {P("q5"), P("q6"), EMPTY}


class TestStateGraph:
    def test_num_transitions(self):
        graph = Explorer(terminating_chain(3)).explore()
        assert graph.num_transitions == 4  # three actions + one end

    def test_successors_recorded(self):
        graph = Explorer(nonterminating_choice()).explore()
        initial_out = graph.successors(graph.initial)
        assert len(initial_out) == 2

    def test_cycle_detection_positive(self):
        graph = Explorer(diverging_loop()).explore()
        assert graph.complete
        assert graph.has_cycle()

    def test_cycle_detection_negative(self):
        graph = Explorer(terminating_chain(4)).explore()
        assert not graph.has_cycle()

    def test_find_lasso_positive(self):
        graph = Explorer(nonterminating_choice()).explore()
        lasso = graph.find_lasso()
        assert lasso is not None
        stem, loop = lasso
        assert loop
        # the loop really cycles
        assert loop[0].source == loop[-1].target
        # the stem really connects the initial state to the loop
        if stem:
            assert stem[0].source == graph.initial
            assert stem[-1].target == loop[0].source
        else:
            assert loop[0].source == graph.initial

    def test_find_lasso_negative(self):
        graph = Explorer(terminating_chain(4)).explore()
        assert graph.find_lasso() is None

    def test_find_all(self):
        graph = Explorer(bounded_spawner(2)).explore()
        with_worker = graph.find_all(lambda s: s.contains_node("c0"))
        assert with_worker
        assert all(s.contains_node("c0") for s in with_worker)

    def test_to_lts(self):
        graph = Explorer(terminating_chain(2)).explore()
        lts = graph.to_lts()
        assert lts.initial == graph.initial
        assert len(lts.states) == len(graph)
