"""Propositions 13–17: correctness and completeness transfers between
M_G and M_I_G, with the steering constructions machine-checked."""

import pytest

from repro.analysis import (
    boundedness,
    halts,
    mutually_exclusive,
    node_reachable,
    persistent,
)
from repro.analysis.explore import Explorer
from repro.core.semantics import AbstractSemantics
from repro.errors import ExecutionError, InterpretationError
from repro.interp import (
    InterpretedExplorer,
    StepCounter,
    TrivialInterpretation,
    mimic_pump_forever,
    mimic_run,
    pump_steering_interpretation,
    steering_interpretation,
)
from repro.zoo import (
    bounded_spawner,
    deep_recursion,
    fig2_scheme,
    racing_writers,
    spawner_loop,
    terminating_chain,
)


class TestStepCounter:
    def test_saturating(self):
        counter = StepCounter(0, prefix=2)
        assert counter.tick().value == 1
        assert counter.tick().tick().value == 2
        assert counter.tick().tick().tick().value == 2  # saturated

    def test_cyclic(self):
        counter = StepCounter(0, prefix=1, period=2)
        values = []
        for _ in range(6):
            values.append(counter.value)
            counter = counter.tick()
        assert values == [0, 1, 2, 1, 2, 1]


class TestMimicry:
    """The core of every completeness proof: finite I realising a run."""

    def test_mimic_node_reachability_witness(self):
        # Prop 13 completeness: q reachable in M_G ⟹ finite I reaching q
        scheme = fig2_scheme()
        for node in ("q5", "q11", "q9"):
            witness = node_reachable(scheme, node).certificate
            interp = steering_interpretation(witness.transitions)
            assert interp.is_finite()
            run = mimic_run(scheme, witness.transitions, interp)
            assert run[-1].target.forget().contains_node(node)

    def test_mimic_mutual_exclusion_witness(self):
        # Prop 15 completeness: co-occurrence realised by a finite I
        scheme = racing_writers()
        witness = mutually_exclusive(scheme, "m1", "c0").certificate
        run = mimic_run(scheme, witness.transitions)
        assert run[-1].target.forget().contains_all_nodes(["m1", "c0"])

    def test_mimic_termination_witness(self):
        # Prop 17 completeness: a non-halting M_G run steered into M_I
        scheme = terminating_chain(3)
        graph = Explorer(scheme).explore()
        path = graph.path_to(graph.find(lambda s: s.is_empty()))
        run = mimic_run(scheme, path)
        assert run[-1].target.is_terminated()

    def test_mimicked_run_projects_exactly(self):
        scheme = fig2_scheme()
        witness = node_reachable(scheme, "q12").certificate
        run = mimic_run(scheme, witness.transitions)
        for abstract, concrete in zip(witness.transitions, run):
            assert concrete.label == abstract.label
            assert concrete.target.forget() == abstract.target

    def test_mimic_rejects_foreign_run(self):
        scheme = fig2_scheme()
        other = terminating_chain(2)
        witness = node_reachable(other, "q2").certificate
        with pytest.raises(ExecutionError):
            mimic_run(scheme, witness.transitions)


class TestPumpTransfer:
    """Prop 16 completeness: M_G unbounded ⟹ finite I with M_I unbounded."""

    @pytest.mark.parametrize("factory", [spawner_loop, deep_recursion, fig2_scheme])
    def test_pump_steering_grows_forever(self, factory):
        scheme = factory()
        cert = boundedness(scheme, max_states=20_000).certificate
        sizes = []
        for rounds in (1, 3, 5):
            final = mimic_pump_forever(
                scheme, cert.prefix, cert.pump, iterations=rounds
            )
            sizes.append(final.state.size)
        assert sizes[0] < sizes[1] < sizes[2]

    def test_pump_interpretation_is_finite(self):
        scheme = spawner_loop()
        cert = boundedness(scheme).certificate
        interp = pump_steering_interpretation(cert.prefix, cert.pump)
        assert interp.is_finite()

    def test_empty_pump_rejected(self):
        with pytest.raises(InterpretationError):
            pump_steering_interpretation([], [])


class TestCorrectnessDirection:
    """The correctness halves: abstract verdicts constrain every M_I."""

    def test_unreachable_node_unreachable_in_interpretations(self):
        # Prop 13 correctness on a bounded scheme with an orphan node
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.test("q0", "b", then="q1", orelse="q1")
        b.end("q1")
        b.end("orphan")
        scheme = b.build(root="q0")
        assert not node_reachable(scheme, "orphan").holds
        for branches in ({"b": True}, {"b": False}):
            lts = InterpretedExplorer(
                scheme, TrivialInterpretation(branches=branches)
            ).explore_or_raise()
            assert all(not g.forget().contains_node("orphan") for g in lts.states)

    def test_exclusion_holds_in_interpretations(self):
        # Prop 15 correctness: M_G-exclusive nodes exclusive in every M_I
        from repro.zoo import mutex_pair

        scheme = mutex_pair()
        assert mutually_exclusive(scheme, "m0", "c0").holds
        lts = InterpretedExplorer(scheme, TrivialInterpretation()).explore_or_raise()
        assert all(
            not g.forget().contains_all_nodes(["m0", "c0"]) for g in lts.states
        )

    def test_boundedness_transfers_with_finite_memories(self):
        # Prop 16 correctness: bounded M_G + finite I ⟹ bounded M_I
        scheme = bounded_spawner(2)
        assert boundedness(scheme).holds
        lts = InterpretedExplorer(scheme, TrivialInterpretation()).explore_or_raise()
        assert len(lts.states) < 10_000  # saturated, hence finite

    def test_halting_transfers(self):
        # Prop 17 correctness: M_G halts ⟹ M_I halts (checked: no cycle)
        from repro.lts import lts_terminates

        scheme = bounded_spawner(2)
        assert halts(scheme).holds
        lts = InterpretedExplorer(scheme, TrivialInterpretation()).explore_or_raise()
        assert lts_terminates(lts)

    def test_persistence_transfers(self):
        # Prop 14 correctness: persistent in M_G ⟹ persistent in M_I
        from repro.zoo import wait_blocked

        scheme = wait_blocked()
        assert persistent(scheme, ["m0", "m1"]).holds
        lts = InterpretedExplorer(scheme, TrivialInterpretation()).explore_or_raise()
        assert all(
            g.forget().contains_any_node(["m0", "m1"]) for g in lts.states
        )
