"""Theorem 9: counter machines, the RP encoding, Turing power."""

import pytest

from repro.analysis import node_reachable
from repro.errors import AnalysisBudgetExceeded
from repro.interp import InterpretedSemantics
from repro.minsky import (
    HALT,
    CounterMachine,
    DecJz,
    Inc,
    MinskyError,
    adder_machine,
    busy_loop_machine,
    doubler_machine,
    encode,
    simulate_via_rp,
    zero_test_machine,
)


class TestCounterMachines:
    def test_adder(self):
        assert adder_machine().run({"a": 3, "b": 4}) == {"a": 0, "b": 7}

    def test_doubler(self):
        assert doubler_machine().run({"a": 3}) == {"a": 0, "b": 6}

    def test_zero_test(self):
        machine = zero_test_machine()
        assert machine.run({"a": 0}) == {"a": 0, "flag": 1}
        assert machine.run({"a": 2}) == {"a": 1, "flag": 0}

    def test_divergence_returns_none(self):
        assert busy_loop_machine().run(max_steps=500) is None

    def test_trace(self):
        trace = adder_machine().trace({"a": 1, "b": 0})
        assert trace[0] == ("l0", {"a": 1, "b": 0})
        assert trace[-1][0] == HALT

    def test_validation_unknown_target(self):
        with pytest.raises(MinskyError):
            CounterMachine({"l0": Inc("a", "nowhere")}, initial_location="l0")

    def test_validation_reserved_halt(self):
        with pytest.raises(MinskyError):
            CounterMachine({HALT: Inc("a", HALT)}, initial_location=HALT)

    def test_validation_unknown_counter(self):
        with pytest.raises(MinskyError):
            CounterMachine(
                {"l0": Inc("a", HALT)}, initial_location="l0", counters=("b",)
            )

    def test_validation_initial_location(self):
        with pytest.raises(MinskyError):
            CounterMachine({"l0": Inc("a", HALT)}, initial_location="lX")


class TestEncoding:
    def test_scheme_shape(self):
        encoded = encode(adder_machine())
        scheme = encoded.scheme
        # one manager and one unit procedure per counter, plus main
        assert "manager_a" in scheme.procedures
        assert "unit_a_proc" in scheme.procedures
        assert "manager_b" in scheme.procedures
        assert encoded.halt_node in scheme.node_ids

    def test_interpretation_is_finite(self):
        assert encode(adder_machine()).interpretation.is_finite()

    def test_counter_readout_on_initial_state(self):
        encoded = encode(adder_machine(), {"a": 0, "b": 0})
        semantics = InterpretedSemantics(encoded.scheme, encoded.interpretation)
        assert encoded.counter_value(semantics.initial_state) == {"a": 0, "b": 0}

    @pytest.mark.parametrize(
        "initial,expected",
        [
            ({"a": 0, "b": 0}, {"a": 0, "b": 0}),
            ({"a": 1, "b": 0}, {"a": 0, "b": 1}),
            ({"a": 2, "b": 1}, {"a": 0, "b": 3}),
        ],
    )
    def test_adder_via_rp(self, initial, expected):
        assert simulate_via_rp(adder_machine(), initial, max_states=400_000) == expected

    def test_doubler_via_rp(self):
        result = simulate_via_rp(doubler_machine(), {"a": 2}, max_states=400_000)
        assert result == {"a": 0, "b": 4}

    def test_zero_test_via_rp_zero_branch(self):
        result = simulate_via_rp(zero_test_machine(), {"a": 0}, max_states=200_000)
        assert result == {"a": 0, "flag": 1}

    def test_zero_test_via_rp_nonzero_branch(self):
        result = simulate_via_rp(zero_test_machine(), {"a": 1}, max_states=200_000)
        assert result == {"a": 0, "flag": 0}

    def test_agreement_with_direct_simulation(self):
        for initial in ({"a": 0, "b": 2}, {"a": 3, "b": 0}):
            direct = adder_machine().run(dict(initial))
            via_rp = simulate_via_rp(adder_machine(), initial, max_states=400_000)
            assert via_rp == direct

    def test_divergent_machine_never_halts_via_rp(self):
        # the busy loop keeps pumping; halt must be unreachable; the
        # bounded exploration raises on budget instead of lying
        with pytest.raises(AnalysisBudgetExceeded):
            simulate_via_rp(busy_loop_machine(), max_states=400)

    def test_halt_node_reachability_matches_halting(self):
        # halting machine: the halt node is reachable in the *abstract*
        # scheme too (the abstract model over-approximates)
        encoded = encode(adder_machine(), {"a": 1, "b": 0})
        verdict = node_reachable(encoded.scheme, encoded.halt_node, max_states=20_000)
        assert verdict.holds
