"""Petri net substrate tests and the RP-vs-PN comparison material."""

import pytest

from repro.petri import (
    OMEGA,
    PetriError,
    PetriNet,
    anbncn_completed_words,
    anbncn_net,
    backward_coverable,
    coverability_tree,
    coverable,
    is_bounded,
    marking_of,
    nested_anbn_scheme,
    scheme_terminated_words,
    token_counting_abstraction,
    unbounded_places,
)
from repro.zoo import fig2_scheme, sigma1, spawner_loop


def simple_producer() -> PetriNet:
    """One producer place feeding an unbounded buffer."""
    return PetriNet(
        places=["producer", "buffer"],
        transitions=[
            {"name": "make", "pre": {"producer": 1}, "post": {"producer": 1, "buffer": 1}},
            {"name": "take", "pre": {"buffer": 1}, "post": {}},
        ],
        initial={"producer": 1},
    )


def bounded_cycle() -> PetriNet:
    """A token circulating between two places."""
    return PetriNet(
        places=["p", "q"],
        transitions=[
            {"name": "go", "pre": {"p": 1}, "post": {"q": 1}},
            {"name": "back", "pre": {"q": 1}, "post": {"p": 1}},
        ],
        initial={"p": 1},
    )


class TestNetBasics:
    def test_firing(self):
        net = bounded_cycle()
        [t] = net.enabled(net.initial)
        assert t.name == "go"
        after = net.fire(net.initial, t)
        assert net.tokens(after, "q") == 1

    def test_fire_disabled_rejected(self):
        net = bounded_cycle()
        go, back = net.transitions
        with pytest.raises(PetriError):
            net.fire(net.initial, back)

    def test_unknown_place_rejected(self):
        with pytest.raises(PetriError):
            PetriNet(places=["p"], transitions=[], initial={"ghost": 1})

    def test_duplicate_places_rejected(self):
        with pytest.raises(PetriError):
            PetriNet(places=["p", "p"], transitions=[], initial={})

    def test_reachable_markings_bounded(self):
        assert len(bounded_cycle().reachable_markings()) == 2

    def test_reachable_markings_budget(self):
        assert simple_producer().reachable_markings(max_markings=20) is None

    def test_to_lts(self):
        lts = bounded_cycle().to_lts()
        assert len(lts.states) == 2
        assert lts.num_transitions == 2

    def test_traces(self):
        traces = bounded_cycle().traces(3)
        assert ("go", "back", "go") in traces
        assert ("back",) not in traces


class TestKarpMiller:
    def test_bounded_net(self):
        assert is_bounded(bounded_cycle())
        assert unbounded_places(bounded_cycle()) == []

    def test_unbounded_net(self):
        assert not is_bounded(simple_producer())
        assert unbounded_places(simple_producer()) == ["buffer"]

    def test_tree_has_omega_for_producer(self):
        tree = coverability_tree(simple_producer())
        found = False
        stack = [tree]
        while stack:
            node = stack.pop()
            if OMEGA in node.marking:
                found = True
            stack.extend(node.children)
        assert found

    def test_coverable(self):
        net = simple_producer()
        assert coverable(net, net.marking(buffer=5))
        assert not coverable(net, net.marking(producer=2))

    def test_coverable_bounded(self):
        net = bounded_cycle()
        assert coverable(net, net.marking(q=1))
        assert not coverable(net, net.marking(p=1, q=1))


class TestBackwardCoverability:
    @pytest.mark.parametrize("factory", [simple_producer, bounded_cycle])
    def test_agrees_with_karp_miller(self, factory):
        net = factory()
        targets = [
            net.marking(**{net.places[0]: 1}),
            net.marking(**{net.places[0]: 2}),
            net.marking(**{net.places[1]: 3}),
            net.marking(**{net.places[0]: 1, net.places[1]: 1}),
        ]
        for target in targets:
            assert backward_coverable(net, [target]) == coverable(net, target)

    def test_anbncn_coverability(self):
        net = anbncn_net()
        assert backward_coverable(net, [net.marking(count_ab=3)])
        assert not backward_coverable(net, [net.marking(phase_a=1, phase_b=1)])


class TestComparisonMaterial:
    def test_anbncn_language(self):
        words = anbncn_completed_words(anbncn_net(), max_length=9)
        expected = {
            tuple("a" * n + "b" * n + "c" * n) for n in range(4)
        }
        assert words == expected

    def test_nested_anbn_language(self):
        words = scheme_terminated_words(nested_anbn_scheme(), max_length=8)
        assert words == {
            tuple("a" * n + "b" * n) for n in range(1, 5)
        }

    def test_counting_abstraction_simulates(self):
        # every scheme transition maps to an enabled net transition on the
        # corresponding marking
        from repro.core.semantics import AbstractSemantics

        scheme = fig2_scheme()
        net = token_counting_abstraction(scheme)
        semantics = AbstractSemantics(scheme)
        state = sigma1()
        marking = marking_of(scheme, net, state)
        for transition in semantics.successors(state):
            target_marking = marking_of(scheme, net, transition.target)
            assert any(
                net.fire(marking, t) == target_marking
                for t in net.enabled(marking)
            ), transition

    def test_counting_abstraction_overapproximates_wait(self):
        # the net lets a blocked wait fire; the scheme does not
        from repro.core.semantics import AbstractSemantics
        from repro.core.hstate import HState

        scheme = fig2_scheme()
        net = token_counting_abstraction(scheme)
        blocked = HState.parse("q4,{q7}")  # wait with a live child
        semantics = AbstractSemantics(scheme)
        scheme_moves = {t.node for t in semantics.successors(blocked)}
        assert "q4" not in scheme_moves
        marking = marking_of(scheme, net, blocked)
        net_moves = {t.name for t in net.enabled(marking)}
        assert "q4:wait" in net_moves

    def test_abstraction_of_spawner_is_unbounded_net(self):
        net = token_counting_abstraction(spawner_loop())
        assert not is_bounded(net)


class TestBPPEmbedding:
    """Communication-free nets (BPP) embed into RP schemes."""

    def test_is_communication_free(self):
        from repro.petri.bpp import is_communication_free

        assert is_communication_free(simple_producer())
        assert is_communication_free(bounded_cycle())
        assert not is_communication_free(anbncn_net())

    def test_synchronising_net_rejected(self):
        from repro.petri.bpp import bpp_net_to_scheme

        with pytest.raises(PetriError):
            bpp_net_to_scheme(anbncn_net())

    def test_cycle_net_traces_match(self):
        from repro.petri.bpp import traces_match

        assert traces_match(bounded_cycle(), max_length=5)

    def test_producer_net_traces_match(self):
        from repro.petri.bpp import traces_match

        assert traces_match(simple_producer(), max_length=4)

    def test_forking_net_traces_match(self):
        from repro.petri.bpp import traces_match

        net = PetriNet(
            places=["root", "left", "right"],
            transitions=[
                {"name": "split", "pre": {"root": 1},
                 "post": {"left": 1, "right": 1}},
                {"name": "lwork", "pre": {"left": 1}, "post": {}},
                {"name": "rwork", "pre": {"right": 1}, "post": {"right": 1}},
            ],
            initial={"root": 1},
        )
        assert traces_match(net, max_length=4)

    def test_empty_marking(self):
        from repro.petri.bpp import bpp_net_to_scheme, scheme_bpp_traces

        net = PetriNet(
            places=["p"],
            transitions=[{"name": "t", "pre": {"p": 1}, "post": {}}],
            initial={},
        )
        scheme = bpp_net_to_scheme(net)
        assert scheme_bpp_traces(scheme, 3) == frozenset({()})

    def test_scheme_structure(self):
        from repro.core.scheme import NodeKind
        from repro.petri.bpp import bpp_net_to_scheme

        scheme = bpp_net_to_scheme(bounded_cycle())
        # one procedure per place, registered in the metadata
        assert "proc_p" in scheme.procedures
        assert "proc_q" in scheme.procedures
        assert scheme.nodes_of_kind(NodeKind.WAIT) == ()
