"""Tests for the extension modules: normedness, LTS minimisation, scheme
optimisation, serialisation, races, the random generator."""

import pytest

from repro.analysis import (
    normed,
    race_report,
    state_is_normed,
    variable_writers,
)
from repro.analysis.explore import Explorer
from repro.core import (
    HState,
    isomorphic,
    random_scheme,
    random_schemes,
    scheme_from_json,
    scheme_to_json,
    hstate_from_json,
    hstate_to_json,
)
from repro.errors import AnalysisBudgetExceeded, SchemeError, StateError
from repro.lang import compile_source, optimize
from repro.lts import (
    LTS,
    d_simulates,
    lts_terminates,
    minimised_size,
    quotient,
    strongly_bisimilar,
    weakly_simulates,
)
from repro.zoo import (
    bounded_spawner,
    diverging_loop,
    fig2_scheme,
    nonterminating_choice,
    terminating_chain,
    wait_blocked,
)


class TestNormedness:
    def test_terminating_scheme_is_normed(self):
        verdict = normed(terminating_chain(3))
        assert verdict.holds and verdict.exact

    def test_diverging_loop_not_normed(self):
        verdict = normed(diverging_loop())
        assert not verdict.holds

    def test_choice_is_normed(self):
        # every state of the choice scheme can still reach ∅
        assert normed(nonterminating_choice()).holds

    def test_blocked_wait_not_normed(self):
        # the parent can never pass its wait: ∅ unreachable from σ0
        verdict = normed(wait_blocked())
        assert not verdict.holds
        witness = verdict.certificate
        # the witness path ends at a state that provably cannot terminate
        final = witness.final if len(witness) else wait_blocked().initial_state()
        assert not state_is_normed(wait_blocked(), final).holds

    def test_state_is_normed(self):
        scheme = nonterminating_choice()
        assert state_is_normed(scheme, HState.leaf("c0")).holds
        assert state_is_normed(scheme, HState.leaf("c1")).holds

    def test_budget_raises(self):
        from repro.zoo import spawner_loop

        with pytest.raises(AnalysisBudgetExceeded):
            normed(spawner_loop(), max_states=50)

    def test_normedness_incompatible_with_d_simulation(self):
        # the paper's remark: normedness is NOT ⊑_d-compatible.
        # concrete P: a then a visible loop forever (never terminates,
        # no τ-divergence); abstract P': a then choice(loop, stop).
        concrete = LTS(initial=0)
        concrete.add_transition(0, "a", 1)
        concrete.add_transition(1, "b", 1)
        abstract = LTS(initial="x")
        abstract.add_transition("x", "a", "y")
        abstract.add_transition("y", "b", "y")
        abstract.add_transition("y", "stop", "z")
        assert d_simulates(concrete, abstract)

        def lts_normed(lts):
            return all(
                _can_deadlock(lts, state) for state in lts.reachable_states()
            )

        assert lts_normed(abstract)
        assert not lts_normed(concrete)  # compatibility would forbid this


def _can_deadlock(lts, state):
    seen = {state}
    stack = [state]
    while stack:
        current = stack.pop()
        successors = lts.successors(current)
        if not successors:
            return True
        for _, target in successors:
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return False


class TestMinimisation:
    def test_quotient_of_duplicate_branches(self):
        lts = LTS(initial=0)
        lts.add_transition(0, "a", 1)
        lts.add_transition(0, "a", 2)
        lts.add_transition(1, "b", 3)
        lts.add_transition(2, "b", 4)
        small, mapping = quotient(lts)
        assert len(small.states) == 3  # {0}, {1,2}, {3,4}
        assert mapping[1] == mapping[2]
        assert strongly_bisimilar(lts, small)

    def test_quotient_preserves_behaviour_on_scheme_fragments(self):
        graph = Explorer(bounded_spawner(3)).explore()
        lts = graph.to_lts()
        small, _ = quotient(lts)
        assert len(small.states) <= len(lts.states)
        assert strongly_bisimilar(lts, small)

    def test_minimised_size(self):
        lts = LTS(initial=0)
        lts.add_transition(0, "a", 1)
        lts.add_transition(1, "a", 0)
        assert minimised_size(lts) == 1  # both states are bisimilar

    def test_distinct_states_not_merged(self):
        lts = LTS(initial=0)
        lts.add_transition(0, "a", 1)
        lts.add_transition(1, "b", 2)
        assert minimised_size(lts) == 3


class TestOptimizer:
    def test_dead_node_elimination(self):
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.action("q0", "a", "q1")
        b.end("q1")
        b.end("orphan")
        report = optimize(b.build(root="q0"))
        assert report.removed_dead == 1
        assert "orphan" not in report.scheme

    def test_congruent_merge(self):
        # two identical diamond arms collapse
        compiled = compile_source(
            "program main { if b then { a1; } else { a1; } end; }"
        )
        report = optimize(compiled.scheme)
        assert report.merged >= 1
        # the test node now has both branches to the same representative
        test_node = report.scheme.node(report.scheme.root)
        assert test_node.successors[0] == test_node.successors[1]

    def test_optimized_scheme_bisimilar(self):
        compiled = compile_source(
            "program main { if b then { a1; a2; } else { a1; a2; } end; }"
        )
        report = optimize(compiled.scheme)
        assert report.changed
        before = Explorer(compiled.scheme).explore().to_lts()
        after = Explorer(report.scheme).explore().to_lts()
        assert strongly_bisimilar(before, after)

    def test_fixpoint_on_minimal_scheme(self):
        report = optimize(terminating_chain(3))
        assert not report.changed
        assert isomorphic(report.scheme, terminating_chain(3))

    def test_recursive_scheme_preserved(self):
        report = optimize(fig2_scheme())
        before = Explorer(fig2_scheme(), max_states=400).explore()
        after = Explorer(report.scheme, max_states=400).explore()
        # both explorations cut at the same budget; compare bounded traces
        from repro.pa.translate import scheme_weak_traces

        assert scheme_weak_traces(fig2_scheme(), 4) == scheme_weak_traces(
            report.scheme, 4
        )


class TestSerialization:
    def test_scheme_roundtrip(self):
        scheme = fig2_scheme()
        again = scheme_from_json(scheme_to_json(scheme))
        assert isomorphic(scheme, again)
        assert again.procedures == scheme.procedures
        assert again.root == scheme.root

    def test_scheme_bad_json(self):
        with pytest.raises(SchemeError):
            scheme_from_json("{not json")

    def test_scheme_bad_format(self):
        with pytest.raises(SchemeError):
            scheme_from_json('{"format": 99}')

    def test_scheme_malformed_nodes(self):
        with pytest.raises(SchemeError):
            scheme_from_json('{"format": 1, "root": "q0", "nodes": [{"id": "q0"}]}')

    def test_hstate_roundtrip(self):
        state = HState.parse("q1,{q9,{q11},q12,{q10}}")
        assert hstate_from_json(hstate_to_json(state)) == state

    def test_hstate_bad_json(self):
        with pytest.raises(StateError):
            hstate_from_json("nope[")


class TestRaces:
    RACY = """
    global shared := 0;
    global safe := 0;
    program main {
        safe := 1;
        pcall w;
        shared := shared + 1;
        wait;
        safe := 2;
        end;
    }
    procedure w { shared := shared * 2; end; }
    """

    def test_variable_writers(self):
        compiled = compile_source(self.RACY)
        writers = variable_writers(compiled)
        assert set(writers) == {"shared", "safe"}
        assert len(writers["shared"]) == 2
        assert len(writers["safe"]) == 2

    def test_race_report(self):
        compiled = compile_source(self.RACY)
        report = race_report(compiled)
        assert not report.is_safe
        conflicting = {variable for variable, _ in report.conflicts()}
        assert conflicting == {"shared"}

    def test_safe_variable(self):
        compiled = compile_source(self.RACY)
        report = race_report(compiled, variables=["safe"])
        assert report.is_safe

    def test_self_conflict_detected(self):
        source = """
        global hits := 0;
        program main { pcall w; pcall w; wait; end; }
        procedure w { hits := hits + 1; end; }
        """
        report = race_report(compile_source(source))
        [(variable, pair)] = report.conflicts()
        assert variable == "hits"
        assert pair[0] == pair[1]  # the self pair


class TestRandomGenerator:
    def test_deterministic(self):
        assert isomorphic(random_scheme(5), random_scheme(5))

    def test_different_seeds_differ_somewhere(self):
        schemes = random_schemes(10, base_seed=100)
        assert len({len(s) for s in schemes} | {s.root for s in schemes}) > 1

    def test_all_valid_with_reachable_root_region(self):
        for scheme in random_schemes(20, base_seed=3):
            # validation passed at construction; the root region must at
            # least contain an end node (every procedure ends in one)
            reachable = scheme.graph_reachable_nodes()
            from repro.core.scheme import NodeKind

            assert any(
                scheme.node(node).kind is NodeKind.END for node in reachable
            )

    def test_wait_free_knob(self):
        from repro.core.scheme import NodeKind

        for scheme in random_schemes(10, base_seed=7, allow_wait=False):
            assert scheme.is_wait_free


class TestAnalyzeSummary:
    def test_bounded_scheme_report(self):
        from repro.analysis import analyze

        report = analyze(terminating_chain(3))
        assert report.conclusive
        assert report.bounded.holds
        assert report.halting.holds
        assert report.normedness.holds
        assert report.unreachable_nodes == ()
        assert report.basis is not None
        text = report.render()
        assert "boundedness" in text and "yes" in text

    def test_unbounded_scheme_report(self):
        from repro.analysis import analyze
        from repro.zoo import spawner_loop

        report = analyze(spawner_loop(), max_states=1_200)
        assert report.bounded is not None
        assert not report.bounded.holds
        assert not report.halting.holds
        # normedness of the spawner: every state can drain → exact or
        # inconclusive; the report must not crash either way
        report.render()

    def test_inconclusive_fields_render(self):
        from repro.analysis import analyze
        from repro.zoo import deep_recursion

        report = analyze(deep_recursion(), max_states=60)
        text = report.render()
        assert "inconclusive" in text or report.conclusive is True
