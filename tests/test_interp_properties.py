"""Property-based tests for the interpreted layer (IState, VarStore,
projection invariants) and additional memory-model checks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hstate import HState
from repro.interp import (
    IState,
    InterpretedSemantics,
    TrivialInterpretation,
    UNIT,
    VarStore,
)
from repro.zoo import fig2_scheme

NODES = ["q0", "q1", "q7", "q9"]


def var_stores():
    return st.dictionaries(
        st.sampled_from(["x", "y", "z"]), st.integers(-5, 5), max_size=3
    ).map(VarStore)


def istates(max_leaves: int = 5):
    return st.recursive(
        st.just(IState.empty()),
        lambda children: st.builds(
            lambda items: IState(items),
            st.lists(
                st.tuples(st.sampled_from(NODES), var_stores(), children),
                max_size=max_leaves,
            ),
        ),
        max_leaves=max_leaves,
    )


class TestVarStoreProperties:
    @given(var_stores(), st.sampled_from(["x", "y"]), st.integers(-5, 5))
    @settings(max_examples=50, deadline=None)
    def test_set_then_get(self, store, name, value):
        assert store.set(name, value)[name] == value

    @given(var_stores(), st.sampled_from(["x", "y"]), st.integers(-5, 5))
    @settings(max_examples=50, deadline=None)
    def test_set_preserves_others(self, store, name, value):
        updated = store.set(name, value)
        for key in store:
            if key != name:
                assert updated[key] == store[key]

    @given(var_stores())
    @settings(max_examples=50, deadline=None)
    def test_hash_equals_on_equal(self, store):
        clone = VarStore(dict(store))
        assert clone == store and hash(clone) == hash(store)


class TestIStateProperties:
    @given(istates(), istates())
    @settings(max_examples=40, deadline=None)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(istates())
    @settings(max_examples=40, deadline=None)
    def test_forget_drops_memories_only(self, state):
        forgotten = state.forget()
        assert forgotten.size == state.size

    @given(istates())
    @settings(max_examples=40, deadline=None)
    def test_positions_cover_all(self, state):
        assert len(list(state.positions())) == state.size

    @given(istates(), istates())
    @settings(max_examples=40, deadline=None)
    def test_forget_is_homomorphic(self, a, b):
        assert (a + b).forget() == a.forget() + b.forget()

    @given(istates())
    @settings(max_examples=40, deadline=None)
    def test_replace_identity(self, state):
        for path, node, memory, children in state.positions():
            rebuilt = state.replace(path, ((node, memory, children),))
            assert rebuilt == state
            break  # one position suffices per example


class TestProjectionInvariant:
    def test_every_interpreted_step_projects(self):
        scheme = fig2_scheme()
        semantics = InterpretedSemantics(
            scheme, TrivialInterpretation(branches={"b1": True, "b2": True})
        )
        from repro.core.semantics import AbstractSemantics

        abstract = AbstractSemantics(scheme)
        state = semantics.initial_state
        for _ in range(60):
            successors = semantics.successors(state)
            if not successors:
                break
            step = successors[0]
            projected_targets = [
                (t.label, t.target) for t in abstract.successors(state.forget())
            ]
            assert (step.label, step.target.forget()) in projected_targets
            state = step.target

    def test_deterministic_interpretation_has_at_most_one_step_per_token(self):
        scheme = fig2_scheme()
        semantics = InterpretedSemantics(scheme, TrivialInterpretation())
        state = semantics.initial_state
        for _ in range(30):
            successors = semantics.successors(state)
            if not successors:
                break
            paths = [t.path for t in successors]
            assert len(paths) == len(set(paths))  # one transition per token
            state = successors[0].target
