"""Self-healing supervision under process-level chaos.

The supervision contract under test:

* **chaos differential gate** — with seeded ``SIGKILL``\\ s of chosen
  workers at chosen windows (:class:`~repro.robust.ProcessFaultPlan`),
  every decision procedure still returns *exactly* the sequential
  verdict on *exactly* the sequential graph: recovery replays the lost
  window against the coordinator's authoritative frontier, so a worker
  death is invisible in the results;
* **recovery accounting** — respawns land in
  ``parallel.worker_restarts`` / ``parallel.windows_replayed`` and in
  ``session._worker_restarts``; a hung-but-alive worker trips the
  per-window heartbeat and recovers the same way;
* **bounded degradation** — past ``max_worker_restarts`` the session
  reaps its pool and finishes the *same* query sequentially
  (``parallel.degraded``), never failing it;
* **serve resilience** — the daemon sheds load with a structured
  ``overloaded`` + ``retry_after`` (unix socket and HTTP 429) instead
  of queueing unboundedly, answers ``GET /v1/health``, reaps stuck
  pools via the per-query watchdog, and the client retries idempotent
  queries through overload and daemon restarts.

Worker kills are real ``SIGKILL``\\ s of real processes; seeds follow
``RP_CHAOS_SEEDS`` like the rest of the chaos matrix.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request
import uuid

import pytest

from repro.analysis import AnalysisSession
from repro.analysis.parallel import DEFAULT_MAX_WORKER_RESTARTS
from repro.api import AnalysisRequest, execute
from repro.obs import scheme_fingerprint
from repro.robust import ProcessFaultPlan, install_process_faults
from repro.serve import ServeClient, ServeOverloaded, daemon_in_thread
from repro.zoo import mixed_grove, wide_mix

from .test_parallel import WORKERS, _outcome
from .test_robustness import CHAOS_SEEDS, FAMILIES, PROCEDURES


def _chaos_outcome(scheme, procedure, plan):
    """Like :func:`test_parallel._outcome`, but with seeded worker kills."""
    session = AnalysisSession(scheme, workers=WORKERS)
    try:
        install_process_faults(session, plan)
        try:
            verdict = PROCEDURES[procedure](scheme, session, None)
            outcome = ("verdict", verdict.holds, getattr(verdict, "method", None))
        except Exception as exc:  # AnalysisBudgetExceeded keeps parity shape
            outcome = ("inconclusive", getattr(exc, "explored", None), None)
        return (
            outcome,
            [state.to_notation() for state in session.graph.states],
            session._worker_restarts,
        )
    finally:
        session.close()


class TestChaosDifferentialGate:
    """Seeded worker SIGKILLs never change a verdict or a graph."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("procedure", sorted(PROCEDURES))
    def test_kills_are_invisible_in_results(self, family, procedure, seed):
        plan = ProcessFaultPlan(
            seed=seed,
            kill_at=((1, seed % WORKERS), (2, (seed + 1) % WORKERS)),
            max_kills=2,
            immune=0,
        )
        sequential, seq_states = _outcome(FAMILIES[family](), procedure, 1)
        recovered, rec_states, restarts = _chaos_outcome(
            FAMILIES[family](), procedure, plan
        )
        assert recovered == sequential, (
            f"{procedure} on {family} (seed {seed}): recovery drifted after "
            f"{restarts} restart(s): {recovered!r} != {sequential!r}"
        )
        assert rec_states == seq_states, (
            f"{procedure} on {family} (seed {seed}): recovered graph "
            f"diverged ({len(rec_states)} vs {len(seq_states)} states)"
        )


class TestRecovery:
    """Respawn-and-replay is byte-identical and fully accounted for."""

    def _sequential_reference(self, cap):
        seq = AnalysisSession(wide_mix(3))
        graph = seq.explore(cap)
        return seq, graph

    def test_single_kill_recovers_byte_identically(self):
        seq, g1 = self._sequential_reference(5000)
        par = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            pool = install_process_faults(
                par, ProcessFaultPlan(kill_at=((2, 0),), max_kills=1, immune=0)
            )
            g2 = par.explore(5000)
            assert pool.chaos_kills == 1, "the planned kill must actually fire"
            assert [s.to_notation() for s in g1.states] == [
                s.to_notation() for s in g2.states
            ]
            for out1, out2 in zip(g1.edges, g2.edges):
                assert [
                    (t.label, t.target.to_notation(), t.rule) for t in out1
                ] == [(t.label, t.target.to_notation(), t.rule) for t in out2]
            assert seq.stats.states_expanded == par.stats.states_expanded
            assert seq.stats.peak_frontier == par.stats.peak_frontier
            assert par._worker_restarts == 1
            snapshot = par.metrics.as_dict()
            assert snapshot["parallel.worker_restarts"]["value"] == 1
            assert snapshot["parallel.windows_replayed"]["value"] >= 1
        finally:
            par.close()

    def test_pinned_double_kill_and_checkpoint_parity(self, tmp_path):
        seq = AnalysisSession(wide_mix(3))
        seq.explore(1500)
        par = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            install_process_faults(
                par,
                ProcessFaultPlan(
                    kill_at=((1, 0), (2, 1)), max_kills=2, immune=0
                ),
            )
            par.explore(1500)
            assert par._worker_restarts == 2
            assert [s.to_notation() for s in seq.graph.states] == [
                s.to_notation() for s in par.graph.states
            ]
            # a mid-run checkpoint taken after recovery resumes onto the
            # exact graph an undisturbed run would reach
            from repro.robust import load_checkpoint, restore_session, save_checkpoint

            path = tmp_path / "recovered.json"
            save_checkpoint(par.checkpoint(), str(path))
            resumed = restore_session(load_checkpoint(str(path)))
            resumed.explore(5000)
            ref = AnalysisSession(wide_mix(3))
            ref.explore(5000)
            assert [s.to_notation() for s in resumed.graph.states] == [
                s.to_notation() for s in ref.graph.states
            ]
        finally:
            par.close()

    def test_degrades_to_sequential_past_restart_budget(self):
        assert DEFAULT_MAX_WORKER_RESTARTS >= 1
        seq, g1 = self._sequential_reference(5000)
        par = AnalysisSession(
            wide_mix(3), workers=WORKERS, max_worker_restarts=0
        )
        try:
            install_process_faults(
                par, ProcessFaultPlan(kill_at=((2, 0),), max_kills=1, immune=0)
            )
            g2 = par.explore(5000)  # must not raise: the query still finishes
            assert [s.to_notation() for s in g1.states] == [
                s.to_notation() for s in g2.states
            ]
            assert par._parallel_degraded is True
            assert par._pool is None, "degrading reaps the surviving workers"
            snapshot = par.metrics.as_dict()
            assert snapshot["parallel.degraded"]["value"] == 1
            # explicitly resetting workers re-arms parallelism
            par.workers = WORKERS
            assert par._parallel_degraded is False
        finally:
            par.close()

    def test_hung_worker_trips_heartbeat_and_recovers(self):
        seq, g1 = self._sequential_reference(2000)
        par = AnalysisSession(wide_mix(3), workers=WORKERS)
        try:
            pool = par._ensure_pool()
            pool.heartbeat = 0.5
            os.kill(pool.workers[0].process.pid, signal.SIGSTOP)
            g2 = par.explore(2000)
            assert par._worker_restarts >= 1
            assert [s.to_notation() for s in g1.states] == [
                s.to_notation() for s in g2.states
            ]
        finally:
            par.close()

    def test_invalid_restart_budgets_rejected(self):
        from repro.errors import AnalysisError

        for bad in (-1, True, 1.5, "3"):
            with pytest.raises(AnalysisError):
                AnalysisSession(wide_mix(2), max_worker_restarts=bad)

    def test_install_requires_parallel_session(self):
        session = AnalysisSession(wide_mix(2))
        with pytest.raises(ValueError):
            install_process_faults(session, ProcessFaultPlan(kill_rate=1.0))


OCCUPIER_CAP = 30000  # boundedness on mixed_grove(3, 3): seconds, not ms


def _occupy(client, box):
    """Run the long occupier query; stash the response/exception in *box*."""
    try:
        box["response"] = client.query(
            "boundedness",
            fingerprint=box["fingerprint"],
            max_states=OCCUPIER_CAP,
        )
    except Exception as exc:  # noqa: BLE001 - surfaced by the test body
        box["error"] = exc


def _wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestServeResilience:
    """Load shedding, retry, health, watchdog, reconnect."""

    def _daemon_dir(self):
        tmp = f"/tmp/rpp-{uuid.uuid4().hex[:8]}"
        os.makedirs(tmp, exist_ok=True)
        return tmp, os.path.join(tmp, "s.sock")

    def test_overload_sheds_structured_and_retry_succeeds(self):
        tmp, sock = self._daemon_dir()
        grove = mixed_grove(3, 3)
        quick = wide_mix(3)
        with daemon_in_thread(
            sock, flight_dir=tmp, concurrency=1, max_queue=0
        ) as daemon:
            daemon.pool.adopt(grove)
            daemon.pool.adopt(quick)
            box = {"fingerprint": scheme_fingerprint(grove)}
            occupier = ServeClient(sock, timeout=300.0)
            thread = threading.Thread(target=_occupy, args=(occupier, box))
            thread.start()
            try:
                assert _wait_until(lambda: daemon._pending >= 1)
                # no retry budget: the shed surfaces as ServeOverloaded
                with ServeClient(sock, max_retries=0) as impatient:
                    with pytest.raises(ServeOverloaded) as shed:
                        impatient.query(
                            "halts",
                            fingerprint=scheme_fingerprint(quick),
                            max_states=400,
                        )
                assert shed.value.retry_after > 0
                assert daemon.shed >= 1
                # a patient client rides retry_after/backoff to the verdict
                with ServeClient(
                    sock, max_retries=60, backoff=0.2, backoff_max=2.0
                ) as patient:
                    response = patient.query(
                        "halts",
                        fingerprint=scheme_fingerprint(quick),
                        max_states=400,
                    )
                    assert response.ok
                    assert patient.retries >= 1
            finally:
                thread.join(timeout=300.0)
                occupier.close()
            assert not thread.is_alive()
            assert "error" not in box, f"occupier failed: {box.get('error')!r}"
            # the accepted query was never disturbed by the shed traffic
            local = execute(
                AnalysisRequest(
                    procedure="boundedness",
                    fingerprint=box["fingerprint"],
                    params={"max_states": OCCUPIER_CAP},
                ),
                scheme=grove,
                session=AnalysisSession(grove),
            )
            assert box["response"].comparable() == local.comparable()

    def test_health_endpoint_reports_readiness(self):
        tmp, sock = self._daemon_dir()
        grove = mixed_grove(3, 3)
        with daemon_in_thread(
            sock, flight_dir=tmp, http_port=0, concurrency=1, max_queue=0
        ) as daemon:
            daemon.pool.adopt(grove)
            base = f"http://127.0.0.1:{daemon.bound_http_port}"
            payload = json.loads(
                urllib.request.urlopen(f"{base}/v1/health", timeout=10).read()
            )
            assert payload["live"] is True and payload["ready"] is True
            box = {"fingerprint": scheme_fingerprint(grove)}
            occupier = ServeClient(sock, timeout=300.0)
            thread = threading.Thread(target=_occupy, args=(occupier, box))
            thread.start()
            try:
                assert _wait_until(lambda: daemon._pending >= 1)
                try:
                    urllib.request.urlopen(f"{base}/v1/health", timeout=10)
                    pytest.fail("saturated daemon must answer 503")
                except urllib.error.HTTPError as error:
                    assert error.code == 503
                    busy = json.loads(error.read())
                    assert busy["live"] is True and busy["ready"] is False
                # HTTP analyze sheds with 429 + structured retry hint
                request = urllib.request.Request(
                    f"{base}/v1/analyze",
                    data=json.dumps(
                        {
                            "schema": "rpcheck-request/1",
                            "procedure": "halts",
                            "fingerprint": box["fingerprint"],
                            "params": {"max_states": 400},
                        }
                    ).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                try:
                    urllib.request.urlopen(request, timeout=10)
                    pytest.fail("saturated daemon must answer 429")
                except urllib.error.HTTPError as error:
                    assert error.code == 429
                    body = json.loads(error.read())
                    assert body["error"] == "overloaded"
                    assert body["retry_after"] > 0
            finally:
                thread.join(timeout=300.0)
                occupier.close()
            assert "error" not in box, f"occupier failed: {box.get('error')!r}"

    def test_client_reconnects_across_daemon_restart(self):
        tmp, sock = self._daemon_dir()
        quick = wide_mix(3)
        fingerprint = scheme_fingerprint(quick)
        client = None
        try:
            with daemon_in_thread(sock, flight_dir=tmp) as daemon:
                daemon.pool.adopt(quick)
                client = ServeClient(sock, max_retries=60, backoff=0.1)
                first = client.query(
                    "halts", fingerprint=fingerprint, max_states=400
                )
                assert first.ok
            # daemon gone; the held connection is now dead
            with daemon_in_thread(sock, flight_dir=tmp) as daemon:
                daemon.pool.adopt(quick)
                second = client.query(
                    "halts", fingerprint=fingerprint, max_states=400
                )
                assert second.ok
                assert client.retries >= 1
                assert second.comparable() == first.comparable()
        finally:
            if client is not None:
                client.close()

    def test_watchdog_reaps_stuck_parallel_query(self):
        tmp, sock = self._daemon_dir()
        grove = mixed_grove(3, 3)
        fingerprint = scheme_fingerprint(grove)
        with daemon_in_thread(
            sock, flight_dir=tmp, query_timeout=1.0
        ) as daemon:
            daemon.pool.adopt(grove)
            with ServeClient(sock, timeout=300.0) as client:
                started = time.monotonic()
                response = client.query(
                    "boundedness",
                    fingerprint=fingerprint,
                    workers=WORKERS,
                    max_states=OCCUPIER_CAP,
                )
                elapsed = time.monotonic() - started
            assert response.verdict == "unknown"
            assert response.partial is not None
            assert response.partial["resource"] == "cancelled"
            assert elapsed < 30.0, "watchdog must cut the query short"
            assert daemon.watchdog_reaped == 1
            entry = daemon.pool.get(fingerprint)
            assert entry is not None
            assert entry.session._pool is None, "stuck pool must be reaped"
