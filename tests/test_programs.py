"""Acceptance tests: every catalogued program's recorded expectations are
re-derived from scratch."""

import pytest

from repro.analysis import boundedness, halts
from repro.errors import AnalysisBudgetExceeded
from repro.interp import (
    ProgramInterpretation,
    first_scheduler,
    random_scheduler,
    run_program,
)
from repro.lang import compile_source
from repro.lang.lint import lint
from repro.programs import CATALOGUE, entry

IDS = [e.name for e in CATALOGUE]


@pytest.fixture(params=CATALOGUE, ids=IDS)
def catalogued(request):
    compiled = compile_source(request.param.source)
    return request.param, compiled


class TestCatalogue:
    def test_compiles(self, catalogued):
        spec, compiled = catalogued
        assert len(compiled.scheme) > 0

    def test_boundedness_expectation(self, catalogued):
        spec, compiled = catalogued
        if spec.bounded is None:
            pytest.skip("no expectation recorded")
        try:
            verdict = boundedness(compiled.scheme, max_states=30_000)
        except AnalysisBudgetExceeded:
            pytest.fail(f"{spec.name}: boundedness inconclusive")
        assert verdict.holds == spec.bounded, spec.name

    def test_halting_expectation(self, catalogued):
        spec, compiled = catalogued
        if spec.halting is None:
            pytest.skip("no expectation recorded")
        verdict = halts(compiled.scheme, max_states=30_000)
        assert verdict.holds == spec.halting, spec.name

    def test_deterministic_memory(self, catalogued):
        spec, compiled = catalogued
        if spec.deterministic_memory is None:
            pytest.skip("no deterministic outcome recorded")
        for scheduler in (first_scheduler, random_scheduler(11)):
            memory, _ = run_program(compiled, scheduler=scheduler)
            for name, expected in spec.deterministic_memory.items():
                assert memory[name] == expected, (spec.name, name)

    def test_expected_lints(self, catalogued):
        spec, compiled = catalogued
        found = {w.code for w in lint(compiled.program, compiled.scheme)}
        for code in spec.lint_codes:
            assert code in found, (spec.name, code)


class TestLookup:
    def test_entry(self):
        assert entry("fan_out_sum").bounded is True

    def test_unknown(self):
        with pytest.raises(KeyError):
            entry("nope")

    def test_names_unique(self):
        names = [e.name for e in CATALOGUE]
        assert len(names) == len(set(names))
