"""Tests for the :mod:`repro.api` typed request/response facade (PR 6).

The facade is the single evaluation path shared by the CLI, the serve
daemon and library callers, so these tests pin the contract everything
else leans on: versioned JSON round-trips for both dataclasses,
structural validation errors, the uniform verdict mapping (conclusive /
battery / partial / exhaustion / error), the ledger side-channel, and
the ``comparable()`` view the serve differential gate is built on.
"""

import dataclasses
import json

import pytest

from repro.analysis import AnalysisSession, boundedness
from repro.api import (
    PROCEDURES,
    REQUEST_SCHEMA,
    RESPONSE_SCHEMA,
    AnalysisRequest,
    AnalysisResponse,
    ApiError,
    BudgetSpec,
    TraceOptions,
    execute,
)
from repro.obs import Ledger, scheme_fingerprint
from repro.robust import Budget
from repro.zoo import FIG1_PROGRAM, mixed_grove, terminating_chain


class TestRequestRoundTrip:
    def test_minimal_request_round_trips(self):
        request = AnalysisRequest(procedure="boundedness", source=FIG1_PROGRAM)
        payload = request.to_json_dict()
        assert payload["schema"] == REQUEST_SCHEMA
        # the wire shape must be plain JSON
        restored = AnalysisRequest.from_json_dict(json.loads(json.dumps(payload)))
        assert restored == request

    def test_full_request_round_trips(self):
        request = AnalysisRequest(
            procedure="mutually_exclusive",
            fingerprint="sha256:0123456789abcdef",
            params={"first": "q1", "second": "q2", "max_states": 500},
            budget=BudgetSpec(deadline=2.5, max_states=10_000, max_memory_mib=64),
            trace=TraceOptions(stream=True, stats=False),
            request_id="req-42",
        )
        restored = AnalysisRequest.from_json_dict(request.to_json_dict())
        assert restored == request
        assert restored.budget.max_memory_mib == 64

    def test_budget_spec_builds_live_budget(self):
        budget = BudgetSpec(deadline=3.0, max_memory_mib=1).to_budget()
        assert budget.deadline == 3.0
        assert budget.max_memory_bytes == 1024 * 1024
        assert budget.on_exhaust == "partial"

    def test_frozen(self):
        request = AnalysisRequest(procedure="halts", source=FIG1_PROGRAM)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.procedure = "normed"


class TestRequestValidation:
    def test_unknown_procedure_rejected(self):
        with pytest.raises(ApiError, match="unknown procedure"):
            AnalysisRequest(procedure="frobnicate", source="x").validate()

    def test_source_xor_fingerprint(self):
        with pytest.raises(ApiError, match="source or a fingerprint"):
            AnalysisRequest(procedure="halts").validate()
        with pytest.raises(ApiError, match="not both"):
            AnalysisRequest(
                procedure="halts", source="x", fingerprint="sha256:ff"
            ).validate()

    def test_wrong_schema_tag_rejected(self):
        payload = AnalysisRequest(procedure="halts", source="x").to_json_dict()
        payload["schema"] = "rpcheck-request/999"
        with pytest.raises(ApiError, match="schema"):
            AnalysisRequest.from_json_dict(payload)

    def test_unknown_budget_keys_rejected(self):
        with pytest.raises(ApiError, match="unknown keys"):
            BudgetSpec.from_dict({"deadline": 1, "cores": 4})


class TestResponseRoundTrip:
    def test_response_round_trips(self):
        response = execute(
            AnalysisRequest(procedure="boundedness", source=FIG1_PROGRAM)
        )
        assert response.to_json_dict()["schema"] == RESPONSE_SCHEMA
        restored = AnalysisResponse.from_json_dict(
            json.loads(json.dumps(response.to_json_dict(), default=repr))
        )
        assert restored.comparable() == response.comparable()
        assert restored.run_id == response.run_id


class TestExecute:
    def test_conclusive_single_verdict(self):
        response = execute(
            AnalysisRequest(procedure="boundedness", source=FIG1_PROGRAM)
        )
        assert response.ok
        assert response.verdict == "no"
        assert response.holds is False
        assert response.procedures["boundedness"]["verdict"] == "no"
        assert response.scheme["fingerprint"].startswith("sha256:")

    def test_matches_direct_procedure_call(self):
        scheme = terminating_chain(5)
        direct = boundedness(scheme)
        response = execute(
            AnalysisRequest(
                procedure="boundedness",
                fingerprint=scheme_fingerprint(scheme),
            ),
            scheme=scheme,
        )
        assert response.verdict == ("yes" if direct.holds else "no")
        assert response.method == direct.method

    def test_battery_report(self):
        response = execute(
            AnalysisRequest(procedure="analyze", source=FIG1_PROGRAM)
        )
        assert response.verdict in ("conclusive", "inconclusive")
        assert set(response.procedures) == {
            "boundedness", "halting", "normedness",
        }
        assert "render" in response.details

    def test_partial_structure_over_budget(self):
        scheme = mixed_grove(3, 3)
        response = execute(
            AnalysisRequest(
                procedure="boundedness",
                fingerprint=scheme_fingerprint(scheme),
                budget=BudgetSpec(deadline=0.0),
            ),
            scheme=scheme,
        )
        assert response.verdict == "unknown"
        assert response.partial["resource"] == "deadline"
        assert response.partial["resumable"] is True
        assert response.procedures["boundedness"]["verdict"] == "partial"

    def test_budget_override_wins_over_spec(self):
        scheme = terminating_chain(5)
        response = execute(
            AnalysisRequest(
                procedure="boundedness",
                fingerprint=scheme_fingerprint(scheme),
                budget=BudgetSpec(deadline=0.0),
            ),
            scheme=scheme,
            budget=Budget(max_states=10_000, on_exhaust="partial"),
        )
        # the caller-built budget (no deadline) replaced the spec
        assert response.verdict in ("yes", "no")

    def test_missing_required_param_is_error_response(self):
        response = execute(
            AnalysisRequest(procedure="node_reachable", source=FIG1_PROGRAM)
        )
        assert response.verdict == "error"
        assert response.error["type"] == "ApiError"
        assert "node" in response.error["message"]

    def test_unknown_param_is_error_response(self):
        response = execute(
            AnalysisRequest(
                procedure="halts",
                source=FIG1_PROGRAM,
                params={"warp_factor": 9},
            )
        )
        assert response.verdict == "error"
        assert response.error["type"] == "TypeError"

    def test_parse_error_is_error_response(self):
        response = execute(
            AnalysisRequest(procedure="halts", source="proc { this is not rp")
        )
        assert response.verdict == "error"
        assert response.ok is False

    def test_fingerprint_without_scheme_is_error(self):
        response = execute(
            AnalysisRequest(procedure="halts", fingerprint="sha256:00ff")
        )
        assert response.verdict == "error"

    def test_session_reuse(self):
        scheme = terminating_chain(6)
        session = AnalysisSession(scheme)
        request = AnalysisRequest(
            procedure="halts", fingerprint=scheme_fingerprint(scheme)
        )
        first = execute(request, scheme=scheme, session=session)
        explored = len(session.graph)
        second = execute(request, scheme=scheme, session=session)
        assert first.comparable() == second.comparable()
        assert len(session.graph) == explored  # warm: no re-exploration

    def test_ledger_records_query(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        response = execute(
            AnalysisRequest(
                procedure="boundedness",
                source=FIG1_PROGRAM,
                request_id="req-7",
            ),
            ledger=ledger,
            ledger_kind="serve",
        )
        entries = ledger.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["kind"] == "serve"
        assert entry["run_id"] == response.run_id
        assert entry["procedures"]["boundedness"]["verdict"] == "no"
        assert entry["extra"]["request_id"] == "req-7"
        assert entry["scheme"]["fingerprint"] == response.scheme["fingerprint"]

    def test_registry_covers_documented_procedures(self):
        assert {
            "analyze", "boundedness", "halts", "may_terminate", "normed",
            "node_reachable", "mutually_exclusive", "sup_reachability",
            "persistent",
        } <= set(PROCEDURES)


class TestComparable:
    def test_comparable_drops_run_variant_fields(self):
        request = AnalysisRequest(procedure="boundedness", source=FIG1_PROGRAM)
        first = execute(request)
        second = execute(request)
        assert first.run_id != second.run_id
        assert first.comparable() == second.comparable()

    def test_comparable_keeps_partial_structure(self):
        scheme = mixed_grove(3, 3)
        response = execute(
            AnalysisRequest(
                procedure="boundedness",
                fingerprint=scheme_fingerprint(scheme),
                budget=BudgetSpec(deadline=0.0),
            ),
            scheme=scheme,
        )
        view = response.comparable()
        assert view["partial"] == {"resource": "deadline", "resumable": True}
        # progress counters legitimately vary and must be absent
        assert "states_explored" not in view["partial"]
