"""Coverage of smaller surfaces: nondeterministic actions, reprs, the
error hierarchy, DOT output details."""

import pytest

from repro.core.alphabet import TAU, Alphabet
from repro.core.dot import hstate_to_dot, scheme_to_dot
from repro.core.hstate import HState
from repro.core.scheme import Node, NodeKind, RPScheme
from repro.core.semantics import AbstractSemantics
from repro.errors import (
    AnalysisBudgetExceeded,
    AnalysisError,
    ExecutionError,
    InterpretationError,
    LanguageError,
    LexError,
    NotationError,
    ParseError,
    RPError,
    SchemeError,
    SemanticError,
    StateError,
)
from repro.zoo import fig2_scheme, sigma1


class TestNondeterministicActions:
    """ACTION nodes may carry several successors (abstract nondeterminism
    beyond tests); the semantics must fan out with the same label."""

    def scheme(self):
        return RPScheme(
            [
                Node("q0", NodeKind.ACTION, label="a", successors=("q1", "q2")),
                Node("q1", NodeKind.END),
                Node("q2", NodeKind.END),
            ],
            root="q0",
        )

    def test_two_branches_same_label(self):
        semantics = AbstractSemantics(self.scheme())
        transitions = semantics.successors(HState.leaf("q0"))
        assert len(transitions) == 2
        assert {t.label for t in transitions} == {"a"}
        assert {t.branch for t in transitions} == {0, 1}

    def test_descriptors_distinguish_branches(self):
        semantics = AbstractSemantics(self.scheme())
        [t0] = semantics.matching(HState.leaf("q0"), ("q0", "action", 0))
        [t1] = semantics.matching(HState.leaf("q0"), ("q0", "action", 1))
        assert t0.target != t1.target


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            SchemeError,
            StateError,
            NotationError,
            LanguageError,
            SemanticError,
            AnalysisError,
            AnalysisBudgetExceeded,
            InterpretationError,
            ExecutionError,
        ],
    )
    def test_all_derive_from_rperror(self, error_type):
        assert issubclass(error_type, RPError)

    def test_notation_is_state_error(self):
        assert issubclass(NotationError, StateError)

    def test_positioned_errors(self):
        error = LexError("bad", 3, 7)
        assert (error.line, error.column) == (3, 7)
        assert "3:7" in str(error)
        error = ParseError("bad", 1, 2)
        assert "1:2" in str(error)

    def test_budget_carries_count(self):
        error = AnalysisBudgetExceeded("out of budget", explored=42)
        assert error.explored == 42


class TestReprs:
    def test_alphabet_repr(self):
        assert "a1" in repr(Alphabet(["a1"]))

    def test_node_repr(self):
        node = Node("q1", NodeKind.PCALL, successors=("q2",), invoked="q7")
        text = repr(node)
        assert "q1" in text and "invokes=q7" in text

    def test_node_equality_and_hash(self):
        a = Node("q1", NodeKind.ACTION, label="x", successors=("q2",))
        b = Node("q1", NodeKind.ACTION, label="x", successors=("q2",))
        assert a == b and hash(a) == hash(b)
        c = Node("q1", NodeKind.ACTION, label="y", successors=("q2",))
        assert a != c

    def test_scheme_repr(self):
        assert "fig2" in repr(fig2_scheme())

    def test_transition_repr(self):
        semantics = AbstractSemantics(fig2_scheme())
        [t] = [x for x in semantics.successors(HState.leaf("q0"))]
        assert "a1" in repr(t)

    def test_hstate_repr_parses_back(self):
        state = sigma1()
        assert eval(repr(state), {"HState": HState}) == state


class TestDotDetails:
    def test_scheme_dot_shapes(self):
        text = scheme_to_dot(fig2_scheme())
        for shape in ("box", "ellipse", "pentagon", "triangle", "doublecircle"):
            assert shape in text

    def test_init_arrow(self):
        assert 'init -> "q0"' in scheme_to_dot(fig2_scheme())

    def test_test_edges_labelled(self):
        text = scheme_to_dot(fig2_scheme())
        assert '[label="then"]' in text and '[label="else"]' in text

    def test_invocation_edges_dashed(self):
        assert "style=dashed" in scheme_to_dot(fig2_scheme())

    def test_marking_highlights(self):
        text = scheme_to_dot(fig2_scheme(), marking=sigma1())
        assert "fillcolor" in text

    def test_hstate_dot_token_edges(self):
        text = hstate_to_dot(sigma1())
        assert "->" in text and "style=dotted" in text


class TestTauConventions:
    def test_tau_is_not_visible(self):
        from repro.core.alphabet import is_silent, is_visible

        assert is_silent(TAU)
        assert not is_visible(TAU)
        assert is_visible("a1")

    def test_structural_rules_are_silent(self):
        semantics = AbstractSemantics(fig2_scheme())
        for state_text, expected_rule in [("q1", "call"), ("q4", "wait"), ("q6", "end")]:
            transitions = semantics.successors(HState.parse(state_text))
            assert transitions[0].rule == expected_rule
            assert transitions[0].label == TAU
