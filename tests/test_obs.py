"""Tests for ``repro.obs`` — tracing, metrics, sinks, report — and for
the instrumentation threaded through the analysis engine.

Covers the PR's observability acceptance surface:

* span nesting / timing monotonicity and the contextvars current-span;
* JSONL round-trip (``JsonlSink`` → ``load_records`` → ``build_tree``);
* label-cardinality cap and registry type discipline;
* ``peak_frontier`` single-source-of-truth regression;
* ``RunProfile`` byte-compatible golden equality on the registry backend;
* differential: tracing/metrics never change verdicts;
* the ``rpcheck --trace/--metrics`` flags and ``report`` subcommand.
"""

import json

import pytest

from repro.analysis import boundedness, halts, node_reachable
from repro.analysis.session import AnalysisSession
from repro.errors import AnalysisBudgetExceeded
from repro.obs import (
    DEFAULT_LABEL_CARDINALITY,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NOOP_SPAN,
    NullSink,
    Tracer,
    build_tree,
    current_span,
    hot_spans,
    load_records,
    render_report,
)
from repro.zoo import ZOO_ALL, fig2_scheme


# ----------------------------------------------------------------------
# Tracer / spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_and_close_order(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        records = sink.spans()
        # children close (and emit) before parents
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["parent"] == records[1]["id"]
        assert records[1]["parent"] is None
        assert records[1]["attrs"] == {"kind": "test"}

    def test_timing_monotonicity(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        inner, outer = sink.spans()
        assert inner["wall"] >= 0.0 and outer["wall"] >= 0.0
        assert inner["cpu"] >= 0.0 and outer["cpu"] >= 0.0
        assert inner["wall"] <= outer["wall"]
        assert inner["start"] >= outer["start"]

    def test_current_span_tracking(self):
        tracer = Tracer(MemorySink())
        assert current_span() is None
        with tracer.span("a") as a:
            assert current_span() is a
            with tracer.span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_disabled_tracer_returns_noop_singleton(self):
        tracer = Tracer()  # no sink -> NullSink -> disabled
        assert not tracer.enabled
        assert tracer.span("anything", x=1) is NOOP_SPAN
        assert tracer.span("other") is NOOP_SPAN
        with tracer.span("nested") as span:
            assert span is NOOP_SPAN
            assert span.set(k="v") is NOOP_SPAN
            assert current_span() is None  # no contextvar traffic

    def test_null_sink_is_disabled(self):
        assert not NullSink().enabled
        assert not Tracer(NullSink()).enabled

    def test_exception_annotates_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        [record] = sink.spans()
        assert record["attrs"]["error"] == "RuntimeError"

    def test_events_attach_to_current_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("phase") as span:
            tracer.event("tick", n=1)
        [event] = sink.events()
        assert event["span"] == span.span_id
        assert event["attrs"] == {"n": 1}

    def test_set_attaches_result_attrs(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("phase") as span:
            span.set(outcome="done", count=3)
        [record] = sink.spans()
        assert record["attrs"] == {"outcome": "done", "count": 3}


# ----------------------------------------------------------------------
# JSONL round-trip / report
# ----------------------------------------------------------------------


class TestJsonlRoundTrip:
    def _trace_to(self, path):
        sink = JsonlSink(str(path))
        tracer = Tracer(sink)
        with tracer.span("root", program="test"):
            with tracer.span("child-a"):
                tracer.event("progress", states=5)
            with tracer.span("child-b"):
                pass
        tracer.close()

    def test_round_trip_rebuilds_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._trace_to(path)
        records = load_records(str(path))
        assert all(isinstance(r, dict) and "type" in r for r in records)
        roots = build_tree(records)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert root.attrs == {"program": "test"}
        [event] = root.children[0].events
        assert event["name"] == "progress"

    def test_self_time_accounting(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._trace_to(path)
        [root] = build_tree(load_records(str(path)))
        total_self = sum(node.self_wall for node in root.walk())
        # single-rooted tree: self times reproduce the root's wall time
        assert total_self == pytest.approx(root.wall, rel=1e-6)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"span","id":1,"name":"x","start":0}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_records(str(path))

    def test_non_record_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="line 1"):
            load_records(str(path))

    def test_unserialisable_attrs_degrade_to_repr(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer(sink)
        with tracer.span("phase", payload=object()):
            pass
        tracer.close()
        [record] = load_records(str(path))
        assert "object object" in record["attrs"]["payload"]

    def test_hot_spans_ranked_by_self_time(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._trace_to(path)
        roots = build_tree(load_records(str(path)))
        ranked = hot_spans(roots, top=2)
        assert len(ranked) == 2
        assert ranked[0].self_wall >= ranked[1].self_wall

    def test_render_report(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._trace_to(path)
        text = render_report(load_records(str(path)))
        assert "root" in text
        assert "child-a" in text
        assert "self" in text


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "a counter")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_total_snapshot(self):
        counter = MetricsRegistry().counter("c")
        counter.set_total(10)
        counter.set_total(10)
        counter.set_total(12)
        with pytest.raises(ValueError, match="backwards"):
            counter.set_total(5)

    def test_gauge_extremes(self):
        gauge = MetricsRegistry().gauge("g")
        assert gauge.value is None
        for sample in (3, 7, 2):
            gauge.set(sample)
        assert gauge.value == 2
        assert gauge.max == 7
        assert gauge.min == 2

    def test_histogram_summary(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.mean is None
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 6.0
        assert hist.mean == 2.0
        assert hist.min == 1.0 and hist.max == 3.0

    def test_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert registry.counter("x") is counter
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_labelled_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries")
        counter.labels(procedure="boundedness").inc(2)
        counter.labels(procedure="halts").inc()
        # same label set -> same child, order-insensitive keys
        assert (
            counter.labels(procedure="boundedness")
            is counter.labels(**{"procedure": "boundedness"})
        )
        snapshot = counter.as_dict()
        assert snapshot["labels"]["{procedure=boundedness}"]["value"] == 2
        assert snapshot["labels"]["{procedure=halts}"]["value"] == 1

    def test_cardinality_cap_overflows(self):
        registry = MetricsRegistry(max_label_sets=3)
        counter = registry.counter("c")
        for i in range(3):
            counter.labels(key=i).inc()
        overflow_a = counter.labels(key="new-a")
        overflow_b = counter.labels(key="new-b")
        assert overflow_a is overflow_b  # one shared overflow child
        overflow_a.inc(5)
        assert counter.labels_dropped == 2
        # existing children keep working past the cap
        counter.labels(key=0).inc()
        assert counter.labels(key=0).value == 2
        snapshot = counter.as_dict()
        assert snapshot["labels_dropped"] == 2
        assert snapshot["labels"]["{__overflow__=true}"]["value"] == 5

    def test_default_cardinality_is_bounded(self):
        counter = MetricsRegistry().counter("c")
        for i in range(DEFAULT_LABEL_CARDINALITY + 50):
            counter.labels(i=i).inc()
        assert len(list(counter.children())) == DEFAULT_LABEL_CARDINALITY + 1
        assert counter.labels_dropped == 50

    def test_merge_folds_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("c").labels(kind="x").inc(7)
        a.gauge("g").set(5)
        b.gauge("g").set(1)
        b.histogram("h").observe(2.0)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.counter("c").labels(kind="x").value == 7
        assert a.gauge("g").value == 1  # last sample wins...
        assert a.gauge("g").max == 5  # ...extremes widen
        assert a.histogram("h").count == 1
        b.counter("only-in-b").inc()
        a.merge(b)
        assert "only-in-b" in a

    def test_render_and_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("alpha", "first").inc(3)
        registry.gauge("beta").set(1.5)
        text = registry.render()
        assert "alpha" in text and "3" in text
        assert "beta" in text and "1.5" in text
        snapshot = registry.as_dict()
        assert snapshot["alpha"] == {
            "type": "counter",
            "value": 3,
            "description": "first",
        }
        assert json.dumps(snapshot)  # JSON-ready


# ----------------------------------------------------------------------
# Engine instrumentation
# ----------------------------------------------------------------------


class TestSessionObservability:
    def test_peak_frontier_single_source_of_truth(self):
        # regression: stats.peak_frontier is derived from the frontier
        # gauge, not tracked separately — the two can never disagree
        session = AnalysisSession(fig2_scheme())
        session.explore()
        stats = session.stats
        assert stats.peak_frontier >= 1
        assert stats.peak_frontier == int(session.metrics.gauge("explore.frontier").max)

    def test_peak_frontier_survives_resumed_exploration(self):
        session = AnalysisSession(fig2_scheme())
        with pytest.raises(AnalysisBudgetExceeded):
            session.explore_or_raise(20, what="test")
        first_peak = session.stats.peak_frontier
        session.explore()
        assert session.stats.peak_frontier >= first_peak

    def test_sync_metrics_mirrors_stats(self):
        session = AnalysisSession(fig2_scheme())
        boundedness(session.scheme, session=session)
        registry = session.sync_metrics()
        assert registry is session.metrics
        assert (
            registry.counter("explore.states_discovered").value
            == session.stats.states_discovered
        )
        queries = registry.counter("session.queries")
        assert queries.labels(procedure="boundedness").value >= 1

    def test_boundedness_span_tree(self):
        sink = MemorySink()
        session = AnalysisSession(fig2_scheme(), tracer=Tracer(sink))
        verdict = boundedness(session.scheme, session=session)
        assert verdict.method  # verdict reached; fig2 is unbounded
        [root] = build_tree(sink.records)
        assert root.name == "boundedness"
        names = {node.name for node in root.walk()}
        assert "session.explore" in names

    def test_progress_events_in_trace(self):
        sink = MemorySink()
        session = AnalysisSession(fig2_scheme(), tracer=Tracer(sink))
        session.explore()
        progress = [e for e in sink.events() if e["name"] == "explore.progress"]
        assert progress
        assert {"states", "transitions", "frontier"} <= progress[-1]["attrs"].keys()

    @pytest.mark.parametrize("name", ["fig2", "spawner", "mutex"])
    def test_differential_tracing_never_changes_verdicts(self, name):
        factory = dict(ZOO_ALL)[name]
        outcomes = []
        for tracer in (None, Tracer(MemorySink())):
            scheme = factory()
            session = AnalysisSession(scheme, tracer=tracer)
            row = []
            for procedure in (boundedness, halts):
                try:
                    verdict = procedure(scheme, max_states=4000, session=session)
                    row.append((verdict.holds, verdict.method))
                except AnalysisBudgetExceeded:
                    row.append("budget")
            for node in scheme.node_ids:
                row.append(node_reachable(scheme, node, session=session).holds)
            outcomes.append(row)
        assert outcomes[0] == outcomes[1]


class TestRunProfileGolden:
    def _profile(self, **kwargs):
        from repro.interp import ProgramInterpretation
        from repro.interp.profiler import profile_run
        from repro.lang import compile_source

        source = """
        global jobs := 2;
        program main {
            pcall worker;
            pcall worker;
            wait;
            end;
        }
        procedure worker {
            jobs := jobs - 1;
            end;
        }
        """
        compiled = compile_source(source)
        return profile_run(
            compiled.scheme, ProgramInterpretation(compiled), **kwargs
        )

    def test_golden_equality_with_registry_backend(self):
        # the registry-backed profiler must be byte-compatible with the
        # dataclass API: same dataclass, field for field
        plain, _ = self._profile()
        registry = MetricsRegistry()
        backed, _ = self._profile(metrics=registry)
        assert backed == plain

    def test_registry_carries_run_metrics(self):
        registry = MetricsRegistry()
        profile, _ = self._profile(metrics=registry)
        parallelism = registry.histogram("run.parallelism")
        assert int(parallelism.max) == profile.peak_parallelism
        assert registry.counter("run.waits_fired").value == profile.waits_fired
        spawns = registry.counter("run.spawns")
        assert spawns.labels(procedure="worker").value == 2

    def test_traced_run_spans(self):
        sink = MemorySink()
        profile, _ = self._profile(tracer=Tracer(sink))
        [root] = build_tree(sink.records)
        assert root.name == "interp.scheduled-run"
        assert root.attrs["steps"] == profile.steps


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCliObservability:
    @pytest.fixture
    def fig1_file(self, tmp_path):
        from repro.zoo import FIG1_PROGRAM

        path = tmp_path / "fig1.rp"
        path.write_text(FIG1_PROGRAM)
        return str(path)

    def test_trace_flag_writes_jsonl(self, fig1_file, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        code = main([fig1_file, "--max-states", "2000", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace" in out
        [root] = build_tree(load_records(str(trace)))
        assert root.name == "rpcheck"
        names = {node.name for node in root.walk()}
        assert "boundedness" in names

    def test_metrics_flag_writes_json(self, fig1_file, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        code = main([fig1_file, "--max-states", "2000", "--metrics", str(metrics)])
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["explore.states_discovered"]["type"] == "counter"
        assert snapshot["explore.states_discovered"]["value"] > 0

    def test_stats_flag_renders_registry(self, fig1_file, capsys):
        from repro.cli import main

        code = main([fig1_file, "--max-states", "2000", "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "session stats" in out
        assert "explore.states_discovered" in out

    def test_report_subcommand(self, fig1_file, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        main([fig1_file, "--max-states", "2000", "--trace", str(trace)])
        capsys.readouterr()
        code = main(["report", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "rpcheck" in out
        assert "self-times account for" in out

    def test_report_self_time_coverage(self, fig1_file, tmp_path):
        # acceptance: a boundedness run's span tree accounts for >= 90%
        # of the root span's wall time in self times
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        main([fig1_file, "--max-states", "2000", "--trace", str(trace)])
        [root] = build_tree(load_records(str(trace)))
        total_self = sum(node.self_wall for node in root.walk())
        assert total_self >= 0.9 * root.wall

    def test_report_on_missing_file_fails(self, capsys):
        from repro.cli import main

        code = main(["report", "/nonexistent/trace.jsonl"])
        assert code == 2

    def test_trace_does_not_change_cli_verdicts(self, fig1_file, tmp_path, capsys):
        from repro.cli import main

        main([fig1_file, "--max-states", "2000"])
        plain = capsys.readouterr().out
        main([fig1_file, "--max-states", "2000", "--trace", str(tmp_path / "t.jsonl")])
        traced = capsys.readouterr().out
        keep = [
            line
            for line in plain.splitlines()
            if any(k in line for k in ("boundedness", "halting", "normed"))
        ]
        assert keep
        for line in keep:
            assert line in traced
