"""Tests for the abstract semantics M_G (Definition 2, Proposition 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import TAU
from repro.core.hstate import EMPTY, HState
from repro.core.semantics import AbstractSemantics
from repro.errors import StateError
from repro.zoo import fig2_scheme, spawner_loop, wait_blocked

P = HState.parse


@pytest.fixture
def sem():
    return AbstractSemantics(fig2_scheme())


class TestLocalRules:
    def test_action_rule(self, sem):
        # q0 --a1--> q1, children carried along
        [t] = [t for t in sem.successors(P("q0,{q7}")) if t.node == "q0"]
        assert t.label == "a1"
        assert t.rule == "action"
        assert t.target == P("q1,{q7}")

    def test_action_carries_children(self):
        sem = AbstractSemantics(fig2_scheme())
        transitions = [
            t for t in sem.successors(P("q0,{q9}")) if t.node == "q0"
        ]
        assert [t.target for t in transitions] == [P("q1,{q9}")]

    def test_test_rule_has_two_branches(self, sem):
        branches = [t for t in sem.successors(P("q3")) if t.node == "q3"]
        assert {t.branch for t in branches} == {0, 1}
        assert {t.target for t in branches} == {P("q1"), P("q4")}
        assert all(t.label == "b1" for t in branches)
        assert all(t.rule == "test" for t in branches)

    def test_call_rule_spawns_child(self, sem):
        [t] = [t for t in sem.successors(P("q1")) if t.node == "q1"]
        assert t.label == TAU
        assert t.rule == "call"
        assert t.target == P("q2,{q7}")

    def test_call_rule_keeps_existing_children(self, sem):
        [t] = [t for t in sem.successors(P("q1,{q9}")) if t.node == "q1"]
        assert t.target == P("q2,{q9,q7}")

    def test_wait_rule_enabled_only_childless(self, sem):
        enabled = [t for t in sem.successors(P("q4")) if t.node == "q4"]
        assert len(enabled) == 1
        assert enabled[0].rule == "wait"
        assert enabled[0].target == P("q5")
        blocked = [t for t in sem.successors(P("q4,{q7}")) if t.node == "q4"]
        assert blocked == []

    def test_end_rule_releases_children(self, sem):
        [t] = [t for t in sem.successors(P("q9,{q11,q12}")) if t.node == "q9"]
        assert t.label == TAU
        assert t.rule == "end"
        assert t.target == P("q11,q12")

    def test_end_rule_plain(self, sem):
        [t] = [t for t in sem.successors(P("q6")) if t.node == "q6"]
        assert t.target == EMPTY


class TestParallelism:
    def test_brother_activity(self, sem):
        # paral1: q0 can still act with a brother present
        transitions = sem.successors(P("q0,q6"))
        nodes = {t.node for t in transitions}
        assert nodes == {"q0", "q6"}

    def test_child_activity_below_parent(self, sem):
        # paral2: a child token can move below its (blocked) parent
        state = P("q4,{q7}")  # parent at wait, child at test b2
        transitions = sem.successors(state)
        assert all(t.node == "q7" for t in transitions)
        targets = {t.target for t in transitions}
        assert targets == {P("q4,{q8}"), P("q4,{q10}")}

    def test_interleaving_count(self, sem):
        # two independent tokens at q0: two action firings possible
        transitions = sem.successors(P("q0,q0"))
        assert len(transitions) == 2
        assert all(t.target == P("q0,q1") for t in transitions)


class TestFig5Evolution:
    def test_sigma1_to_sigma4(self, sem):
        from repro.zoo import fig5_states

        s1, s2, s3, s4 = fig5_states()
        # σ1 → σ2: token at q10 (pcall) moves to q11 spawning q7
        assert any(
            t.target == s2 and t.rule == "call" and t.node == "q10"
            for t in sem.successors(s1)
        )
        # σ2 → σ3: parent at q1 (pcall) moves to q2 spawning q7
        assert any(
            t.target == s3 and t.rule == "call" and t.node == "q1"
            for t in sem.successors(s2)
        )
        # σ3 → σ4: invocation at q9 (end) terminates, releasing q11
        assert any(
            t.target == s4 and t.rule == "end" and t.node == "q9"
            for t in sem.successors(s3)
        )


class TestProposition3:
    """σ ↛ iff σ = ∅ — schemes have no deadlock."""

    def test_empty_is_terminal(self, sem):
        assert sem.is_terminal(EMPTY)

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_nonempty_states_have_successors(self, data):
        scheme = fig2_scheme()
        sem = AbstractSemantics(scheme)
        nodes = list(scheme.node_ids)
        state = data.draw(_scheme_states(nodes))
        if not state.is_empty():
            assert sem.successors(state), state.to_notation()

    def test_reachable_states_never_deadlock(self):
        sem = AbstractSemantics(fig2_scheme())
        frontier = [sem.initial_state]
        seen = set(frontier)
        for _ in range(200):
            if not frontier:
                break
            state = frontier.pop()
            successors = sem.successors(state)
            assert successors or state.is_empty()
            for t in successors:
                if t.target not in seen and len(seen) < 300:
                    seen.add(t.target)
                    frontier.append(t.target)


def _scheme_states(nodes):
    return st.recursive(
        st.builds(HState),
        lambda children: st.builds(
            lambda items: HState(items),
            st.lists(st.tuples(st.sampled_from(nodes), children), max_size=4),
        ),
        max_leaves=5,
    )


class TestReplay:
    def test_replay_simple(self):
        sem = AbstractSemantics(spawner_loop())
        descriptors = [("m0", "test", 0), ("m1", "call", 0)]
        trace = sem.replay(sem.initial_state, descriptors)
        assert trace is not None
        assert trace[-1].target == P("m0,{c0}")

    def test_replay_failure(self):
        sem = AbstractSemantics(spawner_loop())
        assert sem.replay(sem.initial_state, [("m1", "call", 0)]) is None

    def test_replay_backtracks_over_token_choice(self):
        sem = AbstractSemantics(wait_blocked())
        # m0 pcall, then the child spins; wait never fires
        trace = sem.replay(
            sem.initial_state,
            [("m0", "call", 0), ("c0", "action", 0), ("c0b", "action", 0)],
        )
        assert trace is not None
        assert trace[-1].target == P("m1,{c0}")

    def test_run_checks_chaining(self):
        sem = AbstractSemantics(spawner_loop())
        transitions = sem.successors(sem.initial_state)
        final = sem.run([transitions[0]])
        assert final == transitions[0].target

    def test_run_rejects_broken_chain(self):
        sem = AbstractSemantics(spawner_loop())
        t = sem.successors(sem.initial_state)[0]
        t2 = sem.successors(sem.initial_state)[1]
        if t2.source == t.target:  # pragma: no cover - defensive
            pytest.skip("states coincide")
        with pytest.raises(StateError):
            sem.run([t, t2])

    def test_run_rejects_empty(self):
        sem = AbstractSemantics(spawner_loop())
        with pytest.raises(StateError):
            sem.run([])


class TestQueries:
    def test_enabled_labels(self, sem):
        assert sem.enabled_labels(P("q0")) == ("a1",)
        assert sem.enabled_labels(P("q1")) == (TAU,)
        assert sem.enabled_labels(EMPTY) == ()

    def test_step(self, sem):
        assert sem.step(P("q0"), "a1") == [P("q1")]
        assert sem.step(P("q0"), "zz") == []
