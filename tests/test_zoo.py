"""The zoo's own metadata is honest: every family behaves as documented."""

import pytest

from repro.analysis import boundedness, halts, may_terminate
from repro.core.semantics import AbstractSemantics
from repro.zoo import (
    ZOO_ALL,
    ZOO_BOUNDED,
    ZOO_UNBOUNDED,
    bounded_spawner,
    call_ladder,
    terminating_chain,
)


class TestZooMetadata:
    @pytest.mark.parametrize("name,factory", ZOO_BOUNDED, ids=[n for n, _ in ZOO_BOUNDED])
    def test_bounded_families_are_bounded(self, name, factory):
        assert boundedness(factory()).holds

    @pytest.mark.parametrize(
        "name,factory", ZOO_UNBOUNDED, ids=[n for n, _ in ZOO_UNBOUNDED]
    )
    def test_unbounded_families_are_unbounded(self, name, factory):
        assert not boundedness(factory(), max_states=20_000).holds

    @pytest.mark.parametrize("name,factory", ZOO_ALL, ids=[n for n, _ in ZOO_ALL])
    def test_every_zoo_scheme_validates_and_moves(self, name, factory):
        scheme = factory()
        semantics = AbstractSemantics(scheme)
        assert semantics.successors(semantics.initial_state)


class TestParametricFamilies:
    @pytest.mark.parametrize("length", [0, 1, 7])
    def test_chain_sizes(self, length):
        scheme = terminating_chain(length)
        assert len(scheme) == length + 1

    @pytest.mark.parametrize("children", [1, 4])
    def test_bounded_spawner_halts(self, children):
        assert halts(bounded_spawner(children)).holds

    def test_ladder_depth_zero(self):
        scheme = call_ladder(0)
        assert halts(scheme).holds
        assert may_terminate(scheme).holds

    def test_docstring_claims_spawner(self):
        # "every individual run can still terminate" (spawner_loop)
        from repro.zoo import spawner_loop

        assert may_terminate(spawner_loop()).holds

    def test_docstring_claims_deep(self):
        # deep_recursion: "all runs terminate only if the recursion stops"
        from repro.zoo import deep_recursion

        assert may_terminate(deep_recursion()).holds
        assert not halts(deep_recursion(), max_states=20_000).holds

    def test_fig5_states_are_wellformed(self):
        from repro.zoo import fig5_states

        states = fig5_states()
        assert [s.size for s in states] == [5, 6, 7, 6]
