"""Shared test configuration: a wall-clock guard and flight-recorder dumps.

The robustness contract of this repo is "never a hang": every analysis
either returns, raises a structured error, or yields a partial verdict.
A test that blocks forever would mask exactly the bugs the robustness
suite exists to catch, so every test runs under a 120-second limit.

When the ``pytest-timeout`` plugin is installed (CI does this) it is
configured directly.  The plugin is not a hard dependency: without it, a
``SIGALRM``-based fallback provides the same guard on POSIX main-thread
runs (a no-op on platforms without ``SIGALRM`` — better no guard than a
hard dependency the environment cannot satisfy).

When ``RPCHECK_FLIGHT_DIR`` is set (CI sets it for the tier-1 job), a
failing test additionally dumps the process-wide ambient flight
recorder — the last N spans/events any default-constructed
``AnalysisSession`` emitted — as an ``rpcheck-flight/1`` bundle in that
directory, which CI uploads as an artifact.  Post-mortems of flaky
failures then start from telemetry, not from a bare traceback.
"""

from __future__ import annotations

import os
import signal

import pytest

TEST_TIMEOUT_SECONDS = 120


def pytest_configure(config):
    if config.pluginmanager.hasplugin("timeout"):
        # honour an explicit user/CI override (CLI flag or ini setting)
        if not config.getoption("--timeout", None) and not config.getini("timeout"):
            config.option.timeout = TEST_TIMEOUT_SECONDS


def _plugin_active(item) -> bool:
    return item.config.pluginmanager.hasplugin("timeout")


@pytest.fixture(autouse=True)
def _wallclock_guard(request):
    """SIGALRM fallback when pytest-timeout is unavailable."""
    if _plugin_active(request.node) or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT_SECONDS}s wall-clock guard"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def pytest_runtest_logreport(report):
    """Dump the ambient flight recorder when a test fails (see docstring)."""
    if report.when != "call" or not report.failed:
        return
    target = os.environ.get("RPCHECK_FLIGHT_DIR")
    if not target:
        return
    try:
        from repro.obs.recorder import _next_bundle_path, ambient_recorder

        recorder = ambient_recorder()
        recorder.dump(
            _next_bundle_path(target),
            reason=f"test failed: {report.nodeid}",
            context={"nodeid": report.nodeid, "duration": report.duration},
        )
    except Exception:
        # diagnostics must never turn one red test into two
        pass
