"""Shared test configuration: a per-test wall-clock guard.

The robustness contract of this repo is "never a hang": every analysis
either returns, raises a structured error, or yields a partial verdict.
A test that blocks forever would mask exactly the bugs the robustness
suite exists to catch, so every test runs under a 120-second limit.

When the ``pytest-timeout`` plugin is installed (CI does this) it is
configured directly.  The plugin is not a hard dependency: without it, a
``SIGALRM``-based fallback provides the same guard on POSIX main-thread
runs (a no-op on platforms without ``SIGALRM`` — better no guard than a
hard dependency the environment cannot satisfy).
"""

from __future__ import annotations

import signal

import pytest

TEST_TIMEOUT_SECONDS = 120


def pytest_configure(config):
    if config.pluginmanager.hasplugin("timeout"):
        # honour an explicit user/CI override (CLI flag or ini setting)
        if not config.getoption("--timeout", None) and not config.getini("timeout"):
            config.option.timeout = TEST_TIMEOUT_SECONDS


def _plugin_active(item) -> bool:
    return item.config.pluginmanager.hasplugin("timeout")


@pytest.fixture(autouse=True)
def _wallclock_guard(request):
    """SIGALRM fallback when pytest-timeout is unavailable."""
    if _plugin_active(request.node) or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT_SECONDS}s wall-clock guard"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
