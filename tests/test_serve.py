"""Integration tests for the ``repro.serve`` daemon (PR 6 tentpole).

A real daemon on a real unix socket (background thread, tmp-dir socket
kept short for the sockaddr_un limit), exercised the way the ISSUE's
differential gate demands: concurrent mixed-procedure queries must come
back *identical* to in-process :func:`repro.api.execute` answers —
including partial/exhaustion structure — plus the concurrency contracts
(exploration coalescing, per-request sink scoping, disconnect
cancellation) and the ledger side-channel (one ``kind="serve"`` entry
per query).
"""

import json
import os
import re
import socket
import threading
import time
import urllib.error
import urllib.request
import uuid

import pytest

from repro.api import AnalysisRequest, BudgetSpec, execute
from repro.obs import Ledger, scheme_fingerprint
from repro.serve import ServeClient, daemon_in_thread
from repro.zoo import (
    FIG1_PROGRAM,
    deep_pipeline,
    mixed_grove,
    terminating_chain,
    wide_mix,
)

# (family name, scheme factory) — the zoo mix the bench also uses
FAMILIES = {
    "pipeline3": deep_pipeline(3),
    "widemix4": wide_mix(4),
    "grove2x3": mixed_grove(2, 3),
}


def _short_tmp() -> str:
    # sockaddr_un paths are ~107 bytes; pytest tmp_path nests too deep
    path = f"/tmp/rps-{uuid.uuid4().hex[:8]}"
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture()
def served():
    """A running daemon preloaded with the zoo families; yields
    ``(daemon, socket_path, ledger)``."""
    tmp = _short_tmp()
    sock = os.path.join(tmp, "s.sock")
    ledger_path = os.path.join(tmp, "ledger.jsonl")
    with daemon_in_thread(
        sock, ledger_path=ledger_path, flight_dir=tmp, concurrency=4
    ) as daemon:
        for scheme in FAMILIES.values():
            daemon.pool.adopt(scheme)
        yield daemon, sock, Ledger(ledger_path)


def _query_matrix():
    """(procedure, params) per family — ≥4 procedures, mixed shapes."""
    matrix = []
    for name, scheme in FAMILIES.items():
        fingerprint = scheme_fingerprint(scheme)
        node = sorted(scheme.node_ids)[0]
        matrix.extend(
            [
                (fingerprint, scheme, "boundedness", {}),
                (fingerprint, scheme, "halts", {}),
                (fingerprint, scheme, "node_reachable", {"node": node}),
                (fingerprint, scheme, "normed", {}),
            ]
        )
    return matrix


class TestProtocolBasics:
    def test_ping_and_pool(self, served):
        daemon, sock, _ = served
        with ServeClient(sock) as client:
            pong = client.ping()
            assert pong["pid"] == os.getpid()
            assert pong["schemes"] == len(FAMILIES)
            stats = client.pool_stats()
            assert {e["scheme"] for e in stats["entries"]} == {
                s.name for s in FAMILIES.values()
            }

    def test_source_query_compiles_and_pools(self, served):
        daemon, sock, _ = served
        with ServeClient(sock) as client:
            first = client.query("boundedness", source=FIG1_PROGRAM)
            assert first.verdict == "no"
            before = daemon.pool.misses
            second = client.query("halts", source=FIG1_PROGRAM)
            assert second.verdict in ("yes", "no")
        # the second query hit the pooled compilation of the same source
        assert daemon.pool.misses == before
        assert daemon.pool.hits >= 1

    def test_malformed_line_answers_error(self, served):
        _, sock, _ = served
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
            raw.connect(sock)
            raw.sendall(b"this is not json\n")
            reply = json.loads(raw.makefile("rb").readline())
        assert reply["type"] == "error"

    def test_unknown_fingerprint_is_error_response(self, served):
        _, sock, _ = served
        with ServeClient(sock) as client:
            response = client.query(
                "halts", fingerprint="sha256:feedfacefeedface"
            )
        assert response.verdict == "error"
        assert response.error["type"] == "ApiError"


class TestDifferentialGate:
    def test_concurrent_served_verdicts_match_in_process(self, served):
        """Every (procedure × zoo family), fired concurrently at the
        daemon, must equal the in-process answer — the acceptance gate."""
        daemon, sock, _ = served
        matrix = _query_matrix()
        expected = {}
        for fingerprint, scheme, procedure, params in matrix:
            key = (fingerprint, procedure, tuple(sorted(params.items())))
            expected[key] = execute(
                AnalysisRequest(
                    procedure=procedure,
                    fingerprint=fingerprint,
                    params=params,
                ),
                scheme=scheme,
            ).comparable()

        results, errors = {}, []

        def worker(fingerprint, procedure, params):
            try:
                with ServeClient(sock) as client:
                    response = client.query(
                        procedure, fingerprint=fingerprint, **params
                    )
                key = (fingerprint, procedure, tuple(sorted(params.items())))
                results[key] = response.comparable()
            except Exception as error:  # noqa: BLE001 - reported below
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(fp, proc, params))
            for fp, _, proc, params in matrix
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert results == expected

    def test_partial_exhaustion_structure_matches(self, served):
        """Budget exhaustion comes back as the same structured partial the
        in-process call produces (fresh schemes on both sides so neither
        answers from a warm graph)."""
        daemon, sock, _ = served
        scheme = mixed_grove(3, 2)
        fingerprint = daemon.pool.adopt(scheme).fingerprint
        local = execute(
            AnalysisRequest(
                procedure="boundedness",
                fingerprint=fingerprint,
                budget=BudgetSpec(deadline=0.0),
            ),
            scheme=mixed_grove(3, 2),  # a fresh twin, cold like the pool's
        )
        with ServeClient(sock) as client:
            remote = client.query(
                "boundedness",
                fingerprint=fingerprint,
                budget=BudgetSpec(deadline=0.0),
            )
        assert remote.verdict == "unknown"
        assert remote.partial["resource"] == "deadline"
        assert remote.comparable() == local.comparable()


class TestStreaming:
    def test_events_stream_before_response(self, served):
        daemon, sock, _ = served
        fingerprint = scheme_fingerprint(FAMILIES["pipeline3"])
        events = []
        with ServeClient(sock) as client:
            response = client.query(
                "boundedness",
                fingerprint=fingerprint,
                stream=True,
                on_event=events.append,
            )
        assert response.verdict in ("yes", "no")
        assert events, "expected tracer records to stream ahead of the response"
        assert any(r.get("name") == "boundedness" for r in events)

    def test_no_stream_means_no_event_lines(self, served):
        _, sock, _ = served
        fingerprint = scheme_fingerprint(FAMILIES["widemix4"])
        events = []
        with ServeClient(sock) as client:
            client.query(
                "halts", fingerprint=fingerprint, on_event=events.append
            )
        assert events == []


class TestLedger:
    def test_one_serve_entry_per_query(self, served):
        daemon, sock, ledger = served
        fingerprint = scheme_fingerprint(FAMILIES["pipeline3"])
        queries = [
            ("boundedness", {}),
            ("halts", {}),
            ("normed", {}),
        ]
        with ServeClient(sock) as client:
            for procedure, params in queries:
                client.query(
                    procedure,
                    fingerprint=fingerprint,
                    request_id=f"rq-{procedure}",
                    **params,
                )
        entries = ledger.entries()
        assert len(entries) == len(queries)
        assert {e["kind"] for e in entries} == {"serve"}
        assert [e["extra"]["request_id"] for e in entries] == [
            "rq-boundedness", "rq-halts", "rq-normed",
        ]
        assert {e["scheme"]["fingerprint"] for e in entries} == {fingerprint}


class TestCancellation:
    def test_client_disconnect_cancels_via_token(self, served):
        """Hanging up mid-query trips the request's CancelToken: the
        analysis unwinds cooperatively instead of running to completion."""
        daemon, sock, ledger = served
        scheme = mixed_grove(3, 3)  # big enough to still be running
        fingerprint = daemon.pool.adopt(scheme).fingerprint
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(sock)
        request = AnalysisRequest(
            procedure="boundedness",
            fingerprint=fingerprint,
            params={"max_states": 2_000_000},
            request_id="rq-hangup",
        )
        raw.sendall(json.dumps(request.to_json_dict()).encode() + b"\n")
        time.sleep(0.3)  # let the worker start exploring
        raw.close()  # hang up mid-query
        deadline = time.time() + 30
        while time.time() < deadline:
            entries = [
                e
                for e in ledger.entries()
                if e["extra"].get("request_id") == "rq-hangup"
            ]
            if entries:
                break
            time.sleep(0.1)
        assert entries, "cancelled query never reached the ledger"
        entry = entries[0]
        assert entry["outcome"] == "partial"
        assert entry["procedures"]["boundedness"]["verdict"] == "partial"
        assert entry["procedures"]["boundedness"]["resource"] == "cancelled"

    def test_disconnect_during_sharded_query_reaps_worker_pool(self, served):
        """Hanging up on a ``workers=2`` query cancels it *and* reaps the
        pooled session's exploration worker pool: no orphan processes."""
        daemon, sock, ledger = served
        scheme = mixed_grove(3, 3)  # big enough to still be running
        pooled = daemon.pool.adopt(scheme)
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(sock)
        request = AnalysisRequest(
            procedure="boundedness",
            fingerprint=pooled.fingerprint,
            params={"max_states": 2_000_000},
            workers=2,
            request_id="rq-hangup-par",
        )
        raw.sendall(json.dumps(request.to_json_dict()).encode() + b"\n")
        deadline = time.time() + 30
        workers = []
        while time.time() < deadline and not workers:
            pool = pooled.session._pool  # materialises once sharding starts
            if pool is not None:
                workers = [handle.process for handle in pool.workers]
            else:
                time.sleep(0.05)
        assert len(workers) == 2, "sharded query never spun up its pool"
        # shutdown(2), not just close(): the forked exploration workers
        # inherited this (same-process) client fd, so a bare close would
        # never send the FIN a real remote client's hangup sends
        raw.shutdown(socket.SHUT_RDWR)
        raw.close()  # hang up mid-window
        deadline = time.time() + 30
        entries = []
        while time.time() < deadline and not entries:
            entries = [
                e
                for e in ledger.entries()
                if e["extra"].get("request_id") == "rq-hangup-par"
            ]
            time.sleep(0.1)
        assert entries, "cancelled sharded query never reached the ledger"
        entry = entries[0]
        assert entry["outcome"] == "partial"
        assert entry["procedures"]["boundedness"]["resource"] == "cancelled"
        assert pooled.session._pool is None, "cancel must reap the pool"
        deadline = time.time() + 30
        while time.time() < deadline and any(p.is_alive() for p in workers):
            time.sleep(0.05)
        for process in workers:
            assert not process.is_alive(), "orphaned exploration worker"


class TestRequestIsolation:
    def test_overlapping_faulting_requests_get_disjoint_bundles(self, served):
        """Two concurrently faulting requests must dump two separate
        flight bundles, each holding only its own request's records —
        the regression test for the process-ambient recorder fix."""
        daemon, sock, _ = served
        tmp = daemon.flight_dir
        scheme_a, scheme_b = mixed_grove(2, 4), mixed_grove(4, 2)
        fp_a = daemon.pool.adopt(scheme_a).fingerprint
        fp_b = daemon.pool.adopt(scheme_b).fingerprint
        barrier = threading.Barrier(2)
        failures = []

        def fault(fingerprint, procedure):
            try:
                barrier.wait(timeout=10)
                with ServeClient(sock) as client:
                    response = client.query(
                        procedure,
                        fingerprint=fingerprint,
                        budget=BudgetSpec(deadline=0.05),
                    )
                assert response.verdict == "unknown", response.verdict
            except Exception as error:  # noqa: BLE001
                failures.append(error)

        threads = [
            threading.Thread(target=fault, args=(fp_a, "boundedness")),
            threading.Thread(target=fault, args=(fp_b, "normed")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        bundles = sorted(
            os.path.join(tmp, name)
            for name in os.listdir(tmp)
            if name.endswith(".json")
        )
        assert len(bundles) == 2
        reasons = set()
        for path in bundles:
            with open(path, "r", encoding="utf-8") as handle:
                bundle = json.load(handle)
            reasons.add(bundle["reason"])
            phase_names = {
                record.get("name")
                for record in bundle["records"]
                if record.get("kind") == "span"
            }
            # each bundle saw exactly one request's phases, not both
            assert not ({"boundedness", "normed"} <= phase_names)
        assert reasons == {
            "BudgetExhausted in boundedness",
            "BudgetExhausted in normed",
        }


class TestEnsureExplored:
    def test_waiters_coalesce_onto_one_exploration(self):
        """The session-level half of the serve concurrency contract:
        concurrent ``ensure_explored`` calls share one exploration."""
        from repro.analysis import AnalysisSession

        session = AnalysisSession(terminating_chain(8))
        barrier = threading.Barrier(4)
        graphs = []

        def worker():
            barrier.wait(timeout=10)
            graphs.append(session.ensure_explored(10_000))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(graphs) == 4
        assert all(graph is session.graph for graph in graphs)
        assert session.graph.complete
        # everyone rode one exploration; nobody re-explored afterwards
        assert session.ensure_explored(10_000) is session.graph

    def test_larger_ask_resumes_after_inflight(self):
        from repro.analysis import AnalysisSession

        session = AnalysisSession(mixed_grove(2, 3))
        small = session.ensure_explored(50)
        assert len(small) >= 50 or small.complete
        larger = session.ensure_explored(500)
        assert larger is session.graph
        assert len(larger) >= 500 or larger.complete


class TestIntrospection:
    """The live-introspection surface: ``stats`` op, ``GET /v1/metrics``
    (Prometheus text), ``GET /v1/runs`` — scraped while queries stream."""

    PROM_SAMPLE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+(Inf|NaN)?$"
    )

    def _http_get(self, port, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )

    @pytest.fixture()
    def served_http(self):
        tmp = _short_tmp()
        sock = os.path.join(tmp, "s.sock")
        ledger_path = os.path.join(tmp, "ledger.jsonl")
        with daemon_in_thread(
            sock,
            ledger_path=ledger_path,
            flight_dir=tmp,
            concurrency=4,
            http_port=0,
        ) as daemon:
            for scheme in FAMILIES.values():
                daemon.pool.adopt(scheme)
            yield daemon, sock, daemon.bound_http_port

    def test_stats_op(self, served_http):
        daemon, sock, _ = served_http
        with ServeClient(sock) as client:
            client.query(
                "halts", fingerprint=scheme_fingerprint(FAMILIES["pipeline3"])
            )
            stats = client.stats()
        assert stats["served"] >= 1
        assert stats["schemes"] == len(FAMILIES)
        assert "explore.states_discovered" in stats["metrics"]

    def test_runs_endpoint_lists_serve_entries(self, served_http):
        daemon, sock, port = served_http
        with ServeClient(sock) as client:
            client.query(
                "halts", fingerprint=scheme_fingerprint(FAMILIES["widemix4"])
            )
        status, content_type, body = self._http_get(port, "/v1/runs?tail=5")
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["count"] >= 1
        assert payload["runs"][-1]["kind"] == "serve"

    def test_runs_endpoint_rejects_bad_tail(self, served_http):
        _, _, port = served_http
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._http_get(port, "/v1/runs?tail=bogus")
        assert excinfo.value.code == 400

    def test_metrics_scrape_while_queries_stream(self, served_http):
        """The acceptance gate: /v1/metrics answers valid Prometheus —
        including the per-worker ``parallel.*`` series — while sharded
        queries are actively streaming through the daemon."""
        daemon, sock, port = served_http
        fingerprint = scheme_fingerprint(FAMILIES["grove2x3"])
        stop = threading.Event()
        failures = []

        def stream_queries():
            try:
                while not stop.is_set():
                    with ServeClient(sock) as client:
                        client.query(
                            "boundedness",
                            fingerprint=fingerprint,
                            workers=2,
                            stream=True,
                            on_event=lambda record: None,
                        )
            except Exception as error:  # noqa: BLE001 - reported below
                failures.append(error)

        thread = threading.Thread(target=stream_queries)
        thread.start()
        try:
            deadline = time.time() + 60
            worker_series = []
            while time.time() < deadline:
                status, content_type, body = self._http_get(port, "/v1/metrics")
                assert status == 200
                assert content_type.startswith("text/plain")
                assert "version=0.0.4" in content_type
                for line in body.splitlines():
                    if not line or line.startswith("#"):
                        continue
                    assert self.PROM_SAMPLE.match(line), (
                        f"invalid exposition line: {line!r}"
                    )
                assert "serve_served_total" in body
                worker_series = [
                    line
                    for line in body.splitlines()
                    if line.startswith("parallel_") and 'worker="' in line
                ]
                if worker_series:
                    break
                time.sleep(0.2)
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not failures
        assert worker_series, "no parallel.*{worker=i} series ever appeared"
        workers_seen = {
            match.group(1)
            for line in worker_series
            for match in [re.search(r'worker="([^"]+)"', line)]
            if match
        }
        assert len(workers_seen) >= 2

    def test_unknown_route_is_404(self, served_http):
        _, _, port = served_http
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._http_get(port, "/v1/nope")
        assert excinfo.value.code == 404


class TestCleanShutdown:
    def test_shutdown_op_stops_daemon(self):
        tmp = _short_tmp()
        sock = os.path.join(tmp, "s.sock")
        with daemon_in_thread(sock) as daemon:
            with ServeClient(sock) as client:
                assert client.shutdown()["type"] == "shutdown"
            deadline = time.time() + 10
            while os.path.exists(sock) and time.time() < deadline:
                time.sleep(0.05)
            assert not os.path.exists(sock)
