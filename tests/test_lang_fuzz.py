"""Fuzzing the language front-end: random ASTs round-trip through the
pretty-printer and parser, and compile to valid schemes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheme import RPScheme
from repro.lang import (
    AbstractAction,
    Assign,
    End,
    If,
    PCall,
    Procedure,
    Program,
    VarDecl,
    Wait,
    While,
    compile_program,
    parse_program,
    render_program,
)
from repro.lang.expr import BinOp, Bool, BoolOp, Compare, Neg, Not, Num, Var

ACTIONS = ["a1", "a2", "go", "halt'"]
TESTS = ["b1", "ready"]
VARS = ["x", "y"]
PROCS = ["helper", "worker"]


def expressions():
    leaves = st.one_of(
        st.integers(0, 9).map(Num),
        st.sampled_from(VARS).map(Var),
        st.booleans().map(Bool),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from("+-*"), children, children).map(
                lambda t: BinOp(op=t[0], left=t[1], right=t[2])
            ),
            st.tuples(st.sampled_from(["<", "<=", "==", "!="]), children, children).map(
                lambda t: Compare(op=t[0], left=t[1], right=t[2])
            ),
            st.tuples(st.sampled_from(["and", "or"]), children, children).map(
                lambda t: BoolOp(op=t[0], left=t[1], right=t[2])
            ),
            children.map(lambda e: Neg(operand=e)),
            children.map(lambda e: Not(operand=e)),
        )

    return st.recursive(leaves, extend, max_leaves=5)


def statements(depth: int = 2):
    base = st.one_of(
        st.sampled_from(ACTIONS).map(lambda n: AbstractAction(name=n)),
        st.sampled_from(PROCS).map(lambda p: PCall(procedure=p)),
        st.just(Wait()),
        st.just(End()),
        st.tuples(st.sampled_from(VARS), expressions()).map(
            lambda t: Assign(target=t[0], value=t[1])
        ),
    )
    if depth == 0:
        return base
    inner = statements(depth - 1)
    compound = st.one_of(
        st.tuples(
            st.sampled_from(TESTS),
            st.lists(inner, max_size=3),
            st.lists(inner, max_size=2),
        ).map(lambda t: If(test=t[0], then_body=tuple(t[1]), else_body=tuple(t[2]))),
        st.tuples(st.sampled_from(TESTS), st.lists(inner, max_size=3)).map(
            lambda t: While(test=t[0], body=tuple(t[1]))
        ),
        st.tuples(expressions(), st.lists(inner, max_size=2)).map(
            lambda t: If(test=t[0], then_body=tuple(t[1]))
        ),
    )
    return st.one_of(base, compound)


def programs():
    def build(main_body, helper_body, worker_body):
        return Program(
            main=Procedure(name="main", body=tuple(main_body), is_main=True),
            procedures=(
                Procedure(name="helper", body=tuple(helper_body)),
                Procedure(name="worker", body=tuple(worker_body)),
            ),
            globals=tuple(VarDecl(name=v, initial=0) for v in VARS),
        )

    return st.builds(
        build,
        st.lists(statements(), max_size=5),
        st.lists(statements(), max_size=3),
        st.lists(statements(), max_size=3),
    )


class TestRoundTripFuzz:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_render_parse_roundtrip(self, program):
        rendered = render_program(program)
        assert parse_program(rendered) == program

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_compiles_to_valid_scheme(self, program):
        compiled = compile_program(program)
        assert isinstance(compiled.scheme, RPScheme)
        # the validated scheme round-trips through JSON as well
        from repro.core.serialize import scheme_from_json, scheme_to_json

        again = scheme_from_json(scheme_to_json(compiled.scheme))
        assert len(again) == len(compiled.scheme)

    @given(programs())
    @settings(max_examples=40, deadline=None)
    def test_double_roundtrip_is_stable(self, program):
        once = render_program(program)
        twice = render_program(parse_program(once))
        assert once == twice

    @given(programs())
    @settings(max_examples=30, deadline=None)
    def test_lints_never_crash(self, program):
        from repro.lang.lint import lint

        compiled = compile_program(program)
        for warning in lint(program, compiled.scheme):
            assert warning.code.startswith("W")

    @given(programs())
    @settings(max_examples=25, deadline=None)
    def test_semantics_on_compiled_fuzz(self, program):
        # a short bounded exploration must respect Prop 3 and size deltas
        from repro.analysis.explore import Explorer
        from repro.core.semantics import AbstractSemantics

        compiled = compile_program(program)
        semantics = AbstractSemantics(compiled.scheme)
        graph = Explorer(
            compiled.scheme, max_states=60, max_state_size=20
        ).explore(None)
        for state in graph.states:
            if state.size <= 20:
                assert semantics.successors(state) or state.is_empty()
