"""Tests for the Boundedness Problem (Theorem 4) and its certificates."""

import pytest

from repro.analysis.boundedness import boundedness
from repro.analysis.certificates import PumpCertificate, SaturationCertificate
from repro.core.embedding import strictly_embeds
from repro.core.semantics import AbstractSemantics
from repro.errors import AnalysisBudgetExceeded
from repro.zoo import (
    ZOO_BOUNDED,
    ZOO_UNBOUNDED,
    bounded_spawner,
    call_ladder,
    deep_recursion,
    diverging_loop,
    fig2_scheme,
    persistent_server,
    spawner_loop,
    terminating_chain,
)


class TestBoundedVerdicts:
    @pytest.mark.parametrize("name,factory", ZOO_BOUNDED)
    def test_zoo_bounded_schemes(self, name, factory):
        verdict = boundedness(factory())
        assert verdict.holds, name
        assert verdict.exact
        assert isinstance(verdict.certificate, SaturationCertificate)

    def test_chain_state_count(self):
        verdict = boundedness(terminating_chain(4))
        assert verdict.certificate.states == 6

    def test_diverging_loop_is_bounded(self):
        # bounded but non-halting: boundedness must not confuse the two
        assert boundedness(diverging_loop()).holds

    def test_ladder_bounded(self):
        verdict = boundedness(call_ladder(2))
        assert verdict.holds
        assert verdict.certificate.states > 10


class TestUnboundedVerdicts:
    @pytest.mark.parametrize("name,factory", ZOO_UNBOUNDED)
    def test_zoo_unbounded_schemes(self, name, factory):
        verdict = boundedness(factory(), max_states=20_000)
        assert not verdict.holds, name
        assert isinstance(verdict.certificate, PumpCertificate)

    def test_wait_free_pump_is_proof(self):
        verdict = boundedness(spawner_loop())
        assert not verdict.holds
        assert verdict.exact  # wait-free: strict self-covering is a proof
        assert verdict.certificate.proof

    def test_wait_bearing_pump_is_replay_verified(self):
        verdict = boundedness(deep_recursion())
        assert not verdict.holds
        assert verdict.certificate.replays >= 1
        assert not verdict.certificate.proof

    def test_fig2_is_unbounded(self):
        # main can loop on b1 spawning an unbounded number of subr1 children
        verdict = boundedness(fig2_scheme(), max_states=20_000)
        assert not verdict.holds


class TestPumpCertificateValidity:
    """Certificates must replay against the raw semantics."""

    @pytest.mark.parametrize("factory", [spawner_loop, deep_recursion, persistent_server, fig2_scheme])
    def test_pump_segments_are_real_runs(self, factory):
        scheme = factory()
        verdict = boundedness(scheme, max_states=20_000)
        cert = verdict.certificate
        sem = AbstractSemantics(scheme)
        if cert.prefix:
            assert cert.prefix[0].source == sem.initial_state
            assert sem.run(cert.prefix) == cert.base
        else:
            assert cert.base == sem.initial_state
        assert cert.pump[0].source == cert.base
        assert sem.run(cert.pump) == cert.pumped

    @pytest.mark.parametrize("factory", [spawner_loop, deep_recursion, fig2_scheme])
    def test_pump_covers_strictly(self, factory):
        cert = boundedness(factory(), max_states=20_000).certificate
        assert strictly_embeds(cert.base, cert.pumped)
        assert cert.base.size < cert.pumped.size

    def test_pump_iterates_beyond_verification(self):
        # fire the pump five more times; it must keep growing
        scheme = deep_recursion()
        cert = boundedness(scheme).certificate
        sem = AbstractSemantics(scheme)
        state = cert.pumped
        for _ in range(5):
            trace = sem.replay(state, list(cert.pump_descriptors))
            assert trace is not None
            new_state = trace[-1].target
            assert new_state.size > state.size
            assert strictly_embeds(state, new_state)
            state = new_state


class TestBudget:
    def test_budget_exhaustion_raises(self):
        # a pump exists but cannot be found in 3 states
        with pytest.raises(AnalysisBudgetExceeded):
            boundedness(spawner_loop(), max_states=3)

    def test_custom_initial_state(self):
        from repro.core.hstate import HState

        # starting fig2 at q5 (a3; end): trivially bounded
        verdict = boundedness(fig2_scheme(), initial=HState.leaf("q5"))
        assert verdict.holds
        assert verdict.certificate.states == 3
