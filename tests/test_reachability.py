"""Tests for reachability, node reachability and coverability (Theorem 4)."""

import pytest

from repro.analysis.certificates import SaturationCertificate, WitnessPath
from repro.analysis.coverability import (
    arrangements,
    backward_coverability,
    predecessor_basis,
)
from repro.analysis.explore import Explorer
from repro.analysis.reachability import node_reachable, state_reachable
from repro.core.embedding import embeds
from repro.core.hstate import EMPTY, HState
from repro.core.semantics import AbstractSemantics
from repro.errors import AnalysisBudgetExceeded
from repro.zoo import (
    bounded_spawner,
    deep_recursion,
    fig2_scheme,
    racing_writers,
    spawner_loop,
    terminating_chain,
    wait_blocked,
)

P = HState.parse


class TestStateReachability:
    def test_positive_with_witness(self):
        verdict = state_reachable(terminating_chain(4), P("q3"))
        assert verdict.holds
        path = verdict.certificate
        assert isinstance(path, WitnessPath)
        assert path.final == P("q3")
        # replay the witness against raw semantics
        sem = AbstractSemantics(terminating_chain(4))
        assert sem.run(path.transitions) == P("q3")

    def test_empty_state_reachable(self):
        verdict = state_reachable(bounded_spawner(2), EMPTY)
        assert verdict.holds

    def test_negative_by_saturation(self):
        # two live children of main never coexist with main at mend
        verdict = state_reachable(terminating_chain(3), P("q0,q0"))
        assert not verdict.holds
        assert isinstance(verdict.certificate, SaturationCertificate)
        assert verdict.exact

    def test_positive_on_unbounded_scheme(self):
        # three live children in the spawner loop
        target = P("m0,{c0,c0,c0}")
        verdict = state_reachable(spawner_loop(), target)
        assert verdict.holds
        assert verdict.certificate.final == target

    def test_budget_raises_on_unbounded_negative(self):
        with pytest.raises(AnalysisBudgetExceeded):
            state_reachable(spawner_loop(), P("zzz"), max_states=100)

    def test_initial_state_trivially_reachable(self):
        scheme = terminating_chain(2)
        verdict = state_reachable(scheme, scheme.initial_state())
        assert verdict.holds
        assert len(verdict.certificate) == 0


class TestNodeReachability:
    def test_all_fig2_nodes_reachable(self):
        scheme = fig2_scheme()
        for node in scheme.node_ids:
            verdict = node_reachable(scheme, node)
            assert verdict.holds, node

    def test_witnesses_contain_the_node(self):
        scheme = fig2_scheme()
        verdict = node_reachable(scheme, "q11")
        assert verdict.certificate.final.contains_node("q11")

    def test_unreachable_node(self):
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.action("q0", "a", "q1")
        b.end("q1")
        b.end("orphan")
        verdict = node_reachable(b.build(root="q0"), "orphan")
        assert not verdict.holds
        assert verdict.exact

    def test_unknown_node_rejected(self):
        from repro.errors import SchemeError

        with pytest.raises(SchemeError):
            node_reachable(fig2_scheme(), "nope")

    def test_unreachable_node_on_unbounded_scheme_via_backward(self):
        # spawner_loop plus an orphan procedure: forward search cannot
        # saturate, backward coverability proves unreachability exactly
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.test("m0", "b", then="m1", orelse="m2")
        b.pcall("m1", invoked="c0", succ="m0")
        b.end("m2")
        b.action("c0", "work", "c1")
        b.end("c1")
        b.action("x0", "ghost", "x1")
        b.end("x1")
        scheme = b.build(root="m0")
        verdict = node_reachable(scheme, "x0", max_states=500)
        assert not verdict.holds
        assert verdict.exact
        assert verdict.method == "backward-coverability"


class TestBackwardCoverability:
    def test_wait_free_positive_is_exact(self):
        scheme = spawner_loop()
        # covering two simultaneous workers is possible
        verdict = backward_coverability(scheme, [P("c0,c0")])
        assert verdict.holds
        assert verdict.exact

    def test_wait_free_negative(self):
        scheme = spawner_loop()
        # a worker is never an ancestor of another worker
        verdict = backward_coverability(scheme, [P("c0,{c0}")])
        assert not verdict.holds
        assert verdict.exact

    def test_negative_with_wait_still_exact(self):
        # a wait-bearing scheme with an orphan procedure: negative
        # backward answers are exact on every scheme
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.pcall("m0", invoked="c0", succ="m1")
        b.wait("m1", "m2")
        b.end("m2")
        b.action("c0", "spin", "c0")  # immortal child
        b.end("x0")  # orphan node, never reachable
        scheme = b.build(root="m0")
        verdict = backward_coverability(scheme, [P("x0")])
        assert not verdict.holds
        assert verdict.exact

    def test_positive_overapproximation_with_wait(self):
        # m2 is actually unreachable (the child never dies), but backward
        # coverability over-approximates on wait schemes and must say so
        scheme = wait_blocked()
        verdict = backward_coverability(scheme, [P("m2")])
        assert verdict.holds
        assert not verdict.exact

    def test_positive_with_wait_flagged_inexact(self):
        scheme = deep_recursion()
        verdict = backward_coverability(scheme, [P("p1")])
        assert verdict.holds
        assert not verdict.exact  # over-approximation on wait schemes

    def test_agrees_with_forward_on_bounded_schemes(self):
        scheme = bounded_spawner(2)
        graph = Explorer(scheme).explore()
        assert graph.complete
        for target in [P("c0,c0"), P("c0,c0,c0"), P("m1,{c0}"), P("c0,{c0}")]:
            forward = any(embeds(target, s) for s in graph.states)
            backward = backward_coverability(scheme, [target]).holds
            # backward over-approximates on wait schemes, so a forward hit
            # must imply a backward hit; on misses backward may still say
            # yes only if inexact
            if forward:
                assert backward
            elif backward:
                assert not backward_coverability(scheme, [target]).exact

    def test_agrees_exactly_on_wait_free_bounded(self):
        from repro.core.builder import SchemeBuilder

        b = SchemeBuilder()
        b.pcall("m0", invoked="c0", succ="m1")
        b.pcall("m1", invoked="c0", succ="m2")
        b.end("m2")
        b.action("c0", "w", "c1")
        b.end("c1")
        scheme = b.build(root="m0")
        graph = Explorer(scheme).explore()
        assert graph.complete
        for target in [P("c0,c0"), P("c0,c0,c0"), P("c0,{c0}"), P("m2,c1")]:
            forward = any(embeds(target, s) for s in graph.states)
            verdict = backward_coverability(scheme, [target])
            assert verdict.holds == forward, target.to_notation()
            assert verdict.exact


class TestPredecessorBasis:
    """Soundness: every basis element is a genuine one-step predecessor."""

    @pytest.mark.parametrize(
        "factory", [lambda: terminating_chain(4), fig2_scheme, racing_writers]
    )
    def test_preds_really_reach_up(self, factory):
        scheme = factory()
        sem = AbstractSemantics(scheme)
        targets = [P("q1") if "q1" in scheme else HState.leaf(scheme.root)]
        for target in targets:
            for pred in predecessor_basis(scheme, target):
                # some successor of pred covers target
                assert any(
                    embeds(target, t.target) for t in sem.successors(pred)
                ), (pred.to_notation(), target.to_notation())

    def test_preds_of_leaf_target(self):
        scheme = spawner_loop()
        sem = AbstractSemantics(scheme)
        target = P("c0")
        for pred in predecessor_basis(scheme, target):
            assert any(embeds(target, t.target) for t in sem.successors(pred))


class TestArrangements:
    def test_two_nodes(self):
        forests = arrangements(["a", "b"])
        notations = {f.to_notation() for f in forests}
        assert notations == {"a,b", "a,{b}", "b,{a}"}

    def test_duplicate_nodes(self):
        forests = arrangements(["a", "a"])
        notations = {f.to_notation() for f in forests}
        assert notations == {"a,a", "a,{a}"}

    def test_three_nodes_count(self):
        # labelled unordered forests on 3 distinct nodes: 16 shapes
        assert len(arrangements(["a", "b", "c"])) == 16

    def test_cover_characterisation(self):
        # σ contains all of {a, b} iff it dominates some arrangement
        samples = [P("a,b,c"), P("x,{a,b}"), P("a,{x,{b}}"), P("a,a"), P("b")]
        for state in samples:
            direct = state.contains_all_nodes(["a", "b"])
            via_arrangements = any(
                embeds(low, state) for low in arrangements(["a", "b"])
            )
            assert direct == via_arrangements, state.to_notation()

    def test_single_node(self):
        assert arrangements(["a"]) == [P("a")]
