"""Survey: every Section 3 analysis over the scheme zoo.

Prints a verdict table for all schemes in :mod:`repro.zoo` — boundedness,
halting, persistence of the whole node set, size of the minimal-reachable
basis — together with the kind of certificate backing each verdict.

All four questions per scheme run on one shared
:class:`~repro.analysis.AnalysisSession`, so each scheme's reachable
fragment is explored a single time; the final column shows how many
states that one exploration discovered.

Run with::

    python examples/scheme_zoo_analysis.py
"""

from repro.analysis import (
    AnalysisSession,
    boundedness,
    halts,
    persistent,
    sup_reachability,
)
from repro.errors import AnalysisBudgetExceeded
from repro.zoo import ZOO_ALL


def _call(procedure):
    try:
        verdict = procedure()
        flag = "yes" if verdict.holds else "no"
        if not verdict.exact:
            flag += "*"
        return flag
    except AnalysisBudgetExceeded:
        return "?"


def main() -> None:
    header = (
        f"{'scheme':<10} {'nodes':>5} {'wait':>5} {'bounded':>8} {'halts':>6} "
        f"{'persist':>8} {'basis':>6} {'states':>7}"
    )
    print(header)
    print("-" * len(header))
    for name, factory in ZOO_ALL:
        scheme = factory()
        session = AnalysisSession(scheme)
        bounded = _call(
            lambda: boundedness(scheme, max_states=20_000, session=session)
        )
        halting = _call(lambda: halts(scheme, max_states=20_000, session=session))
        persist = _call(
            lambda: persistent(scheme, list(scheme.node_ids), session=session)
        )
        try:
            basis = len(sup_reachability(scheme, session=session).certificate.basis)
        except AnalysisBudgetExceeded:
            basis = "?"
        print(
            f"{name:<10} {len(scheme):>5} "
            f"{'no' if scheme.is_wait_free else 'yes':>5} "
            f"{bounded:>8} {halting:>6} {persist:>8} {basis!s:>6} "
            f"{session.stats.states_discovered:>7}"
        )
    print("\n(* = replay-verified unboundedness on a wait-bearing scheme;")
    print("   persist = some node is live in every reachable state;")
    print("   states  = discovered by the scheme's single shared exploration)")


if __name__ == "__main__":
    main()
