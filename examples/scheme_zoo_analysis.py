"""Survey: every Section 3 analysis over the scheme zoo.

Prints a verdict table for all schemes in :mod:`repro.zoo` — boundedness,
halting, persistence of the whole node set, size of the minimal-reachable
basis — together with the kind of certificate backing each verdict.

Run with::

    python examples/scheme_zoo_analysis.py
"""

from repro.analysis import boundedness, halts, persistent, sup_reachability
from repro.errors import AnalysisBudgetExceeded
from repro.zoo import ZOO_ALL


def _call(procedure):
    try:
        verdict = procedure()
        flag = "yes" if verdict.holds else "no"
        if not verdict.exact:
            flag += "*"
        return flag
    except AnalysisBudgetExceeded:
        return "?"


def main() -> None:
    header = f"{'scheme':<10} {'nodes':>5} {'wait':>5} {'bounded':>8} {'halts':>6} {'persist':>8} {'basis':>6}"
    print(header)
    print("-" * len(header))
    for name, factory in ZOO_ALL:
        scheme = factory()
        bounded = _call(lambda: boundedness(scheme, max_states=20_000))
        halting = _call(lambda: halts(scheme, max_states=20_000))
        persist = _call(
            lambda: persistent(scheme, list(scheme.node_ids))
        )
        try:
            basis = len(sup_reachability(scheme).certificate.basis)
        except AnalysisBudgetExceeded:
            basis = "?"
        print(
            f"{name:<10} {len(scheme):>5} "
            f"{'no' if scheme.is_wait_free else 'yes':>5} "
            f"{bounded:>8} {halting:>6} {persist:>8} {basis!s:>6}"
        )
    print("\n(* = replay-verified unboundedness on a wait-bearing scheme;")
    print("   persist = some node is live in every reachable state)")


if __name__ == "__main__":
    main()
