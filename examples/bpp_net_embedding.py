"""Embedding a communication-free Petri net into an RP scheme.

The paper positions RP schemes between Petri nets and process algebra:
they cannot synchronise arbitrary components (unlike nets) but they do
track the parent-child structure (unlike nets).  The synchronisation-free
net fragment — BPP — embeds into RP schemes constructively, and this
example shows the embedding at work on a small request-handling net.

Run with::

    python examples/bpp_net_embedding.py
"""

from repro.analysis import boundedness
from repro.petri import (
    PetriNet,
    bpp_net_to_scheme,
    is_bounded,
    is_communication_free,
    scheme_bpp_traces,
)

REQUEST_NET = PetriNet(
    places=["listener", "request", "worker"],
    transitions=[
        {"name": "accept", "pre": {"listener": 1},
         "post": {"listener": 1, "request": 1}},
        {"name": "dispatch", "pre": {"request": 1}, "post": {"worker": 1}},
        {"name": "finish", "pre": {"worker": 1}, "post": {}},
    ],
    initial={"listener": 1},
)


def main() -> None:
    net = REQUEST_NET
    print(f"net: {net}")
    print(f"communication-free (BPP): {is_communication_free(net)}")
    print(f"net bounded (Karp–Miller): {is_bounded(net)}")

    scheme = bpp_net_to_scheme(net)
    print(f"\nembedded scheme: {len(scheme)} nodes, "
          f"procedures {sorted(scheme.procedures)}")
    print(f"wait-free (as every BPP embedding is): {scheme.is_wait_free}")

    net_words = sorted(net.traces(3))
    scheme_words = sorted(scheme_bpp_traces(scheme, 3))
    print("\ntransition languages up to length 3:")
    print(f"  net    : {[''.join(f'{w} ' for w in word).strip() or 'ε' for word in net_words]}")
    print(f"  scheme : {[''.join(f'{w} ' for w in word).strip() or 'ε' for word in scheme_words]}")
    print(f"  equal  : {net_words == scheme_words}")

    verdict = boundedness(scheme, max_states=20_000)
    print(f"\nscheme boundedness mirrors the net: "
          f"bounded={verdict.holds} (net: {is_bounded(net)})")


if __name__ == "__main__":
    main()
