"""Theorem 9: running a counter machine through its RP encoding.

Encodes Minsky machines as RP schemes with a *finite* interpretation
(counters = families of child invocations; the global memory is a small
control word; the blocking zero-test uses ``wait``), runs them through the
interpreted semantics ``M_I_G``, and compares against direct simulation.

Run with::

    python examples/counter_machine.py
"""

from repro.minsky import (
    adder_machine,
    doubler_machine,
    encode,
    simulate_via_rp,
    zero_test_machine,
)


def show(machine_name, machine, initial) -> None:
    direct = machine.run(dict(initial))
    via_rp = simulate_via_rp(machine, initial, max_states=400_000)
    status = "OK" if direct == via_rp else "MISMATCH"
    print(f"  {machine_name:<12} {dict(initial)!s:<22} direct={direct}  "
          f"via-RP={via_rp}  [{status}]")


def main() -> None:
    encoded = encode(adder_machine())
    print("the encoding of the adder machine:")
    print(f"  scheme nodes        : {len(encoded.scheme)}")
    print(f"  procedures          : {sorted(encoded.scheme.procedures)}")
    print(f"  finite interpretation: {encoded.interpretation.is_finite()}")
    print(f"  halt node           : {encoded.halt_node}")

    print("\nmachine runs, direct vs through M_I_G of the encoding:")
    show("adder", adder_machine(), {"a": 2, "b": 1})
    show("adder", adder_machine(), {"a": 0, "b": 3})
    show("doubler", doubler_machine(), {"a": 2})
    show("zero-test", zero_test_machine(), {"a": 0})
    show("zero-test", zero_test_machine(), {"a": 1})

    print("\nwhy this matters: RP schemes alone have decidable reachability,")
    print("boundedness, … (Theorems 4-6); adding a finite memory colouring")
    print("makes them Turing-powerful (Theorem 9), so the abstract analyses")
    print("are the best one can decide — exactly the paper's trade-off.")


if __name__ == "__main__":
    main()
