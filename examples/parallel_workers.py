"""A concrete recursive-parallel program: a shared work pool.

``main`` spawns three workers that race to drain a shared job counter,
joins them with ``wait``, and publishes a summary.  The example shows the
Section 4 pipeline:

* compile the concrete program (assignments, concrete tests);
* execute it under several schedulers — the final memory is
  scheduler-independent here because each job is processed exactly once
  (the ``jobs > 0`` test and the decrement are separate actions, so the
  *count of processed jobs* could race; the program uses the
  test-and-mutate idiom that stays correct, and exhaustive exploration
  proves it);
* verify the Preservation Theorem instance: the explored ``M_I_G``
  fragment is ⊑_d-below its ``M_G`` projection.

Run with::

    python examples/parallel_workers.py
"""

from repro.interp import (
    InterpretedExplorer,
    ProgramInterpretation,
    first_scheduler,
    random_scheduler,
    round_robin_scheduler,
    run_program,
)
from repro.lang import compile_source
from repro.lts import d_simulates, map_lts

POOL = """
global jobs := 5;
global done := 0;

program main {
    pcall worker;
    pcall worker;
    pcall worker;
    wait;
    done := done + 100;    // marker: all workers joined
    end;
}

procedure worker {
    local taken := 0;
    while jobs > 0 do {
        jobs := jobs - 1;
        taken := taken + 1;
    }
    done := done + taken;
    end;
}
"""


def main() -> None:
    compiled = compile_source(POOL)
    print(f"compiled: {len(compiled.scheme)} nodes, "
          f"{len(compiled.actions)} action labels, "
          f"{len(compiled.tests)} test labels")

    print("\nruns under different schedulers:")
    for name, scheduler in (
        ("first", first_scheduler),
        ("round-robin", round_robin_scheduler),
        ("random(1)", random_scheduler(1)),
        ("random(42)", random_scheduler(42)),
    ):
        memory, trace = run_program(compiled, scheduler=scheduler)
        print(f"  {name:<12} done={memory['done']:<4} jobs={memory['jobs']} "
              f"({len(trace)} visible steps)")

    print("\nexhaustive exploration of M_I_G:")
    interpretation = ProgramInterpretation(compiled)
    explorer = InterpretedExplorer(compiled.scheme, interpretation, max_states=200_000)
    lts = explorer.explore_or_raise()
    finals = sorted(
        {state.global_memory["done"] for state in lts.states if state.is_terminated()}
    )
    print(f"  {len(lts.states)} global states, terminal done-values: {finals}")
    # note the race: 'jobs>0' and the decrement are two separate steps, so
    # two workers can both pass the test on the last job — `jobs` can go
    # negative and `done` varies across interleavings.  The wait marker
    # (+100) is always present: the join is scheduler-independent.
    assert all(value >= 100 for value in finals)

    print("\nPreservation Theorem instance (Theorem 10):")
    projected = map_lts(lts, lambda g: g.forget())
    print(f"  concrete ⊑_d abstract-projection: {d_simulates(lts, projected)}")


if __name__ == "__main__":
    main()
