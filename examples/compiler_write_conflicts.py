"""§5.3 application: write-conflict detection for an RP compiler.

"Listing all nodes of G where a given global variable is assigned new
values, and checking that these nodes cannot occur simultaneously in a
hierarchical state, we know there will be no write-conflict in the
machine hardware."

This example compiles a small concurrent logging service, collects the
nodes assigning each global variable, and runs the mutual-exclusion
analysis pairwise per variable.  One variable is written safely (the
writers are separated by a wait join); another is racy.

Run with::

    python examples/compiler_write_conflicts.py
"""

from collections import defaultdict

from repro.analysis import mutually_exclusive
from repro.lang import compile_source

SERVICE = """
global log_size := 0;
global status := 0;

program main {
    status := 1;            // safe: before any worker exists
    pcall writer;
    pcall writer;
    log_size := log_size + 1;   // RACY: concurrent with the writers
    wait;
    status := 2;            // safe: all writers joined
    end;
}

procedure writer {
    log_size := log_size + 1;
    end;
}
"""


def writer_nodes_by_variable(compiled):
    """Map each global variable to the scheme nodes assigning it."""
    writers = defaultdict(list)
    for node in compiled.scheme:
        if node.label is None:
            continue
        definition = compiled.actions.get(node.label)
        if definition is not None and definition.kind == "assign":
            if definition.scope == "global":
                writers[definition.target].append(node.id)
    return dict(writers)


def main() -> None:
    compiled = compile_source(SERVICE)
    writers = writer_nodes_by_variable(compiled)
    print("global-variable writers:")
    for variable, nodes in sorted(writers.items()):
        print(f"  {variable:<10} assigned at {nodes}")

    print("\nwrite-conflict analysis (pairwise mutual exclusion):")
    any_conflict = False
    for variable, nodes in sorted(writers.items()):
        if len(nodes) < 2:
            print(f"  {variable:<10} single writer — trivially safe")
            continue
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                verdict = mutually_exclusive(compiled.scheme, a, b)
                if verdict.holds:
                    print(f"  {variable:<10} {a} vs {b}: exclusive — safe")
                else:
                    any_conflict = True
                    witness = verdict.certificate
                    print(f"  {variable:<10} {a} vs {b}: CONFLICT — "
                          f"witness run of {len(witness)} steps reaching "
                          f"{witness.final.to_notation()}")
    # self-conflicts: two invocations at the *same* assignment node
    from repro.analysis import nodes_never_cooccur

    for variable, nodes in sorted(writers.items()):
        for node in nodes:
            verdict = nodes_never_cooccur(compiled.scheme, [node, node])
            if not verdict.holds:
                any_conflict = True
                print(f"  {variable:<10} {node} vs {node}: CONFLICT — two "
                      f"parallel invocations can both be at the writer")

    print(f"\nverdict: {'UNSAFE — fix the racy writes' if any_conflict else 'safe'}")


if __name__ == "__main__":
    main()
