"""Case study: a staged data pipeline, from lint to CTL to profiling.

A three-stage pipeline where each stage fans out recursive workers and
joins them before handing over — the workload shape the IPTC machine was
built for.  The walk-through chains the whole toolbox:

1. lint the source,
2. model-check pipeline-ordering properties in CTL on the abstract model,
3. check the stage-ordering safety property with the Prop. 12 methodology,
4. execute under the P_G machine model and profile the run.

Run with::

    python examples/pipeline_case_study.py
"""

from repro.analysis import check_ctl
from repro.analysis.ctl import AF, AG, EF, Implies, Not, node, terminated
from repro.interp import (
    ProgramInterpretation,
    profile_run,
    verify_safety,
)
from repro.lang import compile_source
from repro.lang.lint import lint
from repro.lts import never_follows

PIPELINE = """
global staged := 0;
global emitted := 0;

program main {
    stage1_begin;
    pcall loader;
    pcall loader;
    wait;
    stage2_begin;
    pcall transformer;
    wait;
    stage3_begin;
    emitted := emitted + staged;
    end;
}

procedure loader {
    staged := staged + 1;
    end;
}

procedure transformer {
    staged := staged * 2;
    end;
}
"""


def main() -> None:
    compiled = compile_source(PIPELINE)
    scheme = compiled.scheme

    print("1. lints:")
    findings = lint(compiled.program, scheme)
    for warning in findings:
        print(f"   {warning}")
    if not findings:
        print("   (clean)")

    print("\n2. CTL on the abstract model:")
    stage_order = AG(
        Implies(node_of(compiled, "stage3_begin"), Not(EF(node_of(compiled, "stage1_begin"))))
    )
    result = check_ctl(scheme, stage_order)
    print(f"   stage 3 never flows back to stage 1 : {result.holds} "
          f"({result.states} states)")
    joins = AG(Implies(node_of(compiled, "stage2_begin"), AF(terminated())))
    print(f"   from stage 2 all runs terminate     : {check_ctl(scheme, joins).holds}")

    print("\n3. safety transfer (Prop. 12 methodology):")
    prop = never_follows("stage2_begin", "stage1_begin")
    verdict = verify_safety(scheme, prop)
    print(f"   '{prop.name}' holds: {verdict.holds} via the {verdict.layer} layer")

    print("\n4. execution profile (deterministic scheduler):")
    profile, final = profile_run(scheme, ProgramInterpretation(compiled))
    print("   " + profile.summary().replace("\n", "\n   "))
    print(f"   final memory: staged={final.global_memory['staged']}, "
          f"emitted={final.global_memory['emitted']}")


def node_of(compiled, action_label: str):
    """The CTL atom for 'some invocation is at the node labelled X'."""
    [node_id] = [n.id for n in compiled.scheme if n.label == action_label]
    return node(node_id)


if __name__ == "__main__":
    main()
