"""Quickstart: the paper's running example, end to end.

Parses the Fig. 1 program, compiles it to its scheme (Fig. 2), builds the
hierarchical state σ1 of Fig. 3, replays the Fig. 5 evolution against the
operational semantics, and runs the Section 3 analyses.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import boundedness, halts, node_reachable, sup_reachability
from repro.core import AbstractSemantics, hstate_to_dot, scheme_to_dot
from repro.core.isomorphism import isomorphic
from repro.lang import compile_source
from repro.zoo import FIG1_PROGRAM, fig2_scheme, fig5_states, sigma1


def main() -> None:
    # -- Fig. 1 → Fig. 2: parse and compile -----------------------------
    compiled = compile_source(FIG1_PROGRAM)
    scheme = compiled.scheme
    print("Fig. 1 program compiled:")
    print(f"  {len(scheme)} nodes, root {scheme.root!r}, "
          f"procedures {list(scheme.procedures)}")
    print(f"  isomorphic to the paper's Fig. 2 scheme: "
          f"{isomorphic(scheme, fig2_scheme())}")

    # -- Fig. 3: hierarchical states ------------------------------------
    state = sigma1()
    print(f"\nσ1 (Fig. 3) = {state.to_notation()}")
    print(f"  {state.size} invocations, height {state.height}")
    print(f"  as a marking (Fig. 4): {dict(state.node_multiset())}")

    # -- Fig. 5: the σ1 → σ2 → σ3 → σ4 evolution -------------------------
    semantics = AbstractSemantics(fig2_scheme())
    states = fig5_states()
    print("\nFig. 5 evolution:")
    for current, following in zip(states, states[1:]):
        matching = [
            t for t in semantics.successors(current) if t.target == following
        ]
        step = matching[0]
        print(f"  {current.to_notation():>40}  --{step.rule}@{step.node}-->  "
              f"{following.to_notation()}")

    # -- Section 3 analyses ----------------------------------------------
    print("\nanalyses of the Fig. 2 scheme:")
    bound = boundedness(fig2_scheme(), max_states=20_000)
    print(f"  bounded : {bound.holds}  ({bound.method})")
    if not bound.holds:
        cert = bound.certificate
        print(f"    pump: {cert.base.to_notation()} ≺ {cert.pumped.to_notation()}")
    halting = halts(fig2_scheme(), max_states=20_000)
    print(f"  halts   : {halting.holds}  ({halting.method})")
    reach_q5 = node_reachable(fig2_scheme(), "q5")
    print(f"  q5 reachable: {reach_q5.holds} "
          f"(witness of {len(reach_q5.certificate)} steps)")
    basis = sup_reachability(fig2_scheme()).certificate.basis
    print(f"  minimal reachable states: "
          f"{[s.to_notation() for s in basis]}")

    # -- DOT output -------------------------------------------------------
    print("\nDOT for the marked scheme written to /tmp/fig4.dot")
    with open("/tmp/fig4.dot", "w", encoding="utf-8") as handle:
        handle.write(scheme_to_dot(fig2_scheme(), marking=state))
    with open("/tmp/fig3.dot", "w", encoding="utf-8") as handle:
        handle.write(hstate_to_dot(state, name="sigma1"))


if __name__ == "__main__":
    main()
