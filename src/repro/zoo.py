"""A zoo of RP schemes shared by tests, examples and benchmarks.

The first group reproduces the paper's running example (Figures 1–5); the
second provides parametric families exercising every analysis procedure:
bounded and unbounded, terminating and diverging, wait-free and wait-heavy.

Reconstruction note (Fig. 1 / Fig. 2)
-------------------------------------
The venue text of the paper renders Fig. 1 and Fig. 2 as scrambled OCR.  The
scheme below is reconstructed from the unambiguous constraints in the text:

* the node inventory of Fig. 2 — ``q0:a1, q1:pcall, q2:a2, q3:b1, q4:wait,
  q5:a3, q6:end`` (main) and ``q7:b2, q8:a4, q9:end, q10:pcall, q11:a5,
  q12:wait`` (subr1);
* the Fig. 5 evolution — ``q10`` is a pcall with successor ``q11`` invoking
  ``q7``; ``q1`` is a pcall with successor ``q2`` invoking ``q7``; ``q9`` is
  an end node;
* the Fig. 1 program text fragments — main loops back to the label ``l1``
  (the pcall) when ``b1`` holds, otherwise waits, does ``a3`` and ends.

As the paper itself notes, the state σ1 of Fig. 3 is "a possible
hierarchical state" of ``M(G)`` (an element of the state *set*), used to
illustrate the data structure and the transition rules of Fig. 5; it is not
claimed to be reachable from σ0.
"""

from __future__ import annotations

from typing import List

from .core.builder import SchemeBuilder
from .core.hstate import HState
from .core.scheme import RPScheme

#: Reconstructed source text of the paper's Fig. 1 abstract RP program
#: (concrete syntax of :mod:`repro.lang`).
FIG1_PROGRAM = """\
program main {
    a1;
l1: pcall subr1;
    a2;
    if b1 then {
        goto l1;
    } else {
    }
    wait;
    a3;
    end;
}

procedure subr1 {
    if b2 then {
        a4;
    } else {
        pcall subr1;
        a5;
        wait;
    }
    end;
}
"""


def fig2_scheme() -> RPScheme:
    """The scheme of Fig. 2 (reconstruction; see the module docstring)."""
    b = SchemeBuilder("fig2")
    # main
    b.action("q0", "a1", "q1")
    b.pcall("q1", invoked="q7", succ="q2")
    b.action("q2", "a2", "q3")
    b.test("q3", "b1", then="q1", orelse="q4")
    b.wait("q4", "q5")
    b.action("q5", "a3", "q6")
    b.end("q6")
    # subr1
    b.test("q7", "b2", then="q8", orelse="q10")
    b.action("q8", "a4", "q9")
    b.end("q9")
    b.pcall("q10", invoked="q7", succ="q11")
    b.action("q11", "a5", "q12")
    b.wait("q12", "q9")
    b.procedure("main", "q0")
    b.procedure("subr1", "q7")
    return b.build(root="q0")


def sigma1() -> HState:
    """σ1 of Fig. 3: ``q1,{q9,{q11},q12,{q10}}`` (five invocations)."""
    return HState.parse("q1,{q9,{q11},q12,{q10}}")


def fig5_states() -> List[HState]:
    """The four states σ1..σ4 of the Fig. 5 evolution."""
    return [
        HState.parse("q1,{q9,{q11},q12,{q10}}"),
        HState.parse("q1,{q9,{q11},q12,{q11,{q7}}}"),
        HState.parse("q2,{q9,{q11},q12,{q11,{q7}},q7}"),
        HState.parse("q2,{q11,q12,{q11,{q7}},q7}"),
    ]


# ----------------------------------------------------------------------
# Parametric families
# ----------------------------------------------------------------------


def terminating_chain(length: int) -> RPScheme:
    """A single invocation performing *length* actions then ending.

    Bounded, halting, wait-free.  Reach(σ0) has exactly ``length + 2``
    states (one per node, plus ∅).
    """
    b = SchemeBuilder(f"chain{length}")
    for i in range(length):
        b.action(f"q{i}", f"a{i}", f"q{i + 1}")
    b.end(f"q{length}")
    return b.build(root="q0")


def spawner_loop() -> RPScheme:
    """The canonical *unbounded* scheme: an infinite spawn loop.

    ``main`` repeatedly tests ``b``; on *then* it pcalls ``child`` and loops,
    on *else* it ends.  Children do one action and end.  The number of live
    children is unbounded, so Reach(σ0) is infinite; every individual run
    can still terminate.  Wait-free.
    """
    b = SchemeBuilder("spawner")
    b.test("m0", "b", then="m1", orelse="m2")
    b.pcall("m1", invoked="c0", succ="m0")
    b.end("m2")
    b.action("c0", "work", "c1")
    b.end("c1")
    b.procedure("main", "m0")
    b.procedure("child", "c0")
    return b.build(root="m0")


def deep_recursion() -> RPScheme:
    """Unbounded in *depth*: each invocation may pcall itself then wait.

    ``p``: if ``b`` then {pcall p; wait} else {}; end.  The hierarchy can
    grow arbitrarily deep (a chain of blocked waiters), so Reach(σ0) is
    infinite; all runs nevertheless terminate only if the recursion stops,
    hence the scheme does not halt (some run recurses forever).
    """
    b = SchemeBuilder("deep")
    b.test("p0", "b", then="p1", orelse="p3")
    b.pcall("p1", invoked="p0", succ="p2")
    b.wait("p2", "p3")
    b.end("p3")
    b.procedure("p", "p0")
    return b.build(root="p0")


def bounded_spawner(children: int) -> RPScheme:
    """Spawn exactly *children* children, wait for them all, end.

    Bounded and halting.
    """
    b = SchemeBuilder(f"spawn{children}")
    for i in range(children):
        b.pcall(f"m{i}", invoked="c0", succ=f"m{i + 1}")
    b.wait(f"m{children}", "mend")
    b.end("mend")
    b.action("c0", "work", "c1")
    b.end("c1")
    b.procedure("main", "m0")
    b.procedure("child", "c0")
    return b.build(root="m0")


def call_ladder(depth: int) -> RPScheme:
    """An acyclic call hierarchy of the given *depth*.

    Procedure ``i`` pcalls procedure ``i+1`` twice and waits; the deepest
    procedure performs one action.  Bounded and halting, with a state space
    exponential in *depth* — a good stress family for the explorer.
    """
    b = SchemeBuilder(f"ladder{depth}")
    for i in range(depth):
        entry = f"p{i}_0"
        b.pcall(entry, invoked=f"p{i + 1}_0", succ=f"p{i}_1")
        b.pcall(f"p{i}_1", invoked=f"p{i + 1}_0", succ=f"p{i}_2")
        b.wait(f"p{i}_2", f"p{i}_3")
        b.end(f"p{i}_3")
        b.procedure(f"level{i}", entry)
    b.action(f"p{depth}_0", "leaf", f"p{depth}_1")
    b.end(f"p{depth}_1")
    b.procedure(f"level{depth}", f"p{depth}_0")
    return b.build(root="p0_0")


def diverging_loop() -> RPScheme:
    """A bounded scheme that never halts: one token looping forever."""
    b = SchemeBuilder("diverge")
    b.action("d0", "tick", "d1")
    b.action("d1", "tock", "d0")
    return b.build(root="d0")


def nonterminating_choice() -> RPScheme:
    """Bounded; halting on one branch, diverging on the other."""
    b = SchemeBuilder("choice")
    b.test("c0", "pick", then="c1", orelse="c2")
    b.action("c1", "loop", "c0")
    b.end("c2")
    return b.build(root="c0")


def mutex_pair() -> RPScheme:
    """Two writer nodes that can never be simultaneously live.

    ``main`` runs ``w1`` then spawns a child and waits; the child runs
    ``w2``.  The wait guarantees ``w1`` (in main, before the pcall) and
    ``w2`` never coexist — whereas ``w1'`` (a second writer after the wait)
    does coexist with nothing.  Used by the §5.3 write-conflict example.
    """
    b = SchemeBuilder("mutex")
    b.action("m0", "w1", "m1")
    b.pcall("m1", invoked="c0", succ="m2")
    b.wait("m2", "m3")
    b.action("m3", "w3", "m4")
    b.end("m4")
    b.action("c0", "w2", "c1")
    b.end("c1")
    return b.build(root="m0")


def racing_writers() -> RPScheme:
    """Two writer nodes that *can* be simultaneously live (no wait)."""
    b = SchemeBuilder("race")
    b.pcall("m0", invoked="c0", succ="m1")
    b.action("m1", "w1", "m2")
    b.end("m2")
    b.action("c0", "w2", "c1")
    b.end("c1")
    return b.build(root="m0")


def persistent_server() -> RPScheme:
    """A scheme whose node set ``{s0, s1}`` is persistent.

    The server loops between ``s0`` and ``s1`` forever spawning workers;
    some server node is live in every reachable state.
    """
    b = SchemeBuilder("server")
    b.action("s0", "poll", "s1")
    b.pcall("s1", invoked="w0", succ="s0")
    b.action("w0", "serve", "w1")
    b.end("w1")
    return b.build(root="s0")


def wait_blocked() -> RPScheme:
    """A parent forever blocked at a wait by an immortal child.

    Exercises the wait rule's negative side: the parent's wait is never
    enabled, yet the system has no deadlock (the child keeps moving).
    """
    b = SchemeBuilder("blocked")
    b.pcall("m0", invoked="c0", succ="m1")
    b.wait("m1", "m2")
    b.end("m2")
    b.action("c0", "spin", "c0b")
    b.action("c0b", "spin2", "c0")
    return b.build(root="m0")


def deep_pipeline(segments: int) -> RPScheme:
    """Unbounded-*depth* family: a pipeline of self-recursive segments.

    Segment ``i`` may recurse into itself (pcall + wait, growing the
    hierarchy arbitrarily deep) and then hands over to segment ``i+1``.
    Reachable states are tall and narrow with *segments* distinct node
    alphabets along the way — the shape on which per-node occurrence
    fingerprints refute most embedding queries outright.
    """
    b = SchemeBuilder(f"pipeline{segments}")
    for i in range(segments):
        b.test(f"d{i}_0", f"b{i}", then=f"d{i}_1", orelse=f"d{i}_3")
        b.pcall(f"d{i}_1", invoked=f"d{i}_0", succ=f"d{i}_2")
        b.wait(f"d{i}_2", f"d{i}_3")
        if i + 1 < segments:
            b.pcall(f"d{i}_3", invoked=f"d{i + 1}_0", succ=f"d{i}_4")
            b.end(f"d{i}_4")
        else:
            b.end(f"d{i}_3")
        b.procedure(f"segment{i}", f"d{i}_0")
    return b.build(root="d0_0")


def wide_mix(kinds: int) -> RPScheme:
    """Unbounded-*width* family: a loop spawning *kinds* distinct workers.

    Each loop round spawns one worker of every kind, so reachable states
    are wide flat forests mixing ``kinds`` different worker alphabets in
    varying proportions — lots of same-size, different-fingerprint states.
    """
    b = SchemeBuilder(f"widemix{kinds}")
    b.test("m0", "more", then="m1", orelse="mend")
    for k in range(kinds):
        succ = f"m{k + 2}" if k + 1 < kinds else "m0"
        b.pcall(f"m{k + 1}", invoked=f"w{k}_0", succ=succ)
    b.end("mend")
    for k in range(kinds):
        b.action(f"w{k}_0", f"work{k}", f"w{k}_1")
        b.end(f"w{k}_1")
        b.procedure(f"worker{k}", f"w{k}_0")
    b.procedure("main", "m0")
    return b.build(root="m0")


def mixed_grove(depth: int, width: int) -> RPScheme:
    """Bounded family with a state space exponential in *depth*.

    Generalises :func:`call_ladder`: each level pcalls the next level
    *width* times before waiting, so intermediate states are bushy trees
    of height up to *depth* — deep *and* wide at once.
    """
    b = SchemeBuilder(f"grove{depth}x{width}")
    for i in range(depth):
        for j in range(width):
            b.pcall(f"g{i}_{j}", invoked=f"g{i + 1}_0", succ=f"g{i}_{j + 1}")
        b.wait(f"g{i}_{width}", f"g{i}_done")
        b.end(f"g{i}_done")
        b.procedure(f"level{i}", f"g{i}_0")
    b.action(f"g{depth}_0", "leaf", f"g{depth}_1")
    b.end(f"g{depth}_1")
    b.procedure(f"level{depth}", f"g{depth}_0")
    return b.build(root="g0_0")


ZOO_BOUNDED = [
    ("chain", lambda: terminating_chain(5)),
    ("spawn3", lambda: bounded_spawner(3)),
    ("ladder2", lambda: call_ladder(2)),
    ("diverge", diverging_loop),
    ("choice", nonterminating_choice),
    ("mutex", mutex_pair),
    ("race", racing_writers),
    ("blocked", wait_blocked),
]

ZOO_UNBOUNDED = [
    ("fig2", fig2_scheme),
    ("spawner", spawner_loop),
    ("deep", deep_recursion),
    ("server", persistent_server),
]

ZOO_ALL = ZOO_BOUNDED + ZOO_UNBOUNDED

#: Embedding-heavy parametric instances for the WQO fast-path benchmark and
#: its differential tests (kept out of ``ZOO_ALL`` — these are deliberately
#: larger than the instances the ordinary test-suite sweeps).
ZOO_WQO_BENCH = [
    ("pipeline3", lambda: deep_pipeline(3)),
    ("widemix4", lambda: wide_mix(4)),
    ("grove2x3", lambda: mixed_grove(2, 3)),
]
