"""JSON (de)serialisation of schemes and hierarchical states.

Round-trippable dictionary/JSON forms for tooling: saving analysis
inputs, exchanging schemes with external tools, golden files in test
fixtures.  The JSON shape is versioned and validated on load.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import SchemeError, StateError
from .hstate import HState
from .scheme import Node, NodeKind, RPScheme

FORMAT_VERSION = 1


def scheme_to_dict(scheme: RPScheme) -> Dict[str, Any]:
    """A plain-dict form of *scheme* (JSON-compatible)."""
    return {
        "format": FORMAT_VERSION,
        "name": scheme.name,
        "root": scheme.root,
        "procedures": dict(scheme.procedures),
        "nodes": [
            {
                "id": node.id,
                "kind": node.kind.value,
                "label": node.label,
                "successors": list(node.successors),
                "invoked": node.invoked,
            }
            for node in scheme
        ],
    }


def scheme_from_dict(data: Dict[str, Any]) -> RPScheme:
    """Rebuild a scheme from its dict form (validating)."""
    if data.get("format") != FORMAT_VERSION:
        raise SchemeError(
            f"unsupported scheme format {data.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        nodes: List[Node] = [
            Node(
                spec["id"],
                NodeKind(spec["kind"]),
                label=spec.get("label"),
                successors=spec.get("successors", ()),
                invoked=spec.get("invoked"),
            )
            for spec in data["nodes"]
        ]
        return RPScheme(
            nodes,
            root=data["root"],
            name=data.get("name", "scheme"),
            procedures=data.get("procedures", {}),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise SchemeError(f"malformed scheme data: {error}") from error


def scheme_to_json(scheme: RPScheme, indent: int = 2) -> str:
    """Serialise to a JSON string."""
    return json.dumps(scheme_to_dict(scheme), indent=indent, sort_keys=True)


def scheme_from_json(text: str) -> RPScheme:
    """Deserialise from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SchemeError(f"invalid JSON: {error}") from error
    return scheme_from_dict(data)


def hstate_to_json(state: HState) -> str:
    """Serialise a hierarchical state (as its canonical notation)."""
    return json.dumps({"format": FORMAT_VERSION, "state": state.to_notation()})


def hstate_from_json(text: str) -> HState:
    """Deserialise a hierarchical state."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise StateError(f"invalid JSON: {error}") from error
    if data.get("format") != FORMAT_VERSION:
        raise StateError(f"unsupported state format {data.get('format')!r}")
    return HState.parse(data["state"])
