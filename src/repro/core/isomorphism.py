"""Scheme isomorphism — structural equality up to node renaming.

Used to compare compiled schemes against hand-built references (e.g. the
Fig. 2 reconstruction): two schemes are isomorphic when a bijection of
node ids preserves kinds, labels, successor lists (order matters for TEST
nodes: then/else branches), invocation edges and the root.

The search is a straightforward backtracking matcher with degree/kind
pruning — schemes are small control graphs, not arbitrary inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .scheme import Node, RPScheme


def _signature(scheme: RPScheme, node: Node) -> tuple:
    return (node.kind, node.label, len(node.successors), node.invoked is not None)


def find_isomorphism(left: RPScheme, right: RPScheme) -> Optional[Dict[str, str]]:
    """A node bijection witnessing ``left ≅ right``, or ``None``.

    The mapping is rooted: ``left.root ↦ right.root``.
    """
    if len(left) != len(right):
        return None
    left_nodes = {node.id: node for node in left}
    right_nodes = {node.id: node for node in right}
    # candidates by signature
    candidates: Dict[str, List[str]] = {}
    right_by_signature: Dict[tuple, List[str]] = {}
    for node in right:
        right_by_signature.setdefault(_signature(right, node), []).append(node.id)
    for node in left:
        matching = right_by_signature.get(_signature(left, node), [])
        if not matching:
            return None
        candidates[node.id] = matching

    mapping: Dict[str, str] = {}
    used: Dict[str, str] = {}

    def consistent(a: str, b: str) -> bool:
        node_a, node_b = left_nodes[a], right_nodes[b]
        for succ_a, succ_b in zip(node_a.successors, node_b.successors):
            if succ_a in mapping and mapping[succ_a] != succ_b:
                return False
            if succ_b in used and used[succ_b] != succ_a:
                return False
        if node_a.invoked is not None:
            if node_a.invoked in mapping and mapping[node_a.invoked] != node_b.invoked:
                return False
            if node_b.invoked in used and used[node_b.invoked] != node_a.invoked:
                return False
        return True

    order = sorted(left_nodes, key=lambda n: len(candidates[n]))

    def assign(index: int) -> bool:
        if index == len(order):
            return _verify(left, right, mapping)
        a = order[index]
        if a in mapping:
            return assign(index + 1)
        for b in candidates[a]:
            if b in used:
                continue
            if a == left.root and b != right.root:
                continue
            if b == right.root and a != left.root:
                continue
            if not consistent(a, b):
                continue
            mapping[a] = b
            used[b] = a
            if assign(index + 1):
                return True
            del mapping[a]
            del used[b]
        return False

    if assign(0):
        return dict(mapping)
    return None


def _verify(left: RPScheme, right: RPScheme, mapping: Dict[str, str]) -> bool:
    if mapping[left.root] != right.root:
        return False
    for node in left:
        image = right.node(mapping[node.id])
        if node.kind != image.kind or node.label != image.label:
            return False
        if tuple(mapping[s] for s in node.successors) != image.successors:
            return False
        if (node.invoked is None) != (image.invoked is None):
            return False
        if node.invoked is not None and mapping[node.invoked] != image.invoked:
            return False
    return True


def isomorphic(left: RPScheme, right: RPScheme) -> bool:
    """``True`` iff the schemes are isomorphic (rooted)."""
    return find_isomorphism(left, right) is not None
