"""The abstract behavioural semantics ``M_G`` (Definition 2).

For a scheme ``G``, the transition system ``M_G = ⟨M(G), A_τ, →, σ0⟩`` has
the hierarchical states of ``G`` as states, ``σ0 = {(q0, ∅)}`` as initial
state, and the least transition relation closed under the rules:

``action``  If ``q`` is an ``a``-labelled action (or test) node with
            successor ``q'`` then ``(q,σ) →a (q',σ)``.
``end``     If ``q`` is an end node then ``(q,σ) →τ σ`` — the invocation
            disappears and its children are released into the context.
``call``    If ``q`` is a pcall node with successor ``q'`` and invoked node
            ``q''`` then ``(q,σ) →τ (q', σ + {(q'',∅)})``.
``wait``    If ``q`` is a wait node with successor ``q'`` then
            ``(q,∅) →τ (q',∅)`` — only fireable once every child has
            terminated.
``paral1/2``  Any enabled transition may fire in the presence of brothers
            and below a parent.

The two parallelism rules are realised here by quantifying the four local
rules over every *position* (token) of the state, which yields exactly the
same relation with an explicit event structure that the analysis layers use
for certificates and replay.

Proposition 3 (*schemes have no deadlock*: ``σ ↛`` iff ``σ = ∅``) is a
theorem of this relation and is property-tested in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import StateError
from .alphabet import TAU
from .hstate import EMPTY, HState, Path
from .scheme import NodeKind, RPScheme

#: A location-independent description of a firing: which scheme node moved,
#: under which rule, choosing which successor branch.  Replay machinery
#: matches descriptors against enabled transitions.
Descriptor = Tuple[str, str, Optional[int]]


@dataclass(frozen=True)
class Transition:
    """One transition of ``M_G`` with its full event structure."""

    source: HState
    label: str
    target: HState
    rule: str
    node: str
    path: Path
    branch: Optional[int] = None

    @property
    def descriptor(self) -> Descriptor:
        """The location-independent firing description."""
        return (self.node, self.rule, self.branch)

    def __repr__(self) -> str:
        return (
            f"Transition({self.source.to_notation()} --{self.label}--> "
            f"{self.target.to_notation()} [{self.rule}@{self.node}])"
        )


class AbstractSemantics:
    """Successor generation for ``M_G``.

    The object is stateless apart from the scheme; all methods are pure.
    """

    def __init__(self, scheme: RPScheme) -> None:
        self.scheme = scheme

    @property
    def initial_state(self) -> HState:
        """``σ0 = {(q0, ∅)}``."""
        return self.scheme.initial_state()

    def successors(self, state: HState) -> List[Transition]:
        """All transitions enabled in *state*, in deterministic order."""
        transitions: List[Transition] = []
        for path, node_id, children in state.positions():
            transitions.extend(self._local(state, path, node_id, children))
        return transitions

    def _local(
        self, state: HState, path: Path, node_id: str, children: HState
    ) -> Iterator[Transition]:
        node = self.scheme.node(node_id)
        if node.kind in (NodeKind.ACTION, NodeKind.TEST):
            rule = "action" if node.kind is NodeKind.ACTION else "test"
            for branch, succ in enumerate(node.successors):
                target = state.replace(path, ((succ, children),))
                yield Transition(state, node.label, target, rule, node_id, path, branch)
        elif node.kind is NodeKind.PCALL:
            spawned = children + HState.leaf(node.invoked)
            target = state.replace(path, ((node.successors[0], spawned),))
            yield Transition(state, TAU, target, "call", node_id, path, 0)
        elif node.kind is NodeKind.WAIT:
            if children.is_empty():
                target = state.replace(path, ((node.successors[0], EMPTY),))
                yield Transition(state, TAU, target, "wait", node_id, path, 0)
        elif node.kind is NodeKind.END:
            target = state.replace(path, children.items)
            yield Transition(state, TAU, target, "end", node_id, path, None)

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------

    def is_terminal(self, state: HState) -> bool:
        """``True`` iff *state* has no successor.

        By Proposition 3 this holds exactly for the empty state; the method
        nevertheless inspects the state so the proposition can be tested
        against the implementation rather than assumed.
        """
        return not self.successors(state)

    def enabled_labels(self, state: HState) -> Tuple[str, ...]:
        """The multiset-free, sorted tuple of labels enabled in *state*."""
        return tuple(sorted({t.label for t in self.successors(state)}))

    def step(self, state: HState, label: str) -> List[HState]:
        """All states reachable from *state* by one *label*-transition."""
        return [t.target for t in self.successors(state) if t.label == label]

    # ------------------------------------------------------------------
    # Replay (used by pump certificates and the steering constructions)
    # ------------------------------------------------------------------

    def matching(self, state: HState, descriptor: Descriptor) -> List[Transition]:
        """Enabled transitions of *state* matching a firing descriptor."""
        return [t for t in self.successors(state) if t.descriptor == descriptor]

    def replay(
        self, state: HState, descriptors: Sequence[Descriptor]
    ) -> Optional[List[Transition]]:
        """Fire a descriptor sequence from *state*, if possible.

        The search backtracks over the (possibly many) tokens matching each
        descriptor and returns one realising transition sequence, or
        ``None`` when no interleaving of matching tokens fires the whole
        sequence.
        """
        trace: List[Transition] = []
        if self._replay(state, descriptors, 0, trace):
            return trace
        return None

    def _replay(
        self,
        state: HState,
        descriptors: Sequence[Descriptor],
        index: int,
        trace: List[Transition],
    ) -> bool:
        if index == len(descriptors):
            return True
        for transition in self.matching(state, descriptors[index]):
            trace.append(transition)
            if self._replay(transition.target, descriptors, index + 1, trace):
                return True
            trace.pop()
        return False

    def run(self, transitions: Sequence[Transition]) -> HState:
        """Check that *transitions* chain correctly and return the final state.

        Raises :class:`StateError` when a step's source does not match the
        previous step's target, or when a step is not actually enabled.
        """
        if not transitions:
            raise StateError("empty transition sequence")
        current = transitions[0].source
        for transition in transitions:
            if transition.source != current:
                raise StateError(
                    f"broken run: expected source {current.to_notation()}, "
                    f"got {transition.source.to_notation()}"
                )
            if transition not in self.successors(current):
                raise StateError(f"transition {transition!r} is not enabled")
            current = transition.target
        return current


class MemoizingSemantics(AbstractSemantics):
    """``AbstractSemantics`` with per-state successor memoization.

    The relation of ``M_G`` is pure, so the successor list of a state never
    changes; analysis sessions compute it at most once and replay it from
    the cache on every later query.  Two further tricks pay on hot paths:

    * **hash-consing** — every state flowing through the cache is interned,
      so equal states collapse to one instance and ``HState.__eq__`` hits
      its identity fast path inside set/dict probes;
    * **target rewriting** — cached transitions point at the *interned*
      target instance, so downstream graphs and frontiers only ever hold
      canonical states.

    The returned lists are owned by the cache: callers must not mutate
    them.  ``cache_hits``/``cache_misses`` and ``interned_states`` feed the
    :class:`repro.analysis.session.AnalysisStats` observability layer.
    """

    def __init__(self, scheme) -> None:
        super().__init__(scheme)
        self._successors: Dict[HState, List[Transition]] = {}
        self._intern: Dict[HState, HState] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def intern(self, state: HState) -> HState:
        """The canonical instance equal to *state* (inserting if new)."""
        canonical = self._intern.get(state)
        if canonical is None:
            self._intern[state] = state
            return state
        return canonical

    @property
    def interned_states(self) -> int:
        """Number of distinct states in the intern table."""
        return len(self._intern)

    def successors(self, state: HState) -> List[Transition]:
        cached = self._successors.get(state)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        state = self.intern(state)
        transitions = []
        for transition in super().successors(state):
            target = self.intern(transition.target)
            if target is not transition.target:
                transition = replace(transition, target=target)
            transitions.append(transition)
        self._successors[state] = transitions
        return transitions
