"""RP schemes — the abstract control graphs of RP programs (Section 1.2).

An RP scheme over an alphabet ``A`` is a finite rooted graph whose nodes
come in five kinds, drawn in the paper with distinctive shapes:

========  =========== ====================================================
kind      paper shape rôle
========  =========== ====================================================
ACTION    rectangle   an uninterpreted basic action ``a ∈ A``
TEST      oval        a test ``b ∈ A`` with a *then* and an *else* branch
PCALL     pentagon    spawn a child invocation at the invoked node
WAIT      triangle    block until all children invocations terminated
END       (end)       terminate this invocation
========  =========== ====================================================

The class :class:`RPScheme` is an immutable, validated container for such a
graph; its behaviour is given by :mod:`repro.core.semantics`.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import SchemeError
from .alphabet import TAU, Alphabet
from .hstate import HState


class NodeKind(enum.Enum):
    """The five node kinds of an RP scheme."""

    ACTION = "action"
    TEST = "test"
    PCALL = "pcall"
    WAIT = "wait"
    END = "end"


class Node:
    """One node of an RP scheme.

    ``label`` is the action/test name for ACTION and TEST nodes and ``None``
    otherwise.  ``successors`` lists control successors: one for ACTION,
    PCALL and WAIT, two for TEST (then-branch first), none for END.
    ``invoked`` is the entry node of the procedure spawned by a PCALL.
    """

    __slots__ = ("id", "kind", "label", "successors", "invoked")

    def __init__(
        self,
        node_id: str,
        kind: NodeKind,
        label: Optional[str] = None,
        successors: Sequence[str] = (),
        invoked: Optional[str] = None,
    ) -> None:
        self.id = node_id
        self.kind = kind
        self.label = label
        self.successors: Tuple[str, ...] = tuple(successors)
        self.invoked = invoked

    def __repr__(self) -> str:
        parts = [f"{self.id}:{self.kind.value}"]
        if self.label is not None:
            parts.append(f"label={self.label}")
        if self.successors:
            parts.append("->" + ",".join(self.successors))
        if self.invoked is not None:
            parts.append(f"invokes={self.invoked}")
        return f"Node({' '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return (
            self.id == other.id
            and self.kind == other.kind
            and self.label == other.label
            and self.successors == other.successors
            and self.invoked == other.invoked
        )

    def __hash__(self) -> int:
        return hash((self.id, self.kind, self.label, self.successors, self.invoked))


class RPScheme:
    """A validated RP scheme (an element of the paper's class ``RPPS_A``).

    Parameters
    ----------
    nodes:
        The nodes of the graph, with distinct ids.
    root:
        The initial node ``q0`` of the main procedure.
    name:
        Optional display name.
    procedures:
        Optional mapping from procedure names to their entry node ids.  This
        is metadata recorded by the language front-end; it does not affect
        the behavioural semantics.
    """

    def __init__(
        self,
        nodes: Iterable[Node],
        root: str,
        name: str = "scheme",
        procedures: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.id in self._nodes:
                raise SchemeError(f"duplicate node id {node.id!r}")
            self._nodes[node.id] = node
        self.root = root
        self.procedures: Dict[str, str] = dict(procedures or {})
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if self.root not in self._nodes:
            raise SchemeError(f"root node {self.root!r} is not a node of the scheme")
        for node in self._nodes.values():
            self._validate_node(node)
        for proc, entry in self.procedures.items():
            if entry not in self._nodes:
                raise SchemeError(f"procedure {proc!r} has unknown entry node {entry!r}")

    def _validate_node(self, node: Node) -> None:
        for succ in node.successors:
            if succ not in self._nodes:
                raise SchemeError(f"node {node.id!r} has unknown successor {succ!r}")
        if node.kind is NodeKind.ACTION:
            if node.label is None:
                raise SchemeError(f"action node {node.id!r} has no action label")
            if len(node.successors) < 1:
                raise SchemeError(f"action node {node.id!r} needs at least one successor")
            if node.invoked is not None:
                raise SchemeError(f"action node {node.id!r} cannot invoke a procedure")
        elif node.kind is NodeKind.TEST:
            if node.label is None:
                raise SchemeError(f"test node {node.id!r} has no test label")
            if len(node.successors) != 2:
                raise SchemeError(
                    f"test node {node.id!r} needs exactly two successors (then, else)"
                )
            if node.invoked is not None:
                raise SchemeError(f"test node {node.id!r} cannot invoke a procedure")
        elif node.kind is NodeKind.PCALL:
            if len(node.successors) != 1:
                raise SchemeError(f"pcall node {node.id!r} needs exactly one successor")
            if node.invoked is None:
                raise SchemeError(f"pcall node {node.id!r} has no invoked node")
            if node.invoked not in self._nodes:
                raise SchemeError(
                    f"pcall node {node.id!r} invokes unknown node {node.invoked!r}"
                )
            if node.label is not None:
                raise SchemeError(f"pcall node {node.id!r} cannot carry an action label")
        elif node.kind is NodeKind.WAIT:
            if len(node.successors) != 1:
                raise SchemeError(f"wait node {node.id!r} needs exactly one successor")
            if node.label is not None or node.invoked is not None:
                raise SchemeError(f"wait node {node.id!r} carries extraneous data")
        elif node.kind is NodeKind.END:
            if node.successors:
                raise SchemeError(f"end node {node.id!r} cannot have successors")
            if node.label is not None or node.invoked is not None:
                raise SchemeError(f"end node {node.id!r} carries extraneous data")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        """The node with the given id (raises :class:`SchemeError` if absent)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SchemeError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> Tuple[str, ...]:
        """All node ids, in insertion order."""
        return tuple(self._nodes)

    def nodes_of_kind(self, kind: NodeKind) -> Tuple[Node, ...]:
        """All nodes of the given kind."""
        return tuple(node for node in self._nodes.values() if node.kind is kind)

    @property
    def is_wait_free(self) -> bool:
        """``True`` iff the scheme has no WAIT node.

        On wait-free schemes plain tree embedding is strongly compatible
        with the transition relation, which widens the completeness
        envelope of several analysis procedures (see DESIGN.md).
        """
        return not self.nodes_of_kind(NodeKind.WAIT)

    def alphabet(self) -> Alphabet:
        """The visible action alphabet used by ACTION and TEST nodes."""
        return Alphabet(
            node.label
            for node in self._nodes.values()
            if node.label is not None
        )

    def transition_label(self, node_id: str) -> str:
        """The label of transitions fired from *node_id* (``τ`` for
        PCALL/WAIT/END, the action name otherwise)."""
        node = self.node(node_id)
        return node.label if node.label is not None else TAU

    def initial_state(self) -> HState:
        """The initial hierarchical state ``σ0 = {(q0, ∅)}``."""
        return HState.leaf(self.root)

    def graph_reachable_nodes(self) -> FrozenSet[str]:
        """Nodes reachable from the root in the *graph* (following successor
        and invocation edges).

        This is purely syntactic reachability; behavioural node
        reachability (Theorem 4) is :mod:`repro.analysis.reachability`.
        """
        seen = {self.root}
        frontier: List[str] = [self.root]
        while frontier:
            node = self._nodes[frontier.pop()]
            targets = list(node.successors)
            if node.invoked is not None:
                targets.append(node.invoked)
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def unreachable_in_graph(self) -> FrozenSet[str]:
        """Node ids not even graph-reachable from the root."""
        return frozenset(self._nodes) - self.graph_reachable_nodes()

    def __repr__(self) -> str:
        return (
            f"RPScheme(name={self.name!r}, nodes={len(self._nodes)}, "
            f"root={self.root!r})"
        )
