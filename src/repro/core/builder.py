"""Fluent construction of RP schemes.

:class:`SchemeBuilder` offers a small declarative API for writing schemes
by hand (the language front-end in :mod:`repro.lang` compiles programs to
schemes through it as well)::

    b = SchemeBuilder("fig2")
    b.action("q0", "a1", "q1")
    b.test("q1", "b2", then="q2", orelse="q3")
    b.pcall("q2", invoked="q7", succ="q4")
    b.wait("q4", "q5")
    b.action("q5", "a3", "q6")
    b.end("q6")
    ...
    scheme = b.build(root="q0")
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SchemeError
from .scheme import Node, NodeKind, RPScheme


class SchemeBuilder:
    """Incremental builder producing a validated :class:`RPScheme`."""

    def __init__(self, name: str = "scheme") -> None:
        self.name = name
        self._nodes: List[Node] = []
        self._ids: Dict[str, Node] = {}
        self._procedures: Dict[str, str] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # Node declarations (each returns the node id, for chaining)
    # ------------------------------------------------------------------

    def action(self, node_id: str, label: str, succ: str) -> str:
        """Declare an action node performing *label* then moving to *succ*."""
        return self._add(Node(node_id, NodeKind.ACTION, label=label, successors=(succ,)))

    def test(self, node_id: str, label: str, then: str, orelse: str) -> str:
        """Declare a test node branching on *label*."""
        return self._add(
            Node(node_id, NodeKind.TEST, label=label, successors=(then, orelse))
        )

    def pcall(self, node_id: str, invoked: str, succ: str) -> str:
        """Declare a pcall node spawning a child at *invoked*."""
        return self._add(
            Node(node_id, NodeKind.PCALL, successors=(succ,), invoked=invoked)
        )

    def wait(self, node_id: str, succ: str) -> str:
        """Declare a wait node joining all children before *succ*."""
        return self._add(Node(node_id, NodeKind.WAIT, successors=(succ,)))

    def end(self, node_id: str) -> str:
        """Declare an end node terminating the invocation."""
        return self._add(Node(node_id, NodeKind.END))

    def procedure(self, name: str, entry: str) -> None:
        """Record that procedure *name* starts at node *entry* (metadata)."""
        if name in self._procedures:
            raise SchemeError(f"duplicate procedure name {name!r}")
        self._procedures[name] = entry

    def fresh_id(self, prefix: str = "q") -> str:
        """Return a node id not used so far (``q0``, ``q1``, ...)."""
        while True:
            candidate = f"{prefix}{self._counter}"
            self._counter += 1
            if candidate not in self._ids:
                return candidate

    def _add(self, node: Node) -> str:
        if node.id in self._ids:
            raise SchemeError(f"duplicate node id {node.id!r}")
        self._ids[node.id] = node
        self._nodes.append(node)
        return node.id

    # ------------------------------------------------------------------

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._ids

    def build(self, root: str, name: Optional[str] = None) -> RPScheme:
        """Validate and return the scheme rooted at *root*."""
        return RPScheme(
            self._nodes,
            root=root,
            name=name if name is not None else self.name,
            procedures=self._procedures,
        )
