"""Embeddings between hierarchical states.

The paper orders hierarchical states by *forest embedding*: ``σ ⪯ σ'`` iff
``σ`` can be obtained from ``σ'`` by deleting some invocations while
preserving the (transitive) ancestor relationships between the remaining
ones.  By Kruskal's Tree Theorem this is a well-quasi-ordering with the
empty state ``∅`` as minimum, and it is the backbone of the decidability
results of Section 3 (sup-reachability, boundedness).

Section 3 also uses a finer *⋆-embedding* with gap conditions (defined in
[KS96a], not reproduced in the paper text).  We implement a parameterised
gap embedding: ``σ ⪯⋆ σ'`` iff there is an embedding of ``σ`` into ``σ'``
such that every *deleted* invocation of ``σ'`` is at a node from a given
``gap`` set.  With ``gap = all nodes`` this degenerates to plain embedding;
with a restricted gap set it is strictly finer, which is what the
inevitability procedure (Theorem 6) needs — see DESIGN.md for the
substitution note.

Deciding unordered-forest embedding is done by a memoised recursion.  Two
distinct source trees may embed into the *same* target tree provided their
images are incomparable (e.g. ``{a, b}`` embeds into ``{c,{a, b}}``); the
algorithm therefore assigns *groups* of source trees to target trees, with
a bipartite-matching fast path for the common injective case.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .hstate import HState

#: One tree of a hierarchical state: an invocation with its children forest.
Tree = Tuple[str, HState]


def embeds(small: HState, big: HState) -> bool:
    """Decide the paper's forest embedding ``small ⪯ big``.

    >>> embeds(HState.parse("a,b"), HState.parse("c,{a,b}"))
    True
    >>> embeds(HState.parse("a,{b}"), HState.parse("b,{a}"))
    False
    """
    return _Embedder().forest_embeds(small, big)


def strictly_embeds(small: HState, big: HState) -> bool:
    """``small ⪯ big`` and ``small ≠ big``."""
    return small != big and embeds(small, big)


def is_minimal_among(state: HState, others: Iterable[HState]) -> bool:
    """``True`` iff no state in *others* strictly embeds into *state*."""
    return not any(strictly_embeds(other, state) for other in others)


class _Embedder:
    """Memoised decision procedure for unordered forest embedding.

    An optional *gap* predicate restricts which target invocations may be
    deleted; ``None`` means every deletion is allowed (plain embedding).
    """

    def __init__(self, gap: Optional[Callable[[str], bool]] = None) -> None:
        self._gap = gap
        self._tree_memo: Dict[Tuple, bool] = {}
        self._root_memo: Dict[Tuple, bool] = {}
        self._forest_memo: Dict[Tuple, bool] = {}
        self._deletable_memo: Dict[Tuple, bool] = {}

    # -- public entry ---------------------------------------------------

    def forest_embeds(self, small: HState, big: HState) -> bool:
        """Decide whether forest *small* embeds into forest *big*."""
        return self._forest(small.items, big.items)

    # -- deletability (gap condition) ----------------------------------

    def _tree_deletable(self, tree: Tree) -> bool:
        """May the whole target *tree* be absent from the image?"""
        if self._gap is None:
            return True
        key = (tree[0], tree[1].sort_key())
        cached = self._deletable_memo.get(key)
        if cached is None:
            cached = self._gap(tree[0]) and all(
                self._tree_deletable(child) for child in tree[1].items
            )
            self._deletable_memo[key] = cached
        return cached

    def _forest_deletable(self, forest: Sequence[Tree]) -> bool:
        return all(self._tree_deletable(tree) for tree in forest)

    # -- tree-level relations -------------------------------------------

    def _tree(self, s: Tree, t: Tree) -> bool:
        """Source tree *s* embeds into target tree *t* (image root anywhere)."""
        key = (s[0], s[1].sort_key(), t[0], t[1].sort_key())
        cached = self._tree_memo.get(key)
        if cached is not None:
            return cached
        result = self._root(s, t)
        if not result and (self._gap is None or self._gap(t[0])):
            # Drop the root of t and descend into one child; all sibling
            # subtrees of that child must then be deletable.
            children = t[1].items
            for index, child in enumerate(children):
                siblings = children[:index] + children[index + 1 :]
                if self._forest_deletable(siblings) and self._tree(s, child):
                    result = True
                    break
        self._tree_memo[key] = result
        return result

    def _root(self, s: Tree, t: Tree) -> bool:
        """*s* embeds into *t* with root mapped to root."""
        if s[0] != t[0]:
            return False
        key = (s[1].sort_key(), t[1].sort_key())
        cached = self._root_memo.get(key)
        if cached is None:
            cached = self._forest(s[1].items, t[1].items)
            self._root_memo[key] = cached
        return cached

    # -- forest-level relation ------------------------------------------

    def _forest(self, sources: Sequence[Tree], targets: Sequence[Tree]) -> bool:
        """Each source tree maps into targets with pairwise-incomparable images.

        Unassigned target trees must be deletable under the gap condition.
        """
        if not sources:
            return self._forest_deletable(targets)
        if sum(1 + s[1].size for s in sources) > sum(1 + t[1].size for t in targets):
            return False
        key = (
            tuple((s[0], s[1].sort_key()) for s in sources),
            tuple((t[0], t[1].sort_key()) for t in targets),
        )
        cached = self._forest_memo.get(key)
        if cached is not None:
            return cached
        result = self._forest_matching(sources, targets) or self._forest_search(
            sources, targets
        )
        self._forest_memo[key] = result
        return result

    def _forest_matching(self, sources: Sequence[Tree], targets: Sequence[Tree]) -> bool:
        """Fast path: injective assignment via bipartite matching.

        Sound but incomplete (two sources may legitimately share a target);
        complete search is attempted when matching fails.  With a gap
        condition the unmatched targets must additionally be deletable, so
        the fast path is only used when all targets are deletable or the
        matching is exact.
        """
        adjacency: List[List[int]] = []
        for s in sources:
            row = [j for j, t in enumerate(targets) if self._tree(s, t)]
            if not row:
                return False
            adjacency.append(row)
        match_of_target: Dict[int, int] = {}

        def augment(i: int, seen: set) -> bool:
            for j in adjacency[i]:
                if j in seen:
                    continue
                seen.add(j)
                if j not in match_of_target or augment(match_of_target[j], seen):
                    match_of_target[j] = i
                    return True
            return False

        for i in range(len(sources)):
            if not augment(i, set()):
                return False
        if self._gap is not None:
            leftovers = [t for j, t in enumerate(targets) if j not in match_of_target]
            if not self._forest_deletable(leftovers):
                return False
        return True

    def _forest_search(self, sources: Sequence[Tree], targets: Sequence[Tree]) -> bool:
        """Complete search: assign a group of sources to each target tree.

        A group of two or more sources assigned to one target must embed
        entirely into that target's children forest (two roots inside one
        tree cannot both sit on its root, and any node of a tree is
        comparable with its root).
        """
        if not targets:
            return not sources
        first, rest = targets[0], targets[1:]
        indices = list(range(len(sources)))
        # Enumerate subsets of sources assigned to `first`; iterate by
        # bitmask over at most a handful of sources (states are small).
        n = len(sources)
        if n > 16:  # pragma: no cover - guard against pathological blowup
            return False
        for mask in range(1 << n):
            group = [sources[i] for i in indices if mask & (1 << i)]
            others = [sources[i] for i in indices if not mask & (1 << i)]
            if not self._fits(group, first):
                continue
            if self._forest(tuple(others), rest):
                return True
        return False

    def _fits(self, group: Sequence[Tree], target: Tree) -> bool:
        if not group:
            return self._tree_deletable(target)
        if len(group) == 1:
            return self._tree(group[0], target)
        # ≥ 2 incomparable images inside one tree: all strictly below the
        # root, i.e. inside the children forest (root consumed as a gap).
        if self._gap is not None and not self._gap(target[0]):
            return False
        return self._forest(tuple(group), target[1].items)


class GapEmbedding:
    """The parameterised ⋆-embedding ``⪯⋆`` (gap-condition embedding).

    ``GapEmbedding(gap_nodes)`` allows only invocations at nodes from
    *gap_nodes* to be deleted; ``GapEmbedding(None)`` allows everything and
    coincides with plain embedding.  Any restriction yields a finer
    ordering: ``σ ⪯⋆ σ'  ⟹  σ ⪯ σ'``.
    """

    def __init__(self, gap_nodes: Optional[Iterable[str]] = None) -> None:
        self._gap_nodes: Optional[FrozenSet[str]] = (
            None if gap_nodes is None else frozenset(gap_nodes)
        )

    @property
    def gap_nodes(self) -> Optional[FrozenSet[str]]:
        """The allowed gap nodes, or ``None`` for the unrestricted variant."""
        return self._gap_nodes

    def embeds(self, small: HState, big: HState) -> bool:
        """Decide ``small ⪯⋆ big``."""
        if self._gap_nodes is None:
            return embeds(small, big)
        gap_nodes = self._gap_nodes
        return _Embedder(gap=lambda node: node in gap_nodes).forest_embeds(small, big)

    def strictly_embeds(self, small: HState, big: HState) -> bool:
        """``small ⪯⋆ big`` and ``small ≠ big``."""
        return small != big and self.embeds(small, big)

    def dominates(self, state: HState, basis: Iterable[HState]) -> bool:
        """``True`` iff *state* is in the upward closure (w.r.t. ⪯⋆) of *basis*."""
        return any(self.embeds(low, state) for low in basis)

    def __repr__(self) -> str:
        if self._gap_nodes is None:
            return "GapEmbedding(None)"
        return f"GapEmbedding({sorted(self._gap_nodes)!r})"


#: The unrestricted embedding, exposed with the same interface as
#: :class:`GapEmbedding` so analysis code can take either.
PLAIN_EMBEDDING = GapEmbedding(None)
