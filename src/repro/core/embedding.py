"""Embeddings between hierarchical states.

The paper orders hierarchical states by *forest embedding*: ``σ ⪯ σ'`` iff
``σ`` can be obtained from ``σ'`` by deleting some invocations while
preserving the (transitive) ancestor relationships between the remaining
ones.  By Kruskal's Tree Theorem this is a well-quasi-ordering with the
empty state ``∅`` as minimum, and it is the backbone of the decidability
results of Section 3 (sup-reachability, boundedness).

Section 3 also uses a finer *⋆-embedding* with gap conditions (defined in
[KS96a], not reproduced in the paper text).  We implement a parameterised
gap embedding: ``σ ⪯⋆ σ'`` iff there is an embedding of ``σ`` into ``σ'``
such that every *deleted* invocation of ``σ'`` is at a node from a given
``gap`` set.  With ``gap = all nodes`` this degenerates to plain embedding;
with a restricted gap set it is strictly finer, which is what the
inevitability procedure (Theorem 6) needs — see DESIGN.md for the
substitution note.

Deciding unordered-forest embedding is done by a memoised recursion.  Two
distinct source trees may embed into the *same* target tree provided their
images are incomparable (e.g. ``{a, b}`` embeds into ``{c,{a, b}}``); the
algorithm therefore assigns *groups* of source trees to target trees, with
a bipartite-matching fast path for the common injective case.

Fast path (see docs/performance.md).  Every :class:`~.hstate.HState`
carries an interned :class:`~.hstate.Signature`; a query ``σ ⪯ σ'`` is
*refuted* in O(distinct nodes) whenever σ's size, height or per-node
occurrence counts are not dominated by σ's — checked before any recursive
matching.  Memo tables are keyed by the states themselves (their hashes
are cached), and an :class:`Embedder` can be shared across calls so the
tables persist; :class:`EmbeddingIndex` manages one shared embedder per
gap-predicate identity for the lifetime of an analysis session and counts
calls, signature refutations and memo hits.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .hstate import HState

#: One tree of a hierarchical state: an invocation with its children forest.
Tree = Tuple[str, HState]


def embeds(small: HState, big: HState, *, embedder: Optional["Embedder"] = None) -> bool:
    """Decide the paper's forest embedding ``small ⪯ big``.

    An *embedder* may be supplied to reuse its memo tables (and, if it
    carries a gap condition, to decide that ⋆-embedding instead); without
    one a throwaway signature-pruned embedder is used.

    >>> embeds(HState.parse("a,b"), HState.parse("c,{a,b}"))
    True
    >>> embeds(HState.parse("a,{b}"), HState.parse("b,{a}"))
    False
    """
    if embedder is None:
        embedder = Embedder()
    return embedder.forest_embeds(small, big)


def naive_embeds(
    small: HState, big: HState, gap_nodes: Optional[Iterable[str]] = None
) -> bool:
    """Reference implementation: per-call memo, no signature pruning.

    This is the historical decision procedure, retained verbatim as the
    differential-testing oracle for the accelerated path (and as the
    "naive" arm of ``benchmarks/bench_wqo_index.py``).  Semantics are
    identical to :func:`embeds` / :meth:`GapEmbedding.embeds`.
    """
    gaps = None if gap_nodes is None else frozenset(gap_nodes)
    return Embedder(gap_nodes=gaps, signatures=False).forest_embeds(small, big)


def strictly_embeds(
    small: HState, big: HState, *, embedder: Optional["Embedder"] = None
) -> bool:
    """``small ⪯ big`` and ``small ≠ big``."""
    return small != big and embeds(small, big, embedder=embedder)


def is_minimal_among(
    state: HState,
    others: Iterable[HState],
    *,
    embedder: Optional["Embedder"] = None,
) -> bool:
    """``True`` iff no state in *others* strictly embeds into *state*.

    Pass a shared *embedder* when screening many states against the same
    pool so all pairs reuse one set of memo tables.
    """
    if embedder is None:
        embedder = Embedder()
    return not any(
        strictly_embeds(other, state, embedder=embedder) for other in others
    )


class Embedder:
    """Memoised decision procedure for unordered forest embedding.

    An optional *gap_nodes* set restricts which target invocations may be
    deleted; ``None`` means every deletion is allowed (plain embedding).
    With ``signatures=True`` (the default) queries are first screened by
    the states' cached :class:`~.hstate.Signature`; ``signatures=False``
    reproduces the unaccelerated reference behaviour.

    Instances are reusable and accumulate memo tables plus three counters
    (``calls``, ``sig_refutations``, ``memo_hits``); create one per gap
    set and keep it for as long as the memoised pairs stay relevant — the
    tables only ever grow (see :class:`EmbeddingIndex` for the managed,
    session-lifetime variant).
    """

    __slots__ = (
        "_gap_nodes",
        "_signatures",
        "_pair_memo",
        "_tree_memo",
        "_root_memo",
        "_forest_memo",
        "_deletable_memo",
        "calls",
        "sig_refutations",
        "memo_hits",
    )

    def __init__(
        self,
        gap_nodes: Optional[FrozenSet[str]] = None,
        *,
        signatures: bool = True,
    ) -> None:
        self._gap_nodes = gap_nodes
        self._signatures = signatures
        self._pair_memo: Dict[Tuple[HState, HState], bool] = {}
        self._tree_memo: Dict[Tuple, bool] = {}
        self._root_memo: Dict[Tuple, bool] = {}
        self._forest_memo: Dict[Tuple, bool] = {}
        self._deletable_memo: Dict[Tree, bool] = {}
        self.calls = 0
        self.sig_refutations = 0
        self.memo_hits = 0

    @property
    def gap_nodes(self) -> Optional[FrozenSet[str]]:
        """The allowed gap nodes (``None`` = plain embedding)."""
        return self._gap_nodes

    def reset(self) -> None:
        """Drop all memo tables, keeping the counters (naive-mode A/B)."""
        self._pair_memo.clear()
        self._tree_memo.clear()
        self._root_memo.clear()
        self._forest_memo.clear()
        self._deletable_memo.clear()

    # -- public entry ---------------------------------------------------

    def forest_embeds(self, small: HState, big: HState) -> bool:
        """Decide whether forest *small* embeds into forest *big*."""
        self.calls += 1
        if small is big:
            return True
        key = (small, big)
        cached = self._pair_memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if self._signatures and not small.signature.dominated_by(big.signature):
            self.sig_refutations += 1
            self._pair_memo[key] = False
            return False
        result = self._forest(small.items, big.items)
        self._pair_memo[key] = result
        return result

    # -- deletability (gap condition) ----------------------------------

    def _tree_deletable(self, tree: Tree) -> bool:
        """May the whole target *tree* be absent from the image?"""
        gaps = self._gap_nodes
        if gaps is None:
            return True
        if self._signatures:
            # every node occurring anywhere in the tree must be a gap node;
            # the fingerprint answers this without walking the tree
            return tree[0] in gaps and all(
                node in gaps for node in tree[1].signature.counts
            )
        cached = self._deletable_memo.get(tree)
        if cached is None:
            cached = tree[0] in gaps and all(
                self._tree_deletable(child) for child in tree[1].items
            )
            self._deletable_memo[tree] = cached
        return cached

    def _forest_deletable(self, forest: Sequence[Tree]) -> bool:
        return all(self._tree_deletable(tree) for tree in forest)

    # -- tree-level relations -------------------------------------------

    def _tree(self, s: Tree, t: Tree) -> bool:
        """Source tree *s* embeds into target tree *t* (image root anywhere)."""
        if self._signatures and self._tree_refuted(s, t):
            return False
        key = (s, t)
        cached = self._tree_memo.get(key)
        if cached is not None:
            return cached
        result = self._root(s, t)
        if not result and (self._gap_nodes is None or t[0] in self._gap_nodes):
            # Drop the root of t and descend into one child; all sibling
            # subtrees of that child must then be deletable.
            children = t[1].items
            for index, child in enumerate(children):
                siblings = children[:index] + children[index + 1 :]
                if self._forest_deletable(siblings) and self._tree(s, child):
                    result = True
                    break
        self._tree_memo[key] = result
        return result

    def _tree_refuted(self, s: Tree, t: Tree) -> bool:
        """Signature check for whole trees (roots included): True = impossible."""
        s_sig, t_sig = s[1].signature, t[1].signature
        if s_sig.size > t_sig.size or s_sig.height > t_sig.height:
            self.sig_refutations += 1
            return True
        t_counts, t_root = t_sig.counts, t[0]
        for node, need in s_sig.counts.items():
            if node == s[0]:
                need += 1
            if t_counts.get(node, 0) + (1 if node == t_root else 0) < need:
                self.sig_refutations += 1
                return True
        if s[0] not in s_sig.counts:
            if t_counts.get(s[0], 0) + (1 if s[0] == t_root else 0) < 1:
                self.sig_refutations += 1
                return True
        return False

    def _root(self, s: Tree, t: Tree) -> bool:
        """*s* embeds into *t* with root mapped to root."""
        if s[0] != t[0]:
            return False
        if self._signatures and not s[1].signature.dominated_by(t[1].signature):
            self.sig_refutations += 1
            return False
        key = (s[1], t[1])
        cached = self._root_memo.get(key)
        if cached is None:
            cached = self._forest(s[1].items, t[1].items)
            self._root_memo[key] = cached
        return cached

    # -- forest-level relation ------------------------------------------

    def _forest(self, sources: Sequence[Tree], targets: Sequence[Tree]) -> bool:
        """Each source tree maps into targets with pairwise-incomparable images.

        Unassigned target trees must be deletable under the gap condition.
        """
        if not sources:
            return self._forest_deletable(targets)
        if sum(1 + s[1].size for s in sources) > sum(1 + t[1].size for t in targets):
            return False
        key = (tuple(sources), tuple(targets))
        cached = self._forest_memo.get(key)
        if cached is not None:
            return cached
        result = self._forest_matching(sources, targets) or self._forest_search(
            sources, targets
        )
        self._forest_memo[key] = result
        return result

    def _forest_matching(self, sources: Sequence[Tree], targets: Sequence[Tree]) -> bool:
        """Fast path: injective assignment via bipartite matching.

        Sound but incomplete (two sources may legitimately share a target);
        complete search is attempted when matching fails.  With a gap
        condition the unmatched targets must additionally be deletable, so
        the fast path is only used when all targets are deletable or the
        matching is exact.
        """
        adjacency: List[List[int]] = []
        for s in sources:
            row = [j for j, t in enumerate(targets) if self._tree(s, t)]
            if not row:
                return False
            adjacency.append(row)
        match_of_target: Dict[int, int] = {}

        def augment(i: int, seen: set) -> bool:
            for j in adjacency[i]:
                if j in seen:
                    continue
                seen.add(j)
                if j not in match_of_target or augment(match_of_target[j], seen):
                    match_of_target[j] = i
                    return True
            return False

        for i in range(len(sources)):
            if not augment(i, set()):
                return False
        if self._gap_nodes is not None:
            leftovers = [t for j, t in enumerate(targets) if j not in match_of_target]
            if not self._forest_deletable(leftovers):
                return False
        return True

    def _forest_search(self, sources: Sequence[Tree], targets: Sequence[Tree]) -> bool:
        """Complete search: assign a group of sources to each target tree.

        A group of two or more sources assigned to one target must embed
        entirely into that target's children forest (two roots inside one
        tree cannot both sit on its root, and any node of a tree is
        comparable with its root).
        """
        if not targets:
            return not sources
        first, rest = targets[0], targets[1:]
        indices = list(range(len(sources)))
        # Enumerate subsets of sources assigned to `first`; iterate by
        # bitmask over at most a handful of sources (states are small).
        n = len(sources)
        if n > 16:  # pragma: no cover - guard against pathological blowup
            return False
        for mask in range(1 << n):
            group = [sources[i] for i in indices if mask & (1 << i)]
            others = [sources[i] for i in indices if not mask & (1 << i)]
            if not self._fits(group, first):
                continue
            if self._forest(tuple(others), rest):
                return True
        return False

    def _fits(self, group: Sequence[Tree], target: Tree) -> bool:
        if not group:
            return self._tree_deletable(target)
        if len(group) == 1:
            return self._tree(group[0], target)
        # ≥ 2 incomparable images inside one tree: all strictly below the
        # root, i.e. inside the children forest (root consumed as a gap).
        if self._gap_nodes is not None and target[0] not in self._gap_nodes:
            return False
        return self._forest(tuple(group), target[1].items)


#: Backwards-compatible alias: the embedder used to be module-private.
_Embedder = Embedder


class GapEmbedding:
    """The parameterised ⋆-embedding ``⪯⋆`` (gap-condition embedding).

    ``GapEmbedding(gap_nodes)`` allows only invocations at nodes from
    *gap_nodes* to be deleted; ``GapEmbedding(None)`` allows everything and
    coincides with plain embedding.  Any restriction yields a finer
    ordering: ``σ ⪯⋆ σ'  ⟹  σ ⪯ σ'``.

    Instances are stateless; to reuse memo tables across calls route the
    queries through an :class:`EmbeddingIndex` (which keys its shared
    embedders by the ``gap_nodes`` set) or pass ``embedder=``.
    """

    def __init__(self, gap_nodes: Optional[Iterable[str]] = None) -> None:
        self._gap_nodes: Optional[FrozenSet[str]] = (
            None if gap_nodes is None else frozenset(gap_nodes)
        )

    @property
    def gap_nodes(self) -> Optional[FrozenSet[str]]:
        """The allowed gap nodes, or ``None`` for the unrestricted variant."""
        return self._gap_nodes

    def embedder(self) -> Embedder:
        """A fresh signature-pruned embedder deciding this ⋆-embedding."""
        return Embedder(gap_nodes=self._gap_nodes)

    def embeds(
        self, small: HState, big: HState, *, embedder: Optional[Embedder] = None
    ) -> bool:
        """Decide ``small ⪯⋆ big``."""
        if embedder is None:
            embedder = self.embedder()
        return embedder.forest_embeds(small, big)

    def strictly_embeds(
        self, small: HState, big: HState, *, embedder: Optional[Embedder] = None
    ) -> bool:
        """``small ⪯⋆ big`` and ``small ≠ big``."""
        return small != big and self.embeds(small, big, embedder=embedder)

    def dominates(
        self,
        state: HState,
        basis: Iterable[HState],
        *,
        embedder: Optional[Embedder] = None,
    ) -> bool:
        """``True`` iff *state* is in the upward closure (w.r.t. ⪯⋆) of *basis*."""
        if embedder is None:
            embedder = self.embedder()
        return any(self.embeds(low, state, embedder=embedder) for low in basis)

    def __repr__(self) -> str:
        if self._gap_nodes is None:
            return "GapEmbedding(None)"
        return f"GapEmbedding({sorted(self._gap_nodes)!r})"


#: The unrestricted embedding, exposed with the same interface as
#: :class:`GapEmbedding` so analysis code can take either.
PLAIN_EMBEDDING = GapEmbedding(None)


class EmbeddingIndex:
    """Session-lifetime embedding memoisation, keyed by gap identity.

    One shared :class:`Embedder` per gap-predicate identity (the
    ``gap_nodes`` frozenset; ``None`` for plain embedding, which every
    plain query shares), so the memoised pairs of *all* decision
    procedures running on one :class:`~repro.analysis.session.AnalysisSession`
    accumulate in the same tables.  Counters aggregate over all embedders
    and feed ``AnalysisStats`` / ``rpcheck --stats``.

    ``accelerated=False`` turns the index into the *naive* reference
    harness: signature pruning is disabled and the memo tables are
    dropped before every query (per-call memoisation only), reproducing
    the historical cost model while keeping the counters — this is the
    A/B switch used by ``benchmarks/bench_wqo_index.py``.

    Identity caveat: two gap predicates are considered the same iff their
    ``gap_nodes`` sets are equal; gap conditions not expressible as a
    node set must not be routed through an index (see
    docs/performance.md).
    """

    def __init__(self, *, accelerated: bool = True) -> None:
        self.accelerated = accelerated
        self._embedders: Dict[Optional[FrozenSet[str]], Embedder] = {}

    def embedder_for(self, gap_nodes: Optional[FrozenSet[str]] = None) -> Embedder:
        """The shared embedder deciding the (⋆-)embedding for *gap_nodes*."""
        shared = self._embedders.get(gap_nodes)
        if shared is None:
            shared = Embedder(gap_nodes=gap_nodes, signatures=self.accelerated)
            self._embedders[gap_nodes] = shared
        elif not self.accelerated:
            shared.reset()
        return shared

    def embeds(
        self,
        small: HState,
        big: HState,
        embedding: Optional[GapEmbedding] = None,
    ) -> bool:
        """Decide ``small ⪯ big`` (or ``⪯⋆`` under *embedding*), memoised."""
        gap_nodes = None if embedding is None else embedding.gap_nodes
        return self.embedder_for(gap_nodes).forest_embeds(small, big)

    def strictly_embeds(
        self,
        small: HState,
        big: HState,
        embedding: Optional[GapEmbedding] = None,
    ) -> bool:
        """``small ⪯ big`` (or ``⪯⋆``) and ``small ≠ big``."""
        return small != big and self.embeds(small, big, embedding)

    def dominates(
        self,
        state: HState,
        basis: Iterable[HState],
        embedding: Optional[GapEmbedding] = None,
    ) -> bool:
        """``True`` iff some element of *basis* (⋆-)embeds into *state*."""
        gap_nodes = None if embedding is None else embedding.gap_nodes
        shared = self.embedder_for(gap_nodes)
        return any(shared.forest_embeds(low, state) for low in basis)

    # -- counters -------------------------------------------------------

    @property
    def calls(self) -> int:
        """Top-level embedding queries answered so far."""
        return sum(e.calls for e in self._embedders.values())

    @property
    def signature_refutations(self) -> int:
        """Queries refuted by the signature domination test alone."""
        return sum(e.sig_refutations for e in self._embedders.values())

    @property
    def memo_hits(self) -> int:
        """Top-level queries answered from the session-lifetime pair memo."""
        return sum(e.memo_hits for e in self._embedders.values())

    def counters(self) -> Dict[str, int]:
        """A snapshot of the aggregate counters (JSON-ready)."""
        return {
            "calls": self.calls,
            "signature_refutations": self.signature_refutations,
            "memo_hits": self.memo_hits,
        }

    def embedders(self):
        """``(gap_key, embedder)`` pairs, one per distinct gap identity.

        The per-gap breakdown behind the aggregate counter properties;
        metrics publication labels counters by gap key from this.
        """
        return iter(self._embedders.items())

    def __repr__(self) -> str:
        mode = "accelerated" if self.accelerated else "naive"
        return (
            f"EmbeddingIndex({mode}, gap_keys={len(self._embedders)}, "
            f"calls={self.calls}, refutations={self.signature_refutations}, "
            f"hits={self.memo_hits})"
        )
