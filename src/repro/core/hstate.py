"""Hierarchical states (Definition 1 of the paper).

A hierarchical state of a scheme ``G`` is the least set ``M(G)`` such that,
whenever ``q1..qn`` are nodes of ``G`` and ``σ1..σn`` are hierarchical
states, the multiset ``{(q1,σ1), ..., (qn,σn)}`` is a hierarchical state.
In particular the empty multiset ``∅`` is one.

Hierarchical states are thus *unordered forests* whose vertices are labelled
by scheme nodes; the pair ``(q, σ)`` is one invocation, currently at node
``q``, together with the family ``σ`` of children invocations it has spawned.

The implementation is an immutable, canonically-sorted tuple of
``(node, child_state)`` pairs.  Canonicalisation makes equality and hashing
of these nested multisets O(size) after construction, which the analysis
algorithms rely on heavily.

The textual notation of the paper is supported: the state pictured in
Fig. 3 is written ``q1,{q9,{q11},q12,{q10}}`` and both :func:`HState.parse`
and :meth:`HState.to_notation` use exactly that concrete syntax (commas and
braces; commas are optional separators on input).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import NotationError, StateError

#: A path addressing one invocation (token) inside a hierarchical state:
#: the sequence of item indices taken from the root multiset downwards.
Path = Tuple[int, ...]

#: The loose specification formats accepted by :meth:`HState.of`.
Spec = Union[str, Tuple[str, object], "HState"]


class Signature:
    """A constant-size summary of a state used to *refute* embeddings fast.

    Forest embedding is monotone in every component recorded here: if
    ``σ ⪯ σ'`` then ``size(σ) ≤ size(σ')``, ``height(σ) ≤ height(σ')``,
    and every scheme node occurs in ``σ`` at most as often as in ``σ'``.
    :meth:`dominated_by` checks exactly these necessary conditions, so
    ``not a.signature.dominated_by(b.signature)`` disproves ``a ⪯ b``
    without touching the recursive matcher — the fast path of
    :mod:`repro.core.embedding`.

    Signatures are interned: states with identical summaries share one
    instance, making the common ``self is other`` comparison O(1).  The
    per-node occurrence fingerprint is bounded by the scheme's (finite)
    node set, so each signature is constant-size for a fixed scheme.
    """

    __slots__ = ("size", "height", "width", "counts")

    #: Process-lifetime intern table (see docs/performance.md for the
    #: memory note); keyed by the full summary tuple.
    _intern: Dict[Tuple, "Signature"] = {}

    def __init__(self, size: int, height: int, width: int, counts: Mapping[str, int]) -> None:
        self.size = size
        self.height = height
        self.width = width
        self.counts: Dict[str, int] = dict(counts)

    @classmethod
    def of(cls, size: int, height: int, width: int, counts: Mapping[str, int]) -> "Signature":
        """The interned signature with the given components."""
        key = (size, height, width, tuple(sorted(counts.items())))
        cached = cls._intern.get(key)
        if cached is None:
            cached = cls(size, height, width, counts)
            cls._intern[key] = cached
        return cached

    def dominated_by(self, other: "Signature") -> bool:
        """Necessary condition for embedding: every component ≤ *other*'s.

        Returns ``False`` only when the corresponding embedding is
        impossible; ``True`` says nothing beyond "not refuted".
        """
        if self is other:
            return True
        if self.size > other.size or self.height > other.height:
            return False
        if len(self.counts) > len(other.counts):
            return False
        other_counts = other.counts
        for node, count in self.counts.items():
            if other_counts.get(node, 0) < count:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"Signature(size={self.size}, height={self.height}, "
            f"width={self.width}, counts={dict(sorted(self.counts.items()))!r})"
        )


class HState:
    """An immutable hierarchical state (a finite multiset of invocations).

    Instances are canonical: two states built from the same multiset in any
    order are equal, hash equal and share the same notation string.
    """

    __slots__ = ("_items", "_key", "_hash", "_size", "_height", "_signature")

    def __init__(self, items: Iterable[Tuple[str, "HState"]] = ()) -> None:
        pairs: List[Tuple[str, HState]] = []
        for node, child in items:
            if not isinstance(node, str) or not node:
                raise StateError(f"invocation node must be a non-empty string, got {node!r}")
            if not isinstance(child, HState):
                raise StateError(f"child state must be an HState, got {type(child).__name__}")
            pairs.append((node, child))
        pairs.sort(key=lambda pair: (pair[0], pair[1]._key))
        self._items: Tuple[Tuple[str, HState], ...] = tuple(pairs)
        self._key: Tuple = tuple((node, child._key) for node, child in self._items)
        self._hash: int = hash(self._key)
        self._size: int = sum(1 + child._size for _, child in self._items)
        self._height: int = max((1 + child._height for _, child in self._items), default=0)
        counts: Dict[str, int] = {}
        for node, child in self._items:
            counts[node] = counts.get(node, 0) + 1
            for inner, occurrences in child._signature.counts.items():
                counts[inner] = counts.get(inner, 0) + occurrences
        self._signature: Signature = Signature.of(
            self._size, self._height, len(self._items), counts
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "HState":
        """The empty state ``∅`` (every invocation terminated)."""
        return _EMPTY

    @classmethod
    def leaf(cls, node: str) -> "HState":
        """A single invocation at *node* with no children: ``{(q, ∅)}``."""
        return cls(((node, _EMPTY),))

    @classmethod
    def tree(cls, node: str, children: "HState") -> "HState":
        """A single invocation at *node* whose children are *children*."""
        return cls(((node, children),))

    @classmethod
    def of(cls, *specs: Spec) -> "HState":
        """Build a state from a loose specification.

        Each argument is one top-level invocation, given as either

        * a node name string (a childless invocation),
        * a pair ``(node, child_spec)`` where ``child_spec`` is an
          :class:`HState`, a node name, or a list/tuple of specifications, or
        * an :class:`HState` holding exactly one invocation.

        >>> HState.of("q1", ("q2", ["q3", "q4"])).to_notation()
        'q1,q2,{q3,q4}'
        """
        items: List[Tuple[str, HState]] = []
        for spec in specs:
            items.append(cls._item_of(spec))
        return cls(items)

    @classmethod
    def _item_of(cls, spec: Spec) -> Tuple[str, "HState"]:
        if isinstance(spec, str):
            return (spec, _EMPTY)
        if isinstance(spec, HState):
            if len(spec._items) != 1:
                raise StateError("an HState used as a single invocation must hold exactly one invocation")
            return spec._items[0]
        if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
            node, child_spec = spec
            return (node, cls._state_of(child_spec))
        raise StateError(f"cannot interpret {spec!r} as an invocation")

    @classmethod
    def _state_of(cls, spec: object) -> "HState":
        if isinstance(spec, HState):
            return spec
        if isinstance(spec, str):
            return cls.leaf(spec)
        if isinstance(spec, (list, tuple)):
            if len(spec) == 2 and isinstance(spec[0], str) and not isinstance(spec, list):
                return cls(((spec[0], cls._state_of(spec[1])),))
            return cls.of(*spec)
        raise StateError(f"cannot interpret {spec!r} as a hierarchical state")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def items(self) -> Tuple[Tuple[str, "HState"], ...]:
        """The canonical tuple of ``(node, child_state)`` invocations."""
        return self._items

    @property
    def size(self) -> int:
        """Total number of invocations (tokens) anywhere in the state."""
        return self._size

    @property
    def height(self) -> int:
        """Depth of the deepest invocation (0 for the empty state)."""
        return self._height

    @property
    def width(self) -> int:
        """Number of top-level invocations."""
        return len(self._items)

    @property
    def signature(self) -> Signature:
        """The interned embedding-refutation summary (see :class:`Signature`)."""
        return self._signature

    def is_empty(self) -> bool:
        """``True`` iff this is the terminated state ``∅``."""
        return not self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Tuple[str, "HState"]]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if self is other:
            # hash-consed states (see MemoizingSemantics.intern) collapse
            # equality to identity on the exploration hot paths
            return True
        if not isinstance(other, HState):
            return NotImplemented
        return self._hash == other._hash and self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> Tuple:
        """A total-order key; used to canonicalise collections of states."""
        return self._key

    def __lt__(self, other: "HState") -> bool:
        if not isinstance(other, HState):
            return NotImplemented
        return self._key < other._key

    # ------------------------------------------------------------------
    # Multiset algebra (the paper's ``+`` and inclusion)
    # ------------------------------------------------------------------

    def __add__(self, other: "HState") -> "HState":
        """Multiset union of top-level invocations (the paper's ``σ + σ'``)."""
        if not isinstance(other, HState):
            return NotImplemented
        if not other._items:
            return self
        if not self._items:
            return other
        return HState(self._items + other._items)

    def __sub__(self, other: "HState") -> "HState":
        """Multiset difference; *other* must be included at top level."""
        if not isinstance(other, HState):
            return NotImplemented
        remaining = Counter(other._items)
        kept: List[Tuple[str, HState]] = []
        for item in self._items:
            if remaining[item] > 0:
                remaining[item] -= 1
            else:
                kept.append(item)
        if any(count > 0 for count in remaining.values()):
            raise StateError("multiset difference: subtrahend is not included in this state")
        return HState(kept)

    def includes(self, other: "HState") -> bool:
        """Top-level multiset inclusion (the paper's ``σ' ⊆ σ``).

        This compares whole trees for equality; for the behavioural
        (Kruskal) embedding ``⪯`` see :mod:`repro.core.embedding`.
        """
        counts = Counter(self._items)
        counts.subtract(Counter(other._items))
        return all(count >= 0 for count in counts.values())

    def count(self, node: str, child: Optional["HState"] = None) -> int:
        """Number of top-level invocations at *node* (with children *child*)."""
        if child is None:
            return sum(1 for n, _ in self._items if n == node)
        return sum(1 for item in self._items if item == (node, child))

    # ------------------------------------------------------------------
    # Node (token) views
    # ------------------------------------------------------------------

    def node_multiset(self) -> Counter:
        """Multiset of all scheme nodes occurring anywhere in the state.

        This is the *marking* view of Fig. 4: how many tokens sit on each
        scheme node, forgetting the parent-child hierarchy.  Answered in
        O(distinct nodes) from the cached :class:`Signature` fingerprint.
        """
        return Counter(self._signature.counts)

    def top_nodes(self) -> Counter:
        """Multiset of the nodes of top-level invocations only."""
        return Counter(node for node, _ in self._items)

    def contains_node(self, node: str) -> bool:
        """``True`` iff some invocation anywhere is at *node* (O(1))."""
        return node in self._signature.counts

    def contains_all_nodes(self, nodes: Sequence[str]) -> bool:
        """``True`` iff every node of *nodes* occurs somewhere in the state.

        Multiplicities are respected: ``contains_all_nodes(["q", "q"])``
        requires two distinct invocations at ``q``.
        """
        counts = self._signature.counts
        needed = Counter(nodes)
        return all(counts.get(node, 0) >= count for node, count in needed.items())

    def contains_any_node(self, nodes: Iterable[str]) -> bool:
        """``True`` iff at least one node of *nodes* occurs in the state."""
        counts = self._signature.counts
        return any(node in counts for node in nodes)

    # ------------------------------------------------------------------
    # Positions and surgery (used by the operational semantics)
    # ------------------------------------------------------------------

    def positions(self) -> Iterator[Tuple[Path, str, "HState"]]:
        """Iterate over all invocations as ``(path, node, children)``.

        Paths address invocations through the canonical item tuples, so they
        are stable identifiers within this state (but not across states).
        Iteration order is outer-first, left-to-right in canonical order.
        """
        stack: List[Tuple[Path, HState]] = [((), self)]
        while stack:
            prefix, state = stack.pop()
            for index, (node, child) in enumerate(state._items):
                path = prefix + (index,)
                yield path, node, child
                if child._items:
                    stack.append((path, child))

    def subtree(self, path: Path) -> Tuple[str, "HState"]:
        """The invocation ``(node, children)`` at *path*."""
        state = self
        for index in path[:-1]:
            state = state._items[index][1]
        return state._items[path[-1]]

    def replace(self, path: Path, replacement: Iterable[Tuple[str, "HState"]]) -> "HState":
        """Rebuild the state with the invocation at *path* replaced.

        *replacement* is a (possibly empty) collection of invocations that
        take the place of the addressed one — this single operation expresses
        all transition rules: ``action``/``wait`` replace ``(q,σ)`` by
        ``(q',σ)``, ``call`` by ``(q', σ + {(q'',∅)})``, and ``end`` by the
        items of ``σ`` (children are released into the enclosing context).
        """
        if not path:
            raise StateError("the empty path does not address an invocation")
        return self._replace(path, 0, tuple(replacement))

    def _replace(
        self,
        path: Path,
        depth: int,
        replacement: Tuple[Tuple[str, "HState"], ...],
    ) -> "HState":
        index = path[depth]
        if index >= len(self._items):
            raise StateError(f"path {path!r} does not address an invocation")
        items = list(self._items)
        if depth == len(path) - 1:
            items[index : index + 1] = list(replacement)
        else:
            node, child = items[index]
            items[index] = (node, child._replace(path, depth + 1, replacement))
        return HState(items)

    # ------------------------------------------------------------------
    # Notation (the paper's concrete syntax, Fig. 3)
    # ------------------------------------------------------------------

    def to_notation(self) -> str:
        """Render in the paper's notation, e.g. ``q1,{q9,{q11},q12,{q10}}``.

        The empty state renders as ``∅``.
        """
        if not self._items:
            return "∅"
        parts: List[str] = []
        for node, child in self._items:
            if child._items:
                parts.append(f"{node},{{{child.to_notation()}}}")
            else:
                parts.append(node)
        return ",".join(parts)

    @classmethod
    def parse(cls, text: str) -> "HState":
        """Parse the paper's notation back into a state.

        Grammar (commas are optional separators)::

            state    ::=  item*            item ::= NODE group?
            group    ::=  "{" state "}"    NODE ::= [A-Za-z_][A-Za-z0-9_']*

        ``∅``, ``{}`` and the empty string all denote the empty state.

        >>> HState.parse("q1,{q9,{q11},q12,{q10}}").size
        5
        """
        tokens = _tokenize_notation(text)
        state, rest = _parse_state(tokens, 0)
        if rest != len(tokens):
            raise NotationError(f"unexpected {tokens[rest][0]!r} at end of state notation")
        return state

    def __repr__(self) -> str:
        return f"HState.parse({self.to_notation()!r})"


def _tokenize_notation(text: str) -> List[Tuple[str, int]]:
    tokens: List[Tuple[str, int]] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch in " \t\r\n,":
            i += 1
        elif ch in "{}":
            tokens.append((ch, i))
            i += 1
        elif ch == "∅":
            i += 1
        elif ch.isalnum() or ch == "_":
            start = i
            while i < len(text) and (text[i].isalnum() or text[i] in "_'"):
                i += 1
            tokens.append((text[start:i], start))
        else:
            raise NotationError(f"unexpected character {ch!r} at offset {i} in state notation")
    return tokens


def _parse_state(tokens: List[Tuple[str, int]], pos: int) -> Tuple[HState, int]:
    items: List[Tuple[str, HState]] = []
    while pos < len(tokens) and tokens[pos][0] not in "{}":
        node = tokens[pos][0]
        pos += 1
        child = _EMPTY
        if pos < len(tokens) and tokens[pos][0] == "{":
            child, pos = _parse_group(tokens, pos)
        items.append((node, child))
    return HState(items), pos


def _parse_group(tokens: List[Tuple[str, int]], pos: int) -> Tuple[HState, int]:
    assert tokens[pos][0] == "{"
    state, pos = _parse_state(tokens, pos + 1)
    if pos >= len(tokens) or tokens[pos][0] != "}":
        raise NotationError("unbalanced '{' in state notation")
    return state, pos + 1


#: The unique empty hierarchical state ``∅``.
_EMPTY = HState()
EMPTY = _EMPTY
