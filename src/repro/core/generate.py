"""Random generation of well-formed RP schemes.

Used by the property-based layer of the test-suite for *differential*
validation: random schemes are fed to independent implementations of the
same question (forward vs. backward coverability, saturation vs. pump
detection, direct vs. inevitability-based halting) and the answers are
required to agree.  The generator is seed-deterministic, so failures are
reproducible.

Generated schemes are always valid (`RPScheme` construction validates);
procedures that happen never to be pcalled stay as graph-unreachable
regions — deliberately kept, since unreachable nodes are exactly what the
coverability refutation paths need to exercise.  Knobs control size, the
number of procedures, and whether `wait` nodes appear (several procedures'
completeness envelopes differ on wait-free schemes).
"""

from __future__ import annotations

import random
from typing import List, Optional

from .builder import SchemeBuilder
from .hstate import HState
from .scheme import RPScheme


def random_scheme(
    seed: int,
    max_nodes: int = 10,
    procedures: int = 2,
    allow_wait: bool = True,
    action_names: int = 3,
) -> RPScheme:
    """Generate a random scheme, deterministically from *seed*.

    Each procedure is a random structured chain of nodes: actions, tests
    (branching to random earlier-or-later nodes of the same procedure,
    creating loops), pcalls (to a random procedure) and optional waits,
    ending in an END node.
    """
    rng = random.Random(seed)
    builder = SchemeBuilder(f"random{seed}")
    per_procedure = max(2, max_nodes // procedures)

    # first pass: reserve node ids per procedure so tests and pcalls can
    # point anywhere
    proc_nodes: List[List[str]] = []
    for proc in range(procedures):
        count = rng.randint(2, per_procedure)
        proc_nodes.append([f"p{proc}n{i}" for i in range(count)])

    for proc, nodes in enumerate(proc_nodes):
        for index, node_id in enumerate(nodes):
            is_last = index == len(nodes) - 1
            succ = nodes[index + 1] if not is_last else None
            if is_last:
                builder.end(node_id)
                continue
            kind = rng.choice(
                ["action", "action", "test", "pcall"]
                + (["wait"] if allow_wait else [])
            )
            if kind == "action":
                builder.action(node_id, f"a{rng.randrange(action_names)}", succ)
            elif kind == "test":
                other = rng.choice(nodes)
                builder.test(
                    node_id, f"b{rng.randrange(action_names)}", then=succ, orelse=other
                )
            elif kind == "pcall":
                callee_proc = rng.randrange(procedures)
                builder.pcall(node_id, invoked=proc_nodes[callee_proc][0], succ=succ)
            else:
                builder.wait(node_id, succ)
        builder.procedure(f"proc{proc}", nodes[0])
    return builder.build(root=proc_nodes[0][0])


def random_schemes(
    count: int,
    base_seed: int = 0,
    **kwargs,
) -> List[RPScheme]:
    """A reproducible batch of random schemes."""
    return [random_scheme(base_seed + offset, **kwargs) for offset in range(count)]


def random_hstate(
    seed: int,
    nodes: Optional[List[str]] = None,
    max_size: int = 8,
) -> HState:
    """A random hierarchical state, deterministically from *seed*.

    Draws a uniform size in ``0..max_size`` and a random unordered forest
    of that many vertices labelled from *nodes* (default ``a/b/c`` — a
    small alphabet keeps embedding queries non-trivial: distinct states
    share labels, so refutations need structure, not just vocabulary).
    Used by the differential tests of the accelerated embedding path.
    """
    rng = random.Random(seed)
    alphabet = tuple(nodes) if nodes else ("a", "b", "c")
    return _random_forest(rng, alphabet, rng.randint(0, max_size))


def _random_forest(rng: random.Random, nodes, size: int) -> HState:
    items = []
    remaining = size
    while remaining > 0:
        take = rng.randint(1, remaining)
        remaining -= take
        items.append((rng.choice(nodes), _random_forest(rng, nodes, take - 1)))
    return HState(items)
