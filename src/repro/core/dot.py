"""DOT (Graphviz) rendering of schemes and marked schemes.

The paper draws schemes with shape-coded nodes (Fig. 2) and hierarchical
states as markings with dotted parent-child links between tokens (Fig. 4).
These functions produce textual DOT for both views; no Graphviz binary is
required to generate the text.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .hstate import HState
from .scheme import NodeKind, RPScheme

_SHAPES: Dict[NodeKind, str] = {
    NodeKind.ACTION: "box",
    NodeKind.TEST: "ellipse",
    NodeKind.PCALL: "pentagon",
    NodeKind.WAIT: "triangle",
    NodeKind.END: "doublecircle",
}


def _node_caption(scheme: RPScheme, node_id: str) -> str:
    node = scheme.node(node_id)
    if node.label is not None:
        return f"{node.id}\\n{node.label}"
    if node.kind is NodeKind.PCALL:
        return f"{node.id}\\npcall"
    if node.kind is NodeKind.WAIT:
        return f"{node.id}\\nwait"
    return f"{node.id}\\nend"


def scheme_to_dot(scheme: RPScheme, marking: Optional[HState] = None) -> str:
    """Render *scheme* as DOT, optionally overlaying a hierarchical state.

    With a *marking*, each node is annotated with its token count (the
    Fig. 4 view) and the parent-child hierarchy between tokens is drawn as
    dotted edges between the nodes hosting them.
    """
    lines: List[str] = [f'digraph "{scheme.name}" {{', "  rankdir=TB;"]
    counts = marking.node_multiset() if marking is not None else {}
    for node in scheme:
        caption = _node_caption(scheme, node.id)
        tokens = counts.get(node.id, 0)
        if marking is not None and tokens:
            caption += f"\\n● × {tokens}"
        style = ' style=filled fillcolor="#ffe9a8"' if tokens else ""
        lines.append(
            f'  "{node.id}" [shape={_SHAPES[node.kind]} label="{caption}"{style}];'
        )
    lines.append(f'  init [shape=point]; init -> "{scheme.root}";')
    for node in scheme:
        if node.kind is NodeKind.TEST:
            then_branch, else_branch = node.successors
            lines.append(f'  "{node.id}" -> "{then_branch}" [label="then"];')
            lines.append(f'  "{node.id}" -> "{else_branch}" [label="else"];')
        else:
            for succ in node.successors:
                lines.append(f'  "{node.id}" -> "{succ}";')
        if node.invoked is not None:
            lines.append(f'  "{node.id}" -> "{node.invoked}" [style=dashed label="invokes"];')
    if marking is not None:
        for path, node_id, children in marking.positions():
            for child_node, _ in children.items:
                lines.append(
                    f'  "{node_id}" -> "{child_node}" '
                    f'[style=dotted constraint=false color="#888888"];'
                )
    lines.append("}")
    return "\n".join(lines)


def hstate_to_dot(state: HState, name: str = "hstate") -> str:
    """Render a hierarchical state as a forest (the Fig. 3 view)."""
    lines: List[str] = [f'digraph "{name}" {{', "  node [shape=circle];"]
    for path, node_id, _children in state.positions():
        token = "t" + "_".join(map(str, path))
        lines.append(f'  {token} [label="{node_id}"];')
        if len(path) > 1:
            parent = "t" + "_".join(map(str, path[:-1]))
            lines.append(f"  {parent} -> {token} [style=dotted];")
    lines.append("}")
    return "\n".join(lines)
