"""Core model: hierarchical states, embeddings, RP schemes, semantics."""

from .alphabet import TAU, Alphabet, is_silent, is_visible
from .builder import SchemeBuilder
from .dot import hstate_to_dot, scheme_to_dot
from .embedding import (
    PLAIN_EMBEDDING,
    Embedder,
    EmbeddingIndex,
    GapEmbedding,
    embeds,
    is_minimal_among,
    naive_embeds,
    strictly_embeds,
)
from .hstate import EMPTY, HState, Path, Signature
from .scheme import Node, NodeKind, RPScheme
from .semantics import AbstractSemantics, Descriptor, MemoizingSemantics, Transition
from .generate import random_hstate, random_scheme, random_schemes
from .isomorphism import find_isomorphism, isomorphic
from .serialize import (hstate_from_json, hstate_to_json, scheme_from_dict, scheme_from_json, scheme_to_dict, scheme_to_json)

__all__ = [
    "random_hstate",
    "random_scheme",
    "random_schemes",
    "find_isomorphism",
    "isomorphic",
    "hstate_from_json",
    "hstate_to_json",
    "scheme_from_dict",
    "scheme_from_json",
    "scheme_to_dict",
    "scheme_to_json",

    "TAU",
    "Alphabet",
    "is_silent",
    "is_visible",
    "SchemeBuilder",
    "hstate_to_dot",
    "scheme_to_dot",
    "PLAIN_EMBEDDING",
    "Embedder",
    "EmbeddingIndex",
    "GapEmbedding",
    "embeds",
    "is_minimal_among",
    "naive_embeds",
    "strictly_embeds",
    "EMPTY",
    "HState",
    "Path",
    "Signature",
    "Node",
    "NodeKind",
    "RPScheme",
    "AbstractSemantics",
    "Descriptor",
    "MemoizingSemantics",
    "Transition",
]
