"""Action alphabets and transition labels.

The paper works with an uninterpreted countable alphabet ``A`` of abstract
action names (``a1``, ``b2``, ...) extended with a silent label ``τ``:

    A_τ = A ∪ {τ}

Transitions produced by the structural constructs (``pcall``, ``wait``,
``end``) are labelled ``τ``; action and test nodes are labelled with their
action name.  We represent labels as plain strings and reserve
:data:`TAU` for the silent label, which keeps states and traces cheap to
hash and compare.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: The silent (internal) label, written ``τ`` in the paper.
TAU = "τ"


def is_silent(label: str) -> bool:
    """Return ``True`` iff *label* is the silent label ``τ``."""
    return label == TAU


def is_visible(label: str) -> bool:
    """Return ``True`` iff *label* is an ordinary action name (not ``τ``)."""
    return label != TAU


class Alphabet:
    """A finite action alphabet ``A`` (a set of visible action names).

    The class is a thin, immutable wrapper over a frozenset that checks the
    reserved ``τ`` label is never used as an ordinary action, and offers the
    ``A_τ`` view used for labelling transition systems.
    """

    __slots__ = ("_names",)

    def __init__(self, names: Iterable[str]) -> None:
        names = frozenset(names)
        if TAU in names:
            raise ValueError("the silent label τ cannot be a visible action")
        for name in names:
            if not name:
                raise ValueError("action names must be non-empty strings")
        self._names = names

    @property
    def names(self) -> frozenset:
        """The visible action names, as a frozenset."""
        return self._names

    def with_tau(self) -> frozenset:
        """The full label set ``A_τ = A ∪ {τ}``."""
        return self._names | {TAU}

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._names))

    def __len__(self) -> int:
        return len(self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __or__(self, other: "Alphabet") -> "Alphabet":
        if not isinstance(other, Alphabet):
            return NotImplemented
        return Alphabet(self._names | other._names)

    def __repr__(self) -> str:
        return f"Alphabet({sorted(self._names)!r})"
