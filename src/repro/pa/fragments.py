"""The process-algebra fragment landscape: BPA, BPP, PA.

The paper situates RP schemes among the "specific fragments (BPP, PA, …)
of general process algebra" under investigation at the time:

* **BPA** (Basic Process Algebra): action, choice, *sequential*
  composition, guarded recursion — no parallelism (context-free
  processes);
* **BPP** (Basic Parallel Processes): action prefixing, choice, *merge* —
  no general sequential composition (commutative, Petri-net-like);
* **PA**: both `·` and `∥` — the class whose languages coincide with RP
  schemes'.

:func:`classify` places a :class:`~repro.pa.terms.PASystem` in the
smallest of these fragments; the translation of a structured RP program
lands in BPA exactly when the program never pcalls, and in proper PA as
soon as a pcall's children run in parallel with a sequential
continuation.
"""

from __future__ import annotations

from typing import Iterator, Set

from .terms import Act, Choice, Nil, PASystem, Par, Seq, Term, Var

#: Fragment names, ordered by inclusion.
BPA = "BPA"
BPP = "BPP"
PA = "PA"
FINITE = "finite"  # no recursion reachable: both a BPA and a BPP term


def _subterms(term: Term) -> Iterator[Term]:
    yield term
    if isinstance(term, (Seq, Par, Choice)):
        yield from _subterms(term.left)
        yield from _subterms(term.right)


def uses_parallelism(system: PASystem) -> bool:
    """Does any reachable definition (or the root) contain ``∥``?"""
    return any(
        isinstance(sub, Par)
        for term in _reachable_terms(system)
        for sub in _subterms(term)
    )


def uses_general_sequencing(system: PASystem) -> bool:
    """Does the system use ``X·Y`` beyond action prefixing?

    ``a·X`` (an action followed by anything) is prefixing and is allowed
    in BPP; any other left operand makes the sequencing general.
    """
    for term in _reachable_terms(system):
        for sub in _subterms(term):
            if isinstance(sub, Seq) and not isinstance(sub.left, Act):
                return True
    return False


def uses_recursion(system: PASystem) -> bool:
    """Is some process variable reachable from the root?"""
    return bool(_reachable_variables(system))


def _reachable_variables(system: PASystem) -> Set[str]:
    seen: Set[str] = set()
    frontier = [system.root]
    while frontier:
        term = frontier.pop()
        for sub in _subterms(term):
            if isinstance(sub, Var) and sub.name not in seen:
                seen.add(sub.name)
                frontier.append(system.definitions[sub.name])
    return seen

def _reachable_terms(system: PASystem) -> Iterator[Term]:
    yield system.root
    for name in _reachable_variables(system):
        yield system.definitions[name]


def classify(system: PASystem) -> str:
    """The smallest fragment containing *system*.

    Returns one of ``"finite"``, ``"BPA"``, ``"BPP"``, ``"PA"``.
    """
    parallel = uses_parallelism(system)
    sequencing = uses_general_sequencing(system)
    if parallel and sequencing:
        return PA
    if parallel:
        return BPP
    if not uses_recursion(system) and not parallel:
        return FINITE
    return BPA


# ----------------------------------------------------------------------
# Canonical inhabitants (tests, examples, documentation)
# ----------------------------------------------------------------------


def bpa_anbn() -> PASystem:
    """The context-free classic ``{aⁿbⁿ}``: X = a·(X·b) + a·b (proper BPA)."""
    return PASystem(
        {
            "X": Choice(
                Seq(Act("a"), Seq(Var("X"), Act("b"))),
                Seq(Act("a"), Act("b")),
            )
        },
        root=Var("X"),
    )


def bpp_bag() -> PASystem:
    """A BPP token bag: X = a·(X ∥ b) + a·b — commutative parallelism."""
    return PASystem(
        {
            "X": Choice(
                Seq(Act("a"), Par(Var("X"), Act("b"))),
                Seq(Act("a"), Act("b")),
            )
        },
        root=Var("X"),
    )


def pa_nested_fork() -> PASystem:
    """Proper PA: a parallel pair sequenced before a barrier action."""
    return PASystem(
        {"P": Seq(Par(Act("a"), Act("b")), Var("P2")), "P2": Act("done")},
        root=Var("P"),
    )
