"""PA process terms (BPA + merge: sequential, parallel, choice, recursion).

The paper situates RP schemes in the process-algebra landscape: "RP
schemes and finite PA programs [BK89, BW90] generate the same class of
languages while Petri nets and RP schemes generate incomparable classes".
This module implements the PA fragment — action prefixing generalised to
full sequential composition ``X·Y``, free merge ``X∥Y`` (interleaving, no
communication), choice ``X+Y`` and guarded recursion — with its standard
structural operational semantics, including the termination predicate
``√`` that sequential composition needs.

Terms are immutable and normalised lightly (units of ``·`` and ``∥``
folded away) so explored state spaces stay canonical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple

from ..errors import RPError


class PAError(RPError):
    """A malformed PA specification (e.g. unguarded recursion)."""


class Term:
    """Base class of PA terms (frozen dataclasses below)."""

    def is_nil(self) -> bool:
        return isinstance(self, Nil)


@dataclass(frozen=True)
class Nil(Term):
    """The terminated process ``ε`` (√, no transitions)."""

    def __repr__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Act(Term):
    """An atomic action: ``a →a ε``."""

    action: str

    def __repr__(self) -> str:
        return self.action


@dataclass(frozen=True)
class Seq(Term):
    """Sequential composition ``X·Y``."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"({self.left!r}·{self.right!r})"


@dataclass(frozen=True)
class Par(Term):
    """Free merge ``X∥Y`` (pure interleaving)."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"({self.left!r}∥{self.right!r})"


@dataclass(frozen=True)
class Choice(Term):
    """Nondeterministic choice ``X+Y``."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"({self.left!r}+{self.right!r})"


@dataclass(frozen=True)
class Var(Term):
    """A process variable, bound in a :class:`PASystem`."""

    name: str

    def __repr__(self) -> str:
        return self.name


def seq(*terms: Term) -> Term:
    """Right-nested sequential composition with unit folding."""
    result: Term = Nil()
    for term in reversed(terms):
        if isinstance(term, Nil):
            continue
        result = term if isinstance(result, Nil) else Seq(term, result)
    return result


def par(*terms: Term) -> Term:
    """Merge with unit folding."""
    alive = [t for t in terms if not isinstance(t, Nil)]
    if not alive:
        return Nil()
    result = alive[0]
    for term in alive[1:]:
        result = Par(result, term)
    return result


def choice(*terms: Term) -> Term:
    """n-ary choice (must be non-empty)."""
    if not terms:
        raise PAError("empty choice")
    result = terms[0]
    for term in terms[1:]:
        result = Choice(result, term)
    return result


class PASystem:
    """A finite PA specification: defining equations + a root term."""

    def __init__(self, definitions: Mapping[str, Term], root: Term) -> None:
        self.definitions: Dict[str, Term] = dict(definitions)
        self.root = root
        self._check_bound(root, context="root")
        for name, body in self.definitions.items():
            self._check_bound(body, context=f"definition of {name!r}")
        self._check_guarded()

    def _check_bound(self, term: Term, context: str) -> None:
        for var in _variables(term):
            if var not in self.definitions:
                raise PAError(f"unbound variable {var!r} in {context}")

    def _check_guarded(self) -> None:
        """Every variable must be guarded: no cycle in the head-variable
        graph (unfolding variables alone must always hit an action)."""
        graph = {
            name: set(_head_variables(body))
            for name, body in self.definitions.items()
        }
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in graph}

        def visit(name: str) -> None:
            colour[name] = GREY
            for succ in graph[name]:
                if colour[succ] == GREY:
                    raise PAError(f"unguarded recursion through {succ!r}")
                if colour[succ] == WHITE:
                    visit(succ)
            colour[name] = BLACK

        for name in graph:
            if colour[name] == WHITE:
                visit(name)

    # ------------------------------------------------------------------
    # Operational semantics
    # ------------------------------------------------------------------

    def terminated(self, term: Term) -> bool:
        """The termination predicate ``√``."""
        if isinstance(term, Nil):
            return True
        if isinstance(term, Act):
            return False
        if isinstance(term, (Seq, Par)):
            return self.terminated(term.left) and self.terminated(term.right)
        if isinstance(term, Choice):
            return self.terminated(term.left) or self.terminated(term.right)
        if isinstance(term, Var):
            return self._var_terminated(term.name, frozenset())
        raise PAError(f"unknown term {term!r}")

    def _var_terminated(self, name: str, unfolding: frozenset) -> bool:
        if name in unfolding:
            return False  # guarded systems: a cycle without actions is ⊥
        body = self.definitions[name]
        return self._terminated_in(body, unfolding | {name})

    def _terminated_in(self, term: Term, unfolding: frozenset) -> bool:
        if isinstance(term, Var):
            return self._var_terminated(term.name, unfolding)
        if isinstance(term, Nil):
            return True
        if isinstance(term, Act):
            return False
        if isinstance(term, (Seq, Par)):
            return self._terminated_in(term.left, unfolding) and self._terminated_in(
                term.right, unfolding
            )
        if isinstance(term, Choice):
            return self._terminated_in(term.left, unfolding) or self._terminated_in(
                term.right, unfolding
            )
        raise PAError(f"unknown term {term!r}")

    def successors(self, term: Term) -> List[Tuple[str, Term]]:
        """The SOS transitions of *term* (deduplicated, ordered)."""
        seen = set()
        result: List[Tuple[str, Term]] = []
        for label, target in self._successors(term):
            target = _normalise(target)
            key = (label, target)
            if key not in seen:
                seen.add(key)
                result.append((label, target))
        return result

    def _successors(self, term: Term) -> Iterator[Tuple[str, Term]]:
        if isinstance(term, (Nil,)):
            return
        elif isinstance(term, Act):
            yield (term.action, Nil())
        elif isinstance(term, Seq):
            for label, target in self._successors(term.left):
                yield (label, Seq(target, term.right))
            if self.terminated(term.left):
                yield from self._successors(term.right)
        elif isinstance(term, Par):
            for label, target in self._successors(term.left):
                yield (label, Par(target, term.right))
            for label, target in self._successors(term.right):
                yield (label, Par(term.left, target))
        elif isinstance(term, Choice):
            yield from self._successors(term.left)
            yield from self._successors(term.right)
        elif isinstance(term, Var):
            yield from self._successors(self.definitions[term.name])
        else:
            raise PAError(f"unknown term {term!r}")

    # ------------------------------------------------------------------

    def traces(self, max_length: int) -> frozenset:
        """The prefix-closed trace language up to *max_length*."""
        traces = {()}
        frontier = [(self.root, ())]
        seen = {(_normalise(self.root), ())}
        while frontier:
            term, word = frontier.pop()
            if len(word) == max_length:
                continue
            for label, target in self.successors(term):
                extended = word + (label,)
                traces.add(extended)
                key = (target, extended)
                if key not in seen:
                    seen.add(key)
                    frontier.append((target, extended))
        return frozenset(traces)

    def completed_traces(self, max_length: int) -> frozenset:
        """Traces of runs reaching a terminated (√) residue."""
        results = set()
        frontier = [(self.root, ())]
        seen = {(_normalise(self.root), ())}
        while frontier:
            term, word = frontier.pop()
            if self.terminated(term):
                results.add(word)
            if len(word) == max_length:
                continue
            for label, target in self.successors(term):
                extended = word + (label,)
                key = (target, extended)
                if key not in seen:
                    seen.add(key)
                    frontier.append((target, extended))
        return frozenset(results)


def _variables(term: Term) -> Iterator[str]:
    if isinstance(term, Var):
        yield term.name
    elif isinstance(term, (Seq, Par, Choice)):
        yield from _variables(term.left)
        yield from _variables(term.right)


def _head_variables(term: Term) -> Iterator[str]:
    """Variables reachable at the head without passing an action."""
    if isinstance(term, Var):
        yield term.name
    elif isinstance(term, (Par,)):
        yield from _head_variables(term.left)
        yield from _head_variables(term.right)
    elif isinstance(term, Choice):
        yield from _head_variables(term.left)
        yield from _head_variables(term.right)
    elif isinstance(term, Seq):
        yield from _head_variables(term.left)


def _normalise(term: Term) -> Term:
    """Fold ε units of · and ∥ (keeps explored state spaces canonical)."""
    if isinstance(term, Seq):
        left, right = _normalise(term.left), _normalise(term.right)
        if isinstance(left, Nil):
            return right
        if isinstance(right, Nil):
            return left
        return Seq(left, right)
    if isinstance(term, Par):
        left, right = _normalise(term.left), _normalise(term.right)
        if isinstance(left, Nil):
            return right
        if isinstance(right, Nil):
            return left
        return Par(left, right)
    if isinstance(term, Choice):
        return Choice(_normalise(term.left), _normalise(term.right))
    return term
