"""PA process algebra: terms, SOS semantics, RP → PA translation."""

from .terms import (
    Act,
    Choice,
    Nil,
    PAError,
    PASystem,
    Par,
    Seq,
    Term,
    Var,
    choice,
    par,
    seq,
)
from .fragments import BPA, BPP, FINITE, PA, bpa_anbn, bpp_bag, classify, pa_nested_fork
from .translate import (
    TranslationError,
    scheme_weak_traces,
    traces_agree,
    translate_program,
)

__all__ = [
    "BPA",
    "BPP",
    "FINITE",
    "PA",
    "bpa_anbn",
    "bpp_bag",
    "classify",
    "pa_nested_fork",
    "Act",
    "Choice",
    "Nil",
    "PAError",
    "PASystem",
    "Par",
    "Seq",
    "Term",
    "Var",
    "choice",
    "par",
    "seq",
    "TranslationError",
    "scheme_weak_traces",
    "traces_agree",
    "translate_program",
]
