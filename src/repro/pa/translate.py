"""Translation of structured RP programs into PA systems.

The paper proves RP schemes and finite PA declarations generate the same
class of languages.  The constructive direction implemented here maps
*structured* RP programs (the image of the front-end, without ``goto``)
to PA:

* an abstract action maps to an ``Act``;
* tests map to a choice between two ``b``-prefixed branches (the abstract
  model resolves tests nondeterministically, and the test label is
  visible on both branches, exactly as in ``M_G``);
* a ``pcall P`` puts ``Var(P)`` in parallel with the *continuation up to
  the next top-level wait*; the matching ``wait`` becomes the point where
  the parallel composition is sequenced with what follows —
  ``pcall P; s1; …; wait; rest`` becomes ``(P ∥ ⟦s1; …⟧) · ⟦rest⟧``,
  nested pcalls accumulating inside the left operand;
* ``while`` loops become fresh guarded process variables;
* ``end`` discards the continuation of the current invocation (children
  already live in an enclosing ``∥`` and keep running).

The translation accepts the structured fragment it can be faithful on
and raises :class:`TranslationError` otherwise:

* no ``goto`` (the control graph must be structured);
* a ``wait`` may not occur *inside* a branch when the corresponding
  pcalls happened outside it (the join structure must nest);
* loop bodies must be self-contained (children spawned in an iteration
  are joined within it).

τ-abstracted trace equality between the compiled scheme's ``M_G`` and the
translated PA system is checked (up to a length bound) by
:func:`traces_agree` and the test-suite — the executable version of the
paper's language-equality statement on the structured fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Union

from ..errors import AnalysisBudgetExceeded, RPError
from ..lang.ast import (
    AbstractAction,
    End,
    Goto,
    If,
    PCall,
    Program,
    Stmt,
    Wait,
    While,
)
from .terms import Act, Nil, PASystem, Term, Var, choice, par, seq


class TranslationError(RPError):
    """The program is outside the translatable structured fragment."""


@dataclass(frozen=True)
class _LoopJump(Stmt):
    """Internal marker statement: continue at a loop's process variable."""

    name: str
    labels: tuple = ()


class _Translator:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.definitions: Dict[str, Term] = {}
        self._loop_counter = 0

    def translate(self) -> PASystem:
        for procedure in self.program.all_procedures():
            self.definitions[procedure.name] = self._stmts(
                list(procedure.body), pending=False
            )
        return PASystem(self.definitions, root=Var(self.program.main.name))

    # ------------------------------------------------------------------

    def _stmts(self, stmts: List[Stmt], pending: bool) -> Term:
        """Translate a statement list.

        ``pending`` is ``True`` inside the *before-the-wait* segment of an
        enclosing pcall: children of the enclosing invocation are waiting
        to be joined, so any ``wait`` nested in a branch or loop here would
        join them too — a shape PA's strictly nested ``(…∥…)·…`` cannot
        express, hence rejected.
        """
        if not stmts:
            return Nil()
        head, rest = stmts[0], stmts[1:]
        if isinstance(head, _LoopJump):
            if rest:
                raise TranslationError("statements after a loop back-jump")
            return Var(head.name)
        if isinstance(head, AbstractAction):
            return seq(Act(head.name), self._stmts(rest, pending))
        if isinstance(head, End):
            return Nil()
        if isinstance(head, Goto):
            raise TranslationError(
                "goto is outside the structured fragment (use while)"
            )
        if isinstance(head, Wait):
            # a top-level wait with no pending pcall is a no-op (pcall
            # splits consume the waits that do join children)
            return self._stmts(rest, pending)
        if isinstance(head, PCall):
            return self._pcall(head.procedure, rest, pending)
        if isinstance(head, If):
            test = self._test_label(head)
            then_term = self._branch(list(head.then_body), rest, pending)
            else_term = self._branch(list(head.else_body), rest, pending)
            return choice(seq(Act(test), then_term), seq(Act(test), else_term))
        if isinstance(head, While):
            return self._while(head, rest, pending)
        raise TranslationError(f"untranslatable statement {head!r}")

    def _branch(self, body: List[Stmt], rest: List[Stmt], pending: bool) -> Term:
        if pending and any(isinstance(s, Wait) for s in body):
            raise TranslationError(
                "a wait inside a branch would join children spawned outside "
                "the branch — outside the structured fragment"
            )
        return self._stmts(body + rest, pending)

    def _pcall(self, procedure: str, rest: List[Stmt], pending: bool) -> Term:
        if self.program.procedure(procedure) is None:
            raise TranslationError(f"pcall of unknown procedure {procedure!r}")
        # split the continuation at the first top-level wait
        for index, stmt in enumerate(rest):
            if isinstance(stmt, Wait):
                before, after = rest[:index], rest[index + 1 :]
                joined = par(Var(procedure), self._stmts(list(before), pending=True))
                return seq(joined, self._stmts(list(after), pending))
        # never joined at top level: the child runs in parallel with the
        # whole continuation, which therefore has pending children —
        # a wait nested anywhere in it would join them
        return par(Var(procedure), self._stmts(rest, pending=True))

    def _while(self, loop: While, rest: List[Stmt], pending: bool) -> Term:
        body = list(loop.body)
        pcalls = sum(isinstance(s, PCall) for s in body)
        waits = sum(isinstance(s, Wait) for s in body)
        if pcalls and not waits:
            raise TranslationError(
                "a loop body spawning unjoined children is outside the "
                "structured fragment"
            )
        if pending and waits:
            raise TranslationError(
                "a wait inside a loop would join children spawned outside "
                "the loop — outside the structured fragment"
            )
        test = self._test_label(loop)
        name = f"__loop{self._loop_counter}"
        self._loop_counter += 1
        continue_term = seq(Act(test), self._stmts(body + [_LoopJump(name)], False))
        exit_term = seq(Act(test), self._stmts(list(rest), pending))
        self.definitions[name] = choice(continue_term, exit_term)
        return Var(name)

    def _test_label(self, stmt: Union[If, While]) -> str:
        if not isinstance(stmt.test, str):
            raise TranslationError(
                "only abstract tests are translatable (PA has no memory)"
            )
        return stmt.test


def translate_program(program: Program) -> PASystem:
    """Translate a structured RP program into a PA system."""
    return _Translator(program).translate()


def traces_agree(program: Program, max_length: int, max_states: int = 100_000) -> bool:
    """Check τ-abstracted trace equality of the compiled scheme's ``M_G``
    and the translated PA system, up to *max_length* visible actions."""
    pa_system = translate_program(program)
    pa_traces = set(pa_system.traces(max_length))
    from ..lang.compiler import compile_program

    scheme = compile_program(program).scheme
    scheme_traces = scheme_weak_traces(scheme, max_length, max_states)
    return pa_traces == scheme_traces


def scheme_weak_traces(scheme, max_length: int, max_states: int = 100_000) -> Set[tuple]:
    """Weak (visible) traces of ``M_G`` up to *max_length* visible steps.

    The exploration is bounded in visible depth; a scheme that can grow
    unboundedly through silent steps alone would not terminate here, so a
    state budget guards against that (none of the structured programs the
    front-end produces exhibit it — every loop carries a visible test).
    """
    from ..core.alphabet import TAU
    from ..core.semantics import AbstractSemantics

    semantics = AbstractSemantics(scheme)
    traces = {()}
    seen = {(semantics.initial_state, ())}
    stack = [(semantics.initial_state, ())]
    while stack:
        state, word = stack.pop()
        for transition in semantics.successors(state):
            if transition.label == TAU:
                extended = word
            else:
                if len(word) == max_length:
                    continue
                extended = word + (transition.label,)
                traces.add(extended)
            key = (transition.target, extended)
            if key not in seen:
                if len(seen) >= max_states:
                    raise AnalysisBudgetExceeded(
                        f"weak-trace exploration exceeded {max_states} states"
                    )
                seen.add(key)
                stack.append(key)
    return traces
