"""Exception hierarchy for the RP framework.

Every error raised by the library derives from :class:`RPError`, so client
code can catch a single base class.  Sub-hierarchies mirror the package
layout: scheme construction, language front-end, analysis and interpretation
each have their own family.
"""

from __future__ import annotations


class RPError(Exception):
    """Base class of all errors raised by the RP framework."""


class SchemeError(RPError):
    """An RP scheme is structurally ill-formed."""


class StateError(RPError):
    """A hierarchical state is malformed or used inconsistently."""


class NotationError(StateError):
    """A textual hierarchical-state description could not be parsed."""


class LanguageError(RPError):
    """Base class for RP language front-end errors."""


class LexError(LanguageError):
    """The lexer met an unexpected character."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """The parser met an unexpected token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(LanguageError):
    """A program is syntactically valid but semantically ill-formed.

    Examples: duplicate procedure names, ``goto`` to an undefined label,
    ``pcall`` of an unknown procedure.
    """


class AnalysisError(RPError):
    """Base class for analysis-engine errors."""


class AnalysisBudgetExceeded(AnalysisError):
    """A semi-decision procedure exhausted its exploration budget.

    The procedures of :mod:`repro.analysis` are exact on their documented
    completeness envelope; outside it they terminate with this exception
    instead of returning an unsound verdict.
    """

    def __init__(self, message: str, explored: int = 0) -> None:
        super().__init__(message)
        self.explored = explored


class BudgetExhausted(AnalysisBudgetExceeded):
    """A governed analysis ran out of a :class:`repro.robust.Budget` resource.

    ``resource`` names what ran out (``"deadline"``, ``"memory"``,
    ``"states"`` or ``"cancelled"``); ``progress`` is a free-form snapshot
    of how far the analysis got (states explored, frontier size, elapsed
    seconds, ...).  Subclassing :class:`AnalysisBudgetExceeded` keeps every
    existing budget guard (``analyze``'s graceful degradation, the CLI's
    inconclusive reporting) working unchanged for governed runs.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str,
        progress: "dict | None" = None,
        explored: int = 0,
    ) -> None:
        super().__init__(message, explored=explored)
        self.resource = resource
        self.progress = dict(progress or {})


class FaultInjected(RPError):
    """A fault deliberately injected by the chaos harness surfaced.

    Raised by :class:`repro.robust.chaos.ChaosSemantics` at plan-selected
    successor computations; reaching the caller uncaught *is* the correct
    behaviour (a clean, typed failure instead of a corrupted verdict).
    """


class CorruptionDetected(AnalysisError):
    """An analysis engine noticed semantically inconsistent transitions.

    The exploration loops validate that every transition returned by a
    semantics object actually leaves the state being expanded; a mismatch
    means the semantics layer (or a chaos wrapper) handed back corrupt
    data, and the analysis refuses to build a verdict on top of it.
    """


class CheckpointError(RPError):
    """A checkpoint could not be written, parsed, or restored."""


class InterpretationError(RPError):
    """An interpretation is inconsistent with the scheme it interprets."""


class ExecutionError(RPError):
    """A concrete execution under an interpretation failed."""
