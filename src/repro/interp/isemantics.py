"""The interpreted semantics ``M_I_G`` (Section 4.3).

Transitions between global states ``⟨u, σ⟩`` refine the abstract rules
with memory effects:

``action``  ``u,v ↦_a u',v'`` gives ``⟨u,(q,v,σ)⟩ →a ⟨u',(q',v',σ)⟩``;
``test``    ``u,v ↦_b u',v',true/false`` picks the then/else successor —
            tests are no longer nondeterministic;
``call``    ``u,v ↦_pcall u',v',v''`` spawns ``(q'',v'',∅)``;
``wait``    fires only on childless invocations, ``u,v ↦_wait u',v'``;
``end``     ``u,v ↦_end u'`` — the invocation and its local memory vanish,
            children are released.

Every construct is deterministic *per invocation*; non-determinism comes
solely from the interleaving of parallel invocations, exactly as the
paper prescribes.  The abstraction map (forgetting memories) sends every
``M_I_G`` transition to an ``M_G`` transition with the same label — the
structural half of the Preservation Theorem, checked in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.alphabet import TAU
from ..core.hstate import Path
from ..core.scheme import NodeKind, RPScheme
from ..core.semantics import Transition
from .interpretation import Interpretation
from .istate import IEMPTY, GlobalState, IState


@dataclass(frozen=True)
class ITransition:
    """One transition of ``M_I_G`` with its event structure."""

    source: GlobalState
    label: str
    target: GlobalState
    rule: str
    node: str
    path: Path
    branch: Optional[int] = None

    def forget(self) -> Tuple:
        """The projected abstract step ``(label, source↓, target↓)``."""
        return (self.label, self.source.forget(), self.target.forget())


class InterpretedSemantics:
    """Successor generation for ``M_I_G = ⟨GMem × M_I(G), A_τ, →, ⟨u0,σ0⟩⟩``."""

    def __init__(self, scheme: RPScheme, interpretation: Interpretation) -> None:
        self.scheme = scheme
        self.interpretation = interpretation

    @property
    def initial_state(self) -> GlobalState:
        """``⟨u0, {(q0, v0, ∅)}⟩``."""
        return GlobalState(
            self.interpretation.initial_global(),
            IState.leaf(self.scheme.root, self.interpretation.initial_local()),
        )

    def successors(self, state: GlobalState) -> List[ITransition]:
        """All enabled transitions (one per *movable* invocation)."""
        transitions: List[ITransition] = []
        for path, node_id, memory, children in state.state.positions():
            transitions.extend(self._local(state, path, node_id, memory, children))
        return transitions

    def _local(
        self,
        state: GlobalState,
        path: Path,
        node_id: str,
        memory,
        children: IState,
    ) -> Iterator[ITransition]:
        interp = self.interpretation
        u = state.global_memory
        node = self.scheme.node(node_id)
        if node.kind is NodeKind.ACTION:
            u2, v2 = interp.apply_action(node.label, u, memory)
            succ = node.successors[0]
            target = GlobalState(u2, state.state.replace(path, ((succ, v2, children),)))
            yield ITransition(state, node.label, target, "action", node_id, path, 0)
        elif node.kind is NodeKind.TEST:
            u2, v2, outcome = interp.apply_test(node.label, u, memory)
            branch = 0 if outcome else 1
            succ = node.successors[branch]
            target = GlobalState(u2, state.state.replace(path, ((succ, v2, children),)))
            yield ITransition(state, node.label, target, "test", node_id, path, branch)
        elif node.kind is NodeKind.PCALL:
            u2, v2, child_memory = interp.apply_pcall(u, memory)
            spawned = children + IState.leaf(node.invoked, child_memory)
            succ = node.successors[0]
            target = GlobalState(u2, state.state.replace(path, ((succ, v2, spawned),)))
            yield ITransition(state, TAU, target, "call", node_id, path, 0)
        elif node.kind is NodeKind.WAIT:
            if children.is_empty():
                u2, v2 = interp.apply_wait(u, memory)
                succ = node.successors[0]
                target = GlobalState(
                    u2, state.state.replace(path, ((succ, v2, IEMPTY),))
                )
                yield ITransition(state, TAU, target, "wait", node_id, path, 0)
        elif node.kind is NodeKind.END:
            u2 = interp.apply_end(u, memory)
            target = GlobalState(u2, state.state.replace(path, children.items))
            yield ITransition(state, TAU, target, "end", node_id, path, None)

    # ------------------------------------------------------------------

    def is_terminal(self, state: GlobalState) -> bool:
        """No successor — exactly the terminated states ``⟨u, ∅⟩``."""
        return not self.successors(state)

    def abstract_successors(self, state: GlobalState):
        """The abstract ``M_G`` successors of the projection (helper for
        projection-consistency checks)."""
        from ..core.semantics import AbstractSemantics

        return AbstractSemantics(self.scheme).successors(state.forget())
