"""Execution and exploration of interpreted programs.

Three ways of running an ``M_I_G``:

* :class:`InterpretedExplorer` — exhaustive BFS over global states with a
  budget, mirroring :class:`repro.analysis.explore.Explorer`; the result
  converts to a finite LTS for the Theorem 10 checks;
* :func:`run_scheduled` — a single maximal run under a pluggable
  scheduler (deterministic round-robin, seeded random, priority);
* :func:`run_program` — the "just run it" entry point for compiled
  concrete programs, returning the final global memory.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisBudgetExceeded, ExecutionError
from ..core.scheme import RPScheme
from ..lang.compiler import CompiledProgram
from ..lts.lts import LTS
from ..obs import Tracer
from .interpretation import Interpretation, ProgramInterpretation
from .isemantics import InterpretedSemantics, ITransition
from .istate import GlobalState

#: A scheduler picks the next transition among the enabled ones.
Scheduler = Callable[[List[ITransition], int], ITransition]


class InterpretedExplorer:
    """Breadth-first exploration of ``M_I_G`` with a state budget."""

    def __init__(
        self,
        scheme: RPScheme,
        interpretation: Interpretation,
        max_states: int = 50_000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.semantics = InterpretedSemantics(scheme, interpretation)
        self.max_states = max_states
        self.tracer = tracer if tracer is not None else Tracer()

    def explore(
        self, initial: Optional[GlobalState] = None
    ) -> Tuple[LTS, bool, Dict[GlobalState, Optional[ITransition]]]:
        """Explore reachable global states.

        Returns ``(lts, complete, parents)`` — the explored fragment as an
        LTS, whether it saturated, and BFS parent pointers for witness
        reconstruction.
        """
        start = initial if initial is not None else self.semantics.initial_state
        lts = LTS(initial=start)
        parents: Dict[GlobalState, Optional[ITransition]] = {start: None}
        queue: deque = deque([start])
        complete = True
        with self.tracer.span(
            "interp.explore", budget=self.max_states
        ) as span:
            while queue:
                state = queue.popleft()
                for transition in self.semantics.successors(state):
                    lts.add_transition(state, transition.label, transition.target)
                    if transition.target in parents:
                        continue
                    if len(parents) >= self.max_states:
                        complete = False
                        queue.clear()
                        break
                    parents[transition.target] = transition
                    queue.append(transition.target)
            span.set(states=len(parents), complete=complete)
        return lts, complete, parents

    def explore_or_raise(self, initial: Optional[GlobalState] = None) -> LTS:
        """Explore exhaustively or raise on budget exhaustion."""
        lts, complete, _ = self.explore(initial)
        if not complete:
            raise AnalysisBudgetExceeded(
                f"interpreted exploration: budget of {self.max_states} "
                f"global states exhausted",
                explored=len(lts.states),
            )
        return lts


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------


def round_robin_scheduler(enabled: List[ITransition], step: int) -> ITransition:
    """Deterministic fair-ish choice: rotate through enabled transitions."""
    return enabled[step % len(enabled)]


def first_scheduler(enabled: List[ITransition], step: int) -> ITransition:
    """Always the first enabled transition (canonical order)."""
    return enabled[0]


def random_scheduler(seed: int) -> Scheduler:
    """A seeded random scheduler (reproducible runs)."""
    rng = random.Random(seed)

    def choose(enabled: List[ITransition], step: int) -> ITransition:
        return enabled[rng.randrange(len(enabled))]

    return choose


def deepest_first_scheduler(enabled: List[ITransition], step: int) -> ITransition:
    """Prefer the deepest (youngest) invocation — the IPTC priority rule."""
    return max(enabled, key=lambda t: (len(t.path), t.path))


def run_scheduled(
    scheme: RPScheme,
    interpretation: Interpretation,
    scheduler: Scheduler = first_scheduler,
    max_steps: int = 100_000,
    initial: Optional[GlobalState] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[GlobalState, List[ITransition]]:
    """One maximal run under *scheduler*.

    Stops when the state is terminated; raises
    :class:`~repro.errors.ExecutionError` when *max_steps* is hit first
    (likely divergence).
    """
    semantics = InterpretedSemantics(scheme, interpretation)
    state = initial if initial is not None else semantics.initial_state
    trace: List[ITransition] = []
    if tracer is None:
        tracer = Tracer()
    with tracer.span(
        "interp.scheduled-run",
        scheduler=getattr(scheduler, "__name__", repr(scheduler)),
        max_steps=max_steps,
    ) as span:
        for step in range(max_steps):
            enabled = semantics.successors(state)
            if not enabled:
                span.set(steps=len(trace), terminated=True)
                return state, trace
            transition = scheduler(enabled, step)
            trace.append(transition)
            state = transition.target
        span.set(steps=len(trace), terminated=False)
    raise ExecutionError(
        f"run did not terminate within {max_steps} steps "
        f"(current state: {state!r})"
    )


def run_program(
    compiled: CompiledProgram,
    scheduler: Scheduler = first_scheduler,
    max_steps: int = 100_000,
):
    """Run a compiled concrete RP program to termination.

    Returns ``(final_global_memory, visible_trace)``.
    """
    interpretation = ProgramInterpretation(compiled)
    final, trace = run_scheduled(
        compiled.scheme, interpretation, scheduler=scheduler, max_steps=max_steps
    )
    visible = [t.label for t in trace if t.label != "τ"]
    return final.global_memory, visible
