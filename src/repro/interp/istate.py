"""Interpreted hierarchical states and global states (Definition 8).

An interpreted hierarchical state is the least set ``M_I(G)`` such that,
for nodes ``q1..qn``, local memories ``v1..vn`` and interpreted states
``σ1..σn``, the multiset ``{(q1,v1,σ1), ..., (qn,vn,σn)}`` belongs to
``M_I(G)``.  A *global* state pairs a shared global memory with one such
state: ``⟨u, σ⟩ ∈ GMem × M_I(G)``.

Like :class:`~repro.core.hstate.HState`, interpreted states are immutable
canonical multisets — sorted by a deterministic key — so they hash and
compare in O(size).  The forgetful projection :meth:`IState.forget`
erases the memories, landing in ``M(G)``; it is the abstraction map of
the Preservation Theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Tuple

from ..core.hstate import HState, Path
from ..errors import StateError

LMem = Hashable

#: One invocation: (scheme node, local memory, children).
IItem = Tuple[str, LMem, "IState"]


def _memory_key(memory: Hashable) -> Tuple:
    """A sortable key for arbitrary hashable memories."""
    sort_key = getattr(memory, "sort_key", None)
    if sort_key is not None:
        return (0, sort_key())
    return (1, repr(memory))


class IState:
    """An immutable interpreted hierarchical state."""

    __slots__ = ("_items", "_key", "_hash", "_size")

    def __init__(self, items: Iterable[IItem] = ()) -> None:
        triples: List[IItem] = []
        for node, memory, child in items:
            if not isinstance(node, str) or not node:
                raise StateError(f"invocation node must be a non-empty string, got {node!r}")
            if not isinstance(child, IState):
                raise StateError(f"children must form an IState, got {type(child).__name__}")
            triples.append((node, memory, child))
        triples.sort(key=lambda item: (item[0], _memory_key(item[1]), item[2]._key))
        self._items: Tuple[IItem, ...] = tuple(triples)
        self._key: Tuple = tuple(
            (node, _memory_key(memory), child._key) for node, memory, child in self._items
        )
        self._hash = hash(self._key)
        self._size = sum(1 + child._size for _, _, child in self._items)

    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "IState":
        return _EMPTY

    @classmethod
    def leaf(cls, node: str, memory: LMem) -> "IState":
        """A single invocation with no children."""
        return cls(((node, memory, _EMPTY),))

    @property
    def items(self) -> Tuple[IItem, ...]:
        return self._items

    @property
    def size(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        return not self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[IItem]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IState):
            return NotImplemented
        return self._hash == other._hash and self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __add__(self, other: "IState") -> "IState":
        if not isinstance(other, IState):
            return NotImplemented
        if not other._items:
            return self
        if not self._items:
            return other
        return IState(self._items + other._items)

    # ------------------------------------------------------------------
    # Positions and surgery (mirror of HState)
    # ------------------------------------------------------------------

    def positions(self) -> Iterator[Tuple[Path, str, LMem, "IState"]]:
        """Iterate over invocations as ``(path, node, memory, children)``."""
        stack: List[Tuple[Path, IState]] = [((), self)]
        while stack:
            prefix, state = stack.pop()
            for index, (node, memory, child) in enumerate(state._items):
                path = prefix + (index,)
                yield path, node, memory, child
                if child._items:
                    stack.append((path, child))

    def replace(self, path: Path, replacement: Iterable[IItem]) -> "IState":
        """Rebuild with the invocation at *path* replaced (cf. HState)."""
        if not path:
            raise StateError("the empty path does not address an invocation")
        return self._replace(path, 0, tuple(replacement))

    def _replace(self, path: Path, depth: int, replacement: Tuple[IItem, ...]) -> "IState":
        index = path[depth]
        if index >= len(self._items):
            raise StateError(f"path {path!r} does not address an invocation")
        items = list(self._items)
        if depth == len(path) - 1:
            items[index : index + 1] = list(replacement)
        else:
            node, memory, child = items[index]
            items[index] = (node, memory, child._replace(path, depth + 1, replacement))
        return IState(items)

    # ------------------------------------------------------------------
    # Abstraction
    # ------------------------------------------------------------------

    def forget(self) -> HState:
        """Erase local memories: the projection into ``M(G)``."""
        return HState(
            (node, child.forget()) for node, _memory, child in self._items
        )

    def to_notation(self) -> str:
        """A readable rendering ``q1[v],{...}`` (debugging aid)."""
        if not self._items:
            return "∅"
        parts = []
        for node, memory, child in self._items:
            text = f"{node}[{memory!r}]"
            if child._items:
                text += f",{{{child.to_notation()}}}"
            parts.append(text)
        return ",".join(parts)

    def __repr__(self) -> str:
        return f"IState({self.to_notation()})"


_EMPTY = IState()
IEMPTY = _EMPTY


@dataclass(frozen=True)
class GlobalState:
    """An interpreted global state ``⟨u, σ⟩``."""

    global_memory: Hashable
    state: IState

    def forget(self) -> HState:
        """Project onto ``M(G)`` (drop all memories)."""
        return self.state.forget()

    def is_terminated(self) -> bool:
        return self.state.is_empty()

    def __repr__(self) -> str:
        return f"⟨{self.global_memory!r}, {self.state.to_notation()}⟩"
