"""Memory states for interpreted RP programs (Section 4.1).

The RP language has two memory components: a shared *global* memory and a
per-invocation *local* memory.  Both are modelled here as immutable,
hashable variable stores mapping names to integers — immutability is what
lets interpreted hierarchical states be canonical and hashable like their
abstract counterparts.

:data:`UNIT` is the one-point memory used when a component is irrelevant
(e.g. empty local memories in the completeness constructions of
Propositions 13–17).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple


class VarStore(Mapping[str, int]):
    """An immutable mapping from variable names to integers."""

    __slots__ = ("_items", "_hash")

    def __init__(self, values: Mapping[str, int] = None, **kwargs: int) -> None:
        merged: Dict[str, int] = dict(values or {})
        merged.update(kwargs)
        self._items: Tuple[Tuple[str, int], ...] = tuple(sorted(merged.items()))
        self._hash = hash(self._items)

    # -- Mapping interface ----------------------------------------------

    def __getitem__(self, name: str) -> int:
        for key, value in self._items:
            if key == name:
                return value
        raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        return (key for key, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, name: object) -> bool:
        return any(key == name for key, _ in self._items)

    # -- functional update ------------------------------------------------

    def set(self, name: str, value: int) -> "VarStore":
        """A new store with *name* bound to *value*."""
        updated = dict(self._items)
        updated[name] = value
        return VarStore(updated)

    def update(self, values: Mapping[str, int]) -> "VarStore":
        """A new store with several bindings updated."""
        updated = dict(self._items)
        updated.update(values)
        return VarStore(updated)

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VarStore):
            return self._items == other._items
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> Tuple:
        return self._items

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value}" for key, value in self._items)
        return f"VarStore({inner})"


#: The one-point memory (no variables).
UNIT = VarStore()


class Counter:
    """A tiny immutable counter memory (used by steering constructions)."""

    __slots__ = ("value", "bound")

    def __init__(self, value: int = 0, bound: int = None) -> None:
        self.value = value
        self.bound = bound

    def tick(self) -> "Counter":
        """Increment, saturating at ``bound`` when one is set.

        Saturation keeps the memory *finite*, as the paper's completeness
        proofs require ("because the run is finite, u can be bounded").
        """
        if self.bound is not None and self.value >= self.bound:
            return self
        return Counter(self.value + 1, self.bound)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter):
            return self.value == other.value and self.bound == other.bound
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.bound))

    def sort_key(self) -> Tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return f"Counter({self.value}, bound={self.bound})"
