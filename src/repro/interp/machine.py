"""The machine model ``P_G``: fixed processors, priority scheduling.

The paper mentions a third model, ``P_G``, formalising "the specific
implementation strategy for controlling and assigning priorities to a
potentially unbounded number of parallel processes on the IPTC parallel
machine with only a fixed number of processors", and notes that the same
``⊑_d`` criterion relates it to ``M_G`` and ``M_I_G``.

The IPTC hardware is unavailable (see the substitution note in DESIGN.md);
this module simulates its documented strategy: with ``processors = K``,
only the ``K`` highest-priority *ready* invocations may fire, priority
going to the **youngest** (deepest) invocations — recursive children run
before their parents, which matches the recursive-parallel workload shape
the machine was built for.  Blocked waits are not ready and do not occupy
a processor.

``P_G`` is thus a sub-behaviour of ``M_I_G`` obtained by restricting the
enabled set; consequently every ``P_G`` run is an ``M_I_G`` run and
``P_G ⊑_d M_I_G ⊑_d M_G`` — the chain the test-suite verifies on finite
instances.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..core.scheme import RPScheme
from ..errors import AnalysisBudgetExceeded
from ..lts.lts import LTS
from .interpretation import Interpretation
from .isemantics import InterpretedSemantics, ITransition
from .istate import GlobalState


class MachineSemantics:
    """``P_G``: the ``M_I_G`` rules restricted to ``K`` processors."""

    def __init__(
        self,
        scheme: RPScheme,
        interpretation: Interpretation,
        processors: int,
    ) -> None:
        if processors < 1:
            raise ValueError("the machine needs at least one processor")
        self.inner = InterpretedSemantics(scheme, interpretation)
        self.processors = processors

    @property
    def initial_state(self) -> GlobalState:
        return self.inner.initial_state

    def successors(self, state: GlobalState) -> List[ITransition]:
        """Enabled transitions of the ``K`` scheduled invocations.

        Ready invocations are ranked youngest-first (depth, then path);
        the top ``K`` get processors, the rest are preempted.
        """
        enabled = self.inner.successors(state)
        if len(enabled) <= self.processors:
            return enabled
        ranked = sorted(
            enabled, key=lambda t: (-len(t.path), t.path)
        )
        scheduled = ranked[: self.processors]
        order = {id(t): i for i, t in enumerate(enabled)}
        return sorted(scheduled, key=lambda t: order[id(t)])

    def is_terminal(self, state: GlobalState) -> bool:
        return not self.inner.successors(state)


def explore_machine(
    scheme: RPScheme,
    interpretation: Interpretation,
    processors: int,
    max_states: int = 50_000,
    initial: Optional[GlobalState] = None,
) -> Tuple[LTS, bool]:
    """Exhaustive exploration of ``P_G`` (returns LTS + saturation flag)."""
    semantics = MachineSemantics(scheme, interpretation, processors)
    start = initial if initial is not None else semantics.initial_state
    lts = LTS(initial=start)
    seen = {start}
    queue: deque = deque([start])
    complete = True
    while queue:
        state = queue.popleft()
        for transition in semantics.successors(state):
            lts.add_transition(state, transition.label, transition.target)
            if transition.target in seen:
                continue
            if len(seen) >= max_states:
                complete = False
                queue.clear()
                break
            seen.add(transition.target)
            queue.append(transition.target)
    return lts, complete


def explore_machine_or_raise(
    scheme: RPScheme,
    interpretation: Interpretation,
    processors: int,
    max_states: int = 50_000,
) -> LTS:
    """Exhaustive ``P_G`` exploration or budget error."""
    lts, complete = explore_machine(scheme, interpretation, processors, max_states)
    if not complete:
        raise AnalysisBudgetExceeded(
            f"machine exploration: budget of {max_states} states exhausted",
            explored=len(lts.states),
        )
    return lts
