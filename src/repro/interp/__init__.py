"""Interpreted RP programs: memories, ``M_I_G``, executors, ``P_G``."""

from .executor import (
    InterpretedExplorer,
    deepest_first_scheduler,
    first_scheduler,
    random_scheduler,
    round_robin_scheduler,
    run_program,
    run_scheduled,
)
from .interpretation import (
    Interpretation,
    ProgramInterpretation,
    TableInterpretation,
    TrivialInterpretation,
)
from .isemantics import InterpretedSemantics, ITransition
from .istate import IEMPTY, GlobalState, IState
from .machine import MachineSemantics, explore_machine, explore_machine_or_raise
from .memory import UNIT, Counter, VarStore
from .profiler import RunProfile, profile_run, profile_trace
from .verify import SafetyVerdict, verify_safety
from .steering import (
    StepCounter,
    mimic_pump_forever,
    mimic_run,
    pump_steering_interpretation,
    steering_interpretation,
)

__all__ = [
    "RunProfile",
    "profile_run",
    "profile_trace",
    "SafetyVerdict",
    "verify_safety",
    "InterpretedExplorer",
    "deepest_first_scheduler",
    "first_scheduler",
    "random_scheduler",
    "round_robin_scheduler",
    "run_program",
    "run_scheduled",
    "Interpretation",
    "ProgramInterpretation",
    "TableInterpretation",
    "TrivialInterpretation",
    "InterpretedSemantics",
    "ITransition",
    "IEMPTY",
    "GlobalState",
    "IState",
    "MachineSemantics",
    "explore_machine",
    "explore_machine_or_raise",
    "UNIT",
    "Counter",
    "VarStore",
    "StepCounter",
    "mimic_pump_forever",
    "mimic_run",
    "pump_steering_interpretation",
    "steering_interpretation",
]
