"""Trace-steering interpretations — the completeness constructions.

The completeness halves of Propositions 13–17 all build a *finite*
interpretation ``I`` under which ``M_I_G`` mimics a chosen behaviour of
the abstract ``M_G``: "the local memory states are empty and the global
memory state u just stores a natural number, registering the current
number of performed steps.  Any action simply increments u.  Because the
test maps depend on u, we can code in them the left-or-right choice which
was actually taken."

Two constructions:

* :func:`steering_interpretation` — mimic one finite abstract run (the
  counter is bounded by the run length and saturates: Props 13/14/15/17);
* :func:`pump_steering_interpretation` — mimic a prefix and then iterate
  a pump forever (the counter cycles through the pump window, keeping the
  memory finite while the run and the state space grow without bound:
  Prop 16's completeness).

:func:`mimic_run` replays the abstract run inside the interpreted
semantics and checks, step by step, that the projections coincide — the
machine-checked version of the paper's proof sketch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.scheme import RPScheme
from ..core.semantics import Transition
from ..errors import ExecutionError, InterpretationError
from .interpretation import TableInterpretation
from .isemantics import InterpretedSemantics, ITransition
from .istate import GlobalState
from .memory import UNIT


@dataclass(frozen=True)
class StepCounter:
    """The steering global memory: a step counter over a finite window.

    ``value`` ranges over ``0 .. prefix + period`` (hence finiteness);
    with ``period == 0`` the counter saturates at ``prefix`` (finite-run
    steering), otherwise it cycles through the window
    ``[prefix, prefix + period)`` forever (pump steering).
    """

    value: int
    prefix: int
    period: int = 0

    def tick(self) -> "StepCounter":
        nxt = self.value + 1
        if self.period == 0:
            nxt = min(nxt, self.prefix)
        elif nxt >= self.prefix + self.period:
            nxt = self.prefix
        return StepCounter(nxt, self.prefix, self.period)

    def sort_key(self) -> Tuple:
        return (self.value, self.prefix, self.period)


def _branch_table(
    steps: Sequence[Transition], offset: int = 0
) -> Dict[int, bool]:
    """Map global step indices to the then/else choice of test steps."""
    table: Dict[int, bool] = {}
    for index, transition in enumerate(steps):
        if transition.rule == "test":
            table[offset + index] = transition.branch == 0
    return table


def _steering_tables(
    prefix_steps: Sequence[Transition],
    pump_steps: Sequence[Transition] = (),
) -> TableInterpretation:
    prefix = len(prefix_steps)
    period = len(pump_steps)
    table = _branch_table(prefix_steps)
    table.update(_branch_table(pump_steps, offset=prefix))

    def action(label: str, u: StepCounter, v) -> Tuple[StepCounter, object]:
        return u.tick(), v

    def test(label: str, u: StepCounter, v) -> Tuple[StepCounter, object, bool]:
        return u.tick(), v, table.get(u.value, True)

    def pcall(u: StepCounter, v) -> Tuple[StepCounter, object, object]:
        return u.tick(), v, UNIT

    def wait(u: StepCounter, v) -> Tuple[StepCounter, object]:
        return u.tick(), v

    def end(u: StepCounter, v) -> StepCounter:
        return u.tick()

    return TableInterpretation(
        initial_global=StepCounter(0, prefix, period),
        initial_local=UNIT,
        action=action,
        test=test,
        pcall=pcall,
        wait=wait,
        end=end,
        finite=True,
        name="steering",
    )


def steering_interpretation(trace: Sequence[Transition]) -> TableInterpretation:
    """A finite interpretation whose ``M_I_G`` mimics the abstract *trace*.

    The counter saturates after the run, so GMem has ``len(trace) + 1``
    elements and LMem is a single point — exactly the finite-interpretation
    shape of the Propositions' completeness proofs.
    """
    return _steering_tables(list(trace))


def pump_steering_interpretation(
    prefix: Sequence[Transition], pump: Sequence[Transition]
) -> TableInterpretation:
    """A finite interpretation that mimics *prefix* then iterates *pump*.

    Used to transfer unboundedness certificates down to the interpreted
    model (Prop. 16 completeness): the counter cycles through the pump
    window, so the same test choices repeat every iteration while the
    hierarchical state grows forever.
    """
    if not pump:
        raise InterpretationError("a pump steering needs a non-empty pump")
    return _steering_tables(list(prefix), list(pump))


def mimic_run(
    scheme: RPScheme,
    trace: Sequence[Transition],
    interpretation: Optional[TableInterpretation] = None,
) -> List[ITransition]:
    """Replay an abstract run inside ``M_I_G`` under a steering
    interpretation, checking projections step by step.

    Returns the interpreted run; raises
    :class:`~repro.errors.ExecutionError` if some step cannot be mimicked
    (which would falsify the completeness construction).
    """
    interp = interpretation if interpretation is not None else steering_interpretation(trace)
    semantics = InterpretedSemantics(scheme, interp)
    state = semantics.initial_state
    if trace and state.forget() != trace[0].source:
        raise ExecutionError(
            "the abstract run does not start at the scheme's initial state"
        )
    mimicked: List[ITransition] = []
    for step, abstract in enumerate(trace):
        chosen = _matching_step(semantics, state, abstract)
        if chosen is None:
            raise ExecutionError(
                f"step {step}: no interpreted transition mimics "
                f"{abstract!r} from {state!r}"
            )
        mimicked.append(chosen)
        state = chosen.target
    return mimicked


def _matching_step(
    semantics: InterpretedSemantics, state: GlobalState, abstract: Transition
) -> Optional[ITransition]:
    expected = abstract.target
    for candidate in semantics.successors(state):
        if (
            candidate.node == abstract.node
            and candidate.rule == abstract.rule
            and candidate.label == abstract.label
            and candidate.target.forget() == expected
        ):
            return candidate
    return None


def mimic_pump_forever(
    scheme: RPScheme,
    prefix: Sequence[Transition],
    pump: Sequence[Transition],
    iterations: int,
) -> GlobalState:
    """Drive the pump-steering ``M_I_G`` through *iterations* pump rounds.

    Returns the final global state; its hierarchical part must keep
    growing (asserted by the caller/tests).  Descriptor matching is used
    for the repeated rounds because the concrete pumped states differ
    round to round.
    """
    interp = pump_steering_interpretation(prefix, pump)
    semantics = InterpretedSemantics(scheme, interp)
    state = semantics.initial_state
    for abstract in prefix:
        chosen = _matching_step(semantics, state, abstract)
        if chosen is None:
            raise ExecutionError(f"prefix step {abstract!r} cannot be mimicked")
        state = chosen.target
    for round_index in range(iterations):
        for abstract in pump:
            chosen = _matching_descriptor(semantics, state, abstract)
            if chosen is None:
                raise ExecutionError(
                    f"pump round {round_index}: step {abstract!r} cannot be fired"
                )
            state = chosen.target
    return state


def _matching_descriptor(
    semantics: InterpretedSemantics, state: GlobalState, abstract: Transition
) -> Optional[ITransition]:
    for candidate in semantics.successors(state):
        if (
            candidate.node == abstract.node
            and candidate.rule == abstract.rule
            and candidate.label == abstract.label
            and candidate.branch == abstract.branch
        ):
            return candidate
    return None
