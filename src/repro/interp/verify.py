"""The paper's verification methodology, packaged as one call.

Section 4's punchline: "If a given property is compatible with ``⊑_d``,
it is sufficient to establish it on the abstract ``M_G`` model.  Of course
the method is not complete … and the property may fail on ``M_G`` and
still hold of ``M_I_G``."

:func:`verify_safety` runs exactly that pipeline for regular safety
properties over the visible alphabet:

1. **abstract first** — explore ``M_G`` (bounded fragment; exact when it
   saturates) and check the property there.  If it holds on the saturated
   abstract model, it holds for *every* interpretation (Prop. 12 +
   Theorem 10) — no concrete exploration needed;
2. **concrete fallback** — when the abstract check fails or does not
   saturate, and an interpretation is at hand, explore ``M_I_G`` and check
   directly (exact when it saturates).  An abstract counterexample is
   reported either way: it may or may not be realisable, which is the
   incompleteness the paper points out (the concrete verdict settles it).

The returned :class:`SafetyVerdict` says which layer produced the answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.explore import Explorer
from ..core.scheme import RPScheme
from ..errors import AnalysisBudgetExceeded
from ..lts.properties import SafetyProperty, check_safety
from .executor import InterpretedExplorer
from .interpretation import Interpretation


@dataclass(frozen=True)
class SafetyVerdict:
    """Outcome of the layered safety check."""

    holds: bool
    layer: str  # "abstract" | "concrete"
    exact: bool
    counterexample: Optional[List[str]] = None
    abstract_counterexample: Optional[List[str]] = None

    def __bool__(self) -> bool:
        return self.holds


def verify_safety(
    scheme: RPScheme,
    prop: SafetyProperty,
    interpretation: Optional[Interpretation] = None,
    max_states: int = 50_000,
) -> SafetyVerdict:
    """Check *prop* using the abstract-first methodology.

    Raises :class:`~repro.errors.AnalysisBudgetExceeded` only when no
    layer can conclude (abstract unbounded and no/unbounded concrete
    model).
    """
    abstract_counterexample: Optional[List[str]] = None
    abstract_graph = Explorer(scheme, max_states=max_states).explore()
    if abstract_graph.complete:
        ok, counterexample = check_safety(abstract_graph.to_lts(), prop)
        if ok:
            # Prop 12: transfers to every interpretation
            return SafetyVerdict(holds=True, layer="abstract", exact=True)
        abstract_counterexample = counterexample
    else:
        # incomplete fragment: a violation found in it is still a real
        # abstract violation (safety is about finite prefixes)
        ok, counterexample = check_safety(abstract_graph.to_lts(), prop)
        if not ok:
            abstract_counterexample = counterexample

    if interpretation is None:
        if abstract_counterexample is not None:
            # without an interpretation, the abstract model *is* the model
            return SafetyVerdict(
                holds=False,
                layer="abstract",
                exact=True,
                counterexample=abstract_counterexample,
                abstract_counterexample=abstract_counterexample,
            )
        raise AnalysisBudgetExceeded(
            f"verify_safety: abstract model did not saturate within "
            f"{max_states} states and no interpretation was given"
        )

    explorer = InterpretedExplorer(scheme, interpretation, max_states=max_states)
    lts, complete, _parents = explorer.explore()
    ok, counterexample = check_safety(lts, prop)
    if not ok:
        return SafetyVerdict(
            holds=False,
            layer="concrete",
            exact=True,
            counterexample=counterexample,
            abstract_counterexample=abstract_counterexample,
        )
    if complete:
        return SafetyVerdict(
            holds=True,
            layer="concrete",
            exact=True,
            abstract_counterexample=abstract_counterexample,
        )
    raise AnalysisBudgetExceeded(
        f"verify_safety: neither the abstract nor the concrete model "
        f"saturated within {max_states} states"
    )
