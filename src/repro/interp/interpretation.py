"""Interpretations ``I = ⟨GMem, LMem, (↦_a)⟩`` (Section 4.1).

An interpretation gives deterministic meaning to the basic actions of a
scheme: each action ``a`` maps ``GMem × LMem`` into itself, each test
``b`` additionally produces a boolean, and the structural constructs have
their own mappings (``pcall↦`` also yields the child's initial local
memory).  The paper's basic assumptions — actions are deterministic,
always terminate properly, and are effective — are mirrored here by the
interface being made of total Python functions over immutable memory
values.

Implementations provided:

* :class:`TrivialInterpretation` — one-point memories; tests follow a
  fixed boolean table (every RP scheme plus this interpretation yields a
  deterministic ``M_I_G`` whose runs are a sub-behaviour of ``M_G``);
* :class:`TableInterpretation` — explicit function-backed finite
  interpretation, the workhorse of the Theorem 9 (Minsky) encoding;
* :class:`ProgramInterpretation` — derived from a compiled concrete RP
  program: variable stores as memories, assignment/test expressions as
  action semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from ..errors import InterpretationError
from ..lang.compiler import CompiledProgram
from .memory import UNIT, VarStore

GMem = Hashable
LMem = Hashable


class Interpretation:
    """Base class: override the memory constants and the ``apply_*`` maps."""

    #: Human-readable name (diagnostics only).
    name = "interpretation"

    def initial_global(self) -> GMem:
        """The initial shared global memory ``u0``."""
        raise NotImplementedError

    def initial_local(self) -> LMem:
        """The initial local memory ``v0`` of the main invocation."""
        raise NotImplementedError

    def apply_action(self, label: str, u: GMem, v: LMem) -> Tuple[GMem, LMem]:
        """``u, v ↦_a u', v'`` for an action node labelled *label*."""
        raise NotImplementedError

    def apply_test(self, label: str, u: GMem, v: LMem) -> Tuple[GMem, LMem, bool]:
        """``u, v ↦_b u', v', bool`` for a test node labelled *label*."""
        raise NotImplementedError

    def apply_pcall(self, u: GMem, v: LMem) -> Tuple[GMem, LMem, LMem]:
        """``u, v ↦_pcall u', v', v''`` — also yields the child's local."""
        raise NotImplementedError

    def apply_wait(self, u: GMem, v: LMem) -> Tuple[GMem, LMem]:
        """``u, v ↦_wait u', v'``."""
        raise NotImplementedError

    def apply_end(self, u: GMem, v: LMem) -> GMem:
        """``u, v ↦_end u'`` — the local memory disappears."""
        raise NotImplementedError

    def is_finite(self) -> bool:
        """``True`` when GMem and LMem are finite sets.

        Finite interpretations are the ones Theorems 9 and the
        completeness halves of Propositions 13–17 quantify over.
        """
        return False


class TrivialInterpretation(Interpretation):
    """One-point memories; tests answer from a fixed table.

    ``branches`` maps test labels to the boolean the test returns (default
    ``True``).  The resulting ``M_I_G`` is a deterministic sub-behaviour
    of ``M_G`` — handy as the smallest concrete witness.
    """

    name = "trivial"

    def __init__(self, branches: Optional[Mapping[str, bool]] = None) -> None:
        self.branches = dict(branches or {})

    def initial_global(self) -> GMem:
        return UNIT

    def initial_local(self) -> LMem:
        return UNIT

    def apply_action(self, label: str, u: GMem, v: LMem) -> Tuple[GMem, LMem]:
        return u, v

    def apply_test(self, label: str, u: GMem, v: LMem) -> Tuple[GMem, LMem, bool]:
        return u, v, self.branches.get(label, True)

    def apply_pcall(self, u: GMem, v: LMem) -> Tuple[GMem, LMem, LMem]:
        return u, v, UNIT

    def apply_wait(self, u: GMem, v: LMem) -> Tuple[GMem, LMem]:
        return u, v

    def apply_end(self, u: GMem, v: LMem) -> GMem:
        return u

    def is_finite(self) -> bool:
        return True


class TableInterpretation(Interpretation):
    """A finite interpretation given by explicit functions over explicit
    (finite) memory domains.

    The constructor takes plain callables; :meth:`is_finite` reports the
    declared finiteness.  Used by the Theorem 9 encoding, where the global
    memory is the counter-machine control word.
    """

    name = "table"

    def __init__(
        self,
        initial_global: GMem,
        initial_local: LMem,
        action: Callable[[str, GMem, LMem], Tuple[GMem, LMem]],
        test: Callable[[str, GMem, LMem], Tuple[GMem, LMem, bool]],
        pcall: Optional[Callable[[GMem, LMem], Tuple[GMem, LMem, LMem]]] = None,
        wait: Optional[Callable[[GMem, LMem], Tuple[GMem, LMem]]] = None,
        end: Optional[Callable[[GMem, LMem], GMem]] = None,
        finite: bool = True,
        name: str = "table",
    ) -> None:
        self._initial_global = initial_global
        self._initial_local = initial_local
        self._action = action
        self._test = test
        self._pcall = pcall or (lambda u, v: (u, v, self._initial_local))
        self._wait = wait or (lambda u, v: (u, v))
        self._end = end or (lambda u, v: u)
        self._finite = finite
        self.name = name

    def initial_global(self) -> GMem:
        return self._initial_global

    def initial_local(self) -> LMem:
        return self._initial_local

    def apply_action(self, label: str, u: GMem, v: LMem) -> Tuple[GMem, LMem]:
        return self._action(label, u, v)

    def apply_test(self, label: str, u: GMem, v: LMem) -> Tuple[GMem, LMem, bool]:
        return self._test(label, u, v)

    def apply_pcall(self, u: GMem, v: LMem) -> Tuple[GMem, LMem, LMem]:
        return self._pcall(u, v)

    def apply_wait(self, u: GMem, v: LMem) -> Tuple[GMem, LMem]:
        return self._wait(u, v)

    def apply_end(self, u: GMem, v: LMem) -> GMem:
        return self._end(u, v)

    def is_finite(self) -> bool:
        return self._finite


class ProgramInterpretation(Interpretation):
    """The interpretation induced by a compiled concrete RP program.

    * ``GMem`` = a :class:`VarStore` over the program's global variables;
    * ``LMem`` = a :class:`VarStore` over the union of all procedures'
      local variables (each procedure only touches its own names, and a
      single store keeps ``pcall↦`` a *single* mapping as in the paper —
      the spawned child's local memory is the declared-initials store);
    * assignments and tests evaluate their expressions; abstract action
      labels are tolerated as no-ops (instrumentation labels), but
      abstract *tests* are rejected — a deterministic interpretation
      cannot realise them.
    """

    name = "program"

    def __init__(self, compiled: CompiledProgram) -> None:
        if not compiled.is_fully_concrete:
            raise InterpretationError(
                "the program has abstract tests; a deterministic "
                "interpretation cannot realise them"
            )
        self.compiled = compiled
        program = compiled.program
        self._globals0 = VarStore(
            {decl.name: decl.initial for decl in program.globals}
        )
        locals_init: Dict[str, int] = {}
        for procedure in program.all_procedures():
            for decl in procedure.locals:
                locals_init[decl.name] = decl.initial
        self._locals0 = VarStore(locals_init)

    def initial_global(self) -> GMem:
        return self._globals0

    def initial_local(self) -> LMem:
        return self._locals0

    def apply_action(self, label: str, u: VarStore, v: VarStore) -> Tuple[GMem, LMem]:
        definition = self.compiled.actions.get(label)
        if definition is None:
            raise InterpretationError(f"unknown action label {label!r}")
        if definition.kind == "abstract":
            return u, v
        value = definition.value.evaluate(u, v)
        if definition.scope == "global":
            return u.set(definition.target, value), v
        return u, v.set(definition.target, value)

    def apply_test(self, label: str, u: VarStore, v: VarStore) -> Tuple[GMem, LMem, bool]:
        definition = self.compiled.tests.get(label)
        if definition is None:
            raise InterpretationError(f"unknown test label {label!r}")
        result = bool(definition.value.evaluate(u, v))
        return u, v, result

    def apply_pcall(self, u: VarStore, v: VarStore) -> Tuple[GMem, LMem, LMem]:
        return u, v, self._locals0

    def apply_wait(self, u: VarStore, v: VarStore) -> Tuple[GMem, LMem]:
        return u, v

    def apply_end(self, u: VarStore, v: VarStore) -> GMem:
        return u

    def is_finite(self) -> bool:
        # integer variables are unbounded in general
        return False
