"""Execution profiling for interpreted RP programs.

The RPMSHELL environment of [VEKM94] offered run-time introspection for
recursive-parallel programs; this module is the analogue for ``M_I_G``
runs: a :class:`RunProfile` aggregating

* parallelism: peak/average number of live invocations, peak nesting
  depth;
* process accounting: invocations spawned/terminated, per-procedure spawn
  counts (via the scheme's procedure metadata);
* synchronisation: wait firings and *wait pressure* — how many steps some
  blocked wait token sat in the state;
* action accounting: visible-step counts per label.

Use :func:`profile_run` on a scheduler run, or wrap a trace you already
have with :func:`profile_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.alphabet import TAU
from ..core.scheme import NodeKind, RPScheme
from ..obs import MetricsRegistry, Tracer
from .executor import Scheduler, first_scheduler, run_scheduled
from .interpretation import Interpretation
from .isemantics import ITransition
from .istate import GlobalState


@dataclass(frozen=True)
class RunProfile:
    """Aggregated statistics of one interpreted run."""

    steps: int
    visible_steps: int
    peak_parallelism: int
    average_parallelism: float
    peak_depth: int
    spawned: int
    terminated: int
    waits_fired: int
    blocked_wait_steps: int
    action_counts: Dict[str, int]
    spawns_per_procedure: Dict[str, int]
    final_live: int

    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"steps            : {self.steps} ({self.visible_steps} visible)",
            f"parallelism      : peak {self.peak_parallelism}, "
            f"avg {self.average_parallelism:.2f}",
            f"nesting depth    : peak {self.peak_depth}",
            f"invocations      : +{self.spawned} spawned, "
            f"-{self.terminated} terminated, {self.final_live} live at end",
            f"waits            : {self.waits_fired} fired, "
            f"{self.blocked_wait_steps} blocked token-steps",
        ]
        if self.spawns_per_procedure:
            per_procedure = ", ".join(
                f"{name}×{count}"
                for name, count in sorted(self.spawns_per_procedure.items())
            )
            lines.append(f"spawns/procedure : {per_procedure}")
        return "\n".join(lines)


def profile_trace(
    scheme: RPScheme,
    trace: Sequence[ITransition],
    initial: Optional[GlobalState] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RunProfile:
    """Profile an existing ``M_I_G`` transition sequence.

    Aggregation runs on a :class:`~repro.obs.MetricsRegistry` — the same
    machinery used everywhere else in the stack — and the returned
    :class:`RunProfile` is a snapshot of it.  Pass *metrics* to
    additionally roll this run's metrics into a long-lived registry
    (``run.*`` counters/gauges/histograms, actions and spawns as labelled
    counters).
    """
    entry_to_procedure = {
        entry: name for name, entry in scheme.procedures.items()
    }
    wait_nodes = {node.id for node in scheme.nodes_of_kind(NodeKind.WAIT)}

    registry = MetricsRegistry()
    parallelism = registry.histogram(
        "run.parallelism", "live invocations per trace state"
    )
    depth = registry.gauge("run.depth", "invocation-tree nesting depth")
    spawned = registry.counter("run.spawned", "invocations spawned (call rule)")
    terminated = registry.counter("run.terminated", "invocations ended (end rule)")
    waits = registry.counter("run.waits_fired", "wait rules fired")
    blocked = registry.counter(
        "run.blocked_wait_steps", "token-steps a wait sat blocked"
    )
    actions = registry.counter("run.actions", "visible steps per action label")
    spawns = registry.counter("run.spawns", "spawns per invoked procedure")

    states: List[GlobalState] = []
    if trace:
        states = [trace[0].source] + [t.target for t in trace]
    elif initial is not None:
        states = [initial]

    depth.set(0)
    for state in states:
        parallelism.observe(state.state.size)
        for path, node_id, _memory, children in state.state.positions():
            if len(path) > depth.max:
                depth.set(len(path))
            if node_id in wait_nodes and not children.is_empty():
                blocked.inc()

    for transition in trace:
        if transition.label != TAU:
            actions.labels(label=transition.label).inc()
        if transition.rule == "call":
            spawned.inc()
            invoked = scheme.node(transition.node).invoked
            procedure = entry_to_procedure.get(invoked, invoked)
            spawns.labels(procedure=procedure).inc()
        elif transition.rule == "end":
            terminated.inc()
        elif transition.rule == "wait":
            waits.inc()

    if metrics is not None:
        metrics.merge(registry)

    action_counts = {
        labels["label"]: int(child.value)
        for labels, child in (
            (dict(key), child) for key, child in actions.children()
        )
        if "label" in labels
    }
    spawns_per_procedure = {
        labels["procedure"]: int(child.value)
        for labels, child in (
            (dict(key), child) for key, child in spawns.children()
        )
        if "procedure" in labels
    }
    return RunProfile(
        steps=len(trace),
        visible_steps=sum(action_counts.values()),
        peak_parallelism=int(parallelism.max or 0),
        average_parallelism=parallelism.sum / max(1, parallelism.count),
        peak_depth=int(depth.max),
        spawned=int(spawned.value) + (1 if states else 0),  # the main invocation
        terminated=int(terminated.value),
        waits_fired=int(waits.value),
        blocked_wait_steps=int(blocked.value),
        action_counts=action_counts,
        spawns_per_procedure=spawns_per_procedure,
        final_live=states[-1].state.size if states else 0,
    )


def profile_run(
    scheme: RPScheme,
    interpretation: Interpretation,
    scheduler: Scheduler = first_scheduler,
    max_steps: int = 100_000,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[RunProfile, GlobalState]:
    """Run to termination under *scheduler* and profile the run."""
    final, trace = run_scheduled(
        scheme,
        interpretation,
        scheduler=scheduler,
        max_steps=max_steps,
        tracer=tracer,
    )
    profile = profile_trace(
        scheme, trace, initial=final if not trace else None, metrics=metrics
    )
    return profile, final
