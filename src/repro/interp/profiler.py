"""Execution profiling for interpreted RP programs.

The RPMSHELL environment of [VEKM94] offered run-time introspection for
recursive-parallel programs; this module is the analogue for ``M_I_G``
runs: a :class:`RunProfile` aggregating

* parallelism: peak/average number of live invocations, peak nesting
  depth;
* process accounting: invocations spawned/terminated, per-procedure spawn
  counts (via the scheme's procedure metadata);
* synchronisation: wait firings and *wait pressure* — how many steps some
  blocked wait token sat in the state;
* action accounting: visible-step counts per label.

Use :func:`profile_run` on a scheduler run, or wrap a trace you already
have with :func:`profile_trace`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.alphabet import TAU
from ..core.scheme import NodeKind, RPScheme
from .executor import Scheduler, first_scheduler, run_scheduled
from .interpretation import Interpretation
from .isemantics import ITransition
from .istate import GlobalState


@dataclass(frozen=True)
class RunProfile:
    """Aggregated statistics of one interpreted run."""

    steps: int
    visible_steps: int
    peak_parallelism: int
    average_parallelism: float
    peak_depth: int
    spawned: int
    terminated: int
    waits_fired: int
    blocked_wait_steps: int
    action_counts: Dict[str, int]
    spawns_per_procedure: Dict[str, int]
    final_live: int

    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"steps            : {self.steps} ({self.visible_steps} visible)",
            f"parallelism      : peak {self.peak_parallelism}, "
            f"avg {self.average_parallelism:.2f}",
            f"nesting depth    : peak {self.peak_depth}",
            f"invocations      : +{self.spawned} spawned, "
            f"-{self.terminated} terminated, {self.final_live} live at end",
            f"waits            : {self.waits_fired} fired, "
            f"{self.blocked_wait_steps} blocked token-steps",
        ]
        if self.spawns_per_procedure:
            per_procedure = ", ".join(
                f"{name}×{count}"
                for name, count in sorted(self.spawns_per_procedure.items())
            )
            lines.append(f"spawns/procedure : {per_procedure}")
        return "\n".join(lines)


def profile_trace(
    scheme: RPScheme,
    trace: Sequence[ITransition],
    initial: Optional[GlobalState] = None,
) -> RunProfile:
    """Profile an existing ``M_I_G`` transition sequence."""
    entry_to_procedure = {
        entry: name for name, entry in scheme.procedures.items()
    }
    wait_nodes = {node.id for node in scheme.nodes_of_kind(NodeKind.WAIT)}

    peak_parallelism = 0
    peak_depth = 0
    parallelism_sum = 0
    spawned = 0
    terminated = 0
    waits_fired = 0
    blocked_wait_steps = 0
    action_counts: Counter = Counter()
    spawns_per_procedure: Counter = Counter()

    states: List[GlobalState] = []
    if trace:
        states = [trace[0].source] + [t.target for t in trace]
    elif initial is not None:
        states = [initial]

    for state in states:
        size = state.state.size
        peak_parallelism = max(peak_parallelism, size)
        parallelism_sum += size
        for path, node_id, _memory, children in state.state.positions():
            peak_depth = max(peak_depth, len(path))
            if node_id in wait_nodes and not children.is_empty():
                blocked_wait_steps += 1

    for transition in trace:
        if transition.label != TAU:
            action_counts[transition.label] += 1
        if transition.rule == "call":
            spawned += 1
            invoked = scheme.node(transition.node).invoked
            procedure = entry_to_procedure.get(invoked, invoked)
            spawns_per_procedure[procedure] += 1
        elif transition.rule == "end":
            terminated += 1
        elif transition.rule == "wait":
            waits_fired += 1

    total_states = max(1, len(states))
    return RunProfile(
        steps=len(trace),
        visible_steps=sum(action_counts.values()),
        peak_parallelism=peak_parallelism,
        average_parallelism=parallelism_sum / total_states,
        peak_depth=peak_depth,
        spawned=spawned + (1 if states else 0),  # the main invocation
        terminated=terminated,
        waits_fired=waits_fired,
        blocked_wait_steps=blocked_wait_steps,
        action_counts=dict(action_counts),
        spawns_per_procedure=dict(spawns_per_procedure),
        final_live=states[-1].state.size if states else 0,
    )


def profile_run(
    scheme: RPScheme,
    interpretation: Interpretation,
    scheduler: Scheduler = first_scheduler,
    max_steps: int = 100_000,
) -> Tuple[RunProfile, GlobalState]:
    """Run to termination under *scheduler* and profile the run."""
    final, trace = run_scheduled(
        scheme, interpretation, scheduler=scheduler, max_steps=max_steps
    )
    profile = profile_trace(scheme, trace, initial=final if not trace else None)
    return profile, final
