"""repro — a formal framework for the analysis of recursive-parallel programs.

Reproduction of O. Kouchnarenko and Ph. Schnoebelen, *A Formal Framework
for the Analysis of Recursive-Parallel Programs*, PACT 1997.

The package provides:

* :mod:`repro.core` — RP schemes, hierarchical states, the abstract
  semantics ``M_G``, tree and gap embeddings;
* :mod:`repro.lang` — the RP programming language front-end (lexer, parser,
  compiler to schemes, pretty-printer);
* :mod:`repro.analysis` — the decision procedures of Section 3
  (reachability, node reachability, mutual exclusion, boundedness,
  sup-reachability, persistence, inevitability, halting, coverability);
* :mod:`repro.interp` — the interpreted semantics ``M_I_G`` of Section 4
  (memories, interpretations, executors, the ``P_G`` machine model, trace
  steering);
* :mod:`repro.lts` — generic labelled transition systems, simulations and
  the divergence-preserving simulation ``⊑_d`` of Theorem 10;
* :mod:`repro.wqo` — well-quasi-ordering utilities (Higman, Kruskal,
  antichains and finite bases);
* :mod:`repro.petri` and :mod:`repro.pa` — the Petri-net and PA substrates
  the paper compares RP schemes against;
* :mod:`repro.minsky` — counter machines and the Theorem 9 encoding.
"""

from .core import (
    EMPTY,
    TAU,
    AbstractSemantics,
    Alphabet,
    Embedder,
    EmbeddingIndex,
    GapEmbedding,
    HState,
    Node,
    NodeKind,
    RPScheme,
    SchemeBuilder,
    Signature,
    Transition,
    embeds,
    hstate_to_dot,
    naive_embeds,
    scheme_to_dot,
    strictly_embeds,
)
from .analysis.session import AnalysisSession, AnalysisStats
from .errors import (
    AnalysisBudgetExceeded,
    AnalysisError,
    ExecutionError,
    InterpretationError,
    LanguageError,
    LexError,
    NotationError,
    ParseError,
    RPError,
    SchemeError,
    SemanticError,
    StateError,
)

__version__ = "1.0.0"

__all__ = [
    "EMPTY",
    "TAU",
    "AbstractSemantics",
    "Alphabet",
    "Embedder",
    "EmbeddingIndex",
    "GapEmbedding",
    "HState",
    "Signature",
    "Node",
    "NodeKind",
    "RPScheme",
    "SchemeBuilder",
    "Transition",
    "embeds",
    "hstate_to_dot",
    "naive_embeds",
    "scheme_to_dot",
    "strictly_embeds",
    "AnalysisSession",
    "AnalysisStats",
    "AnalysisBudgetExceeded",
    "AnalysisError",
    "ExecutionError",
    "InterpretationError",
    "LanguageError",
    "LexError",
    "NotationError",
    "ParseError",
    "RPError",
    "SchemeError",
    "SemanticError",
    "StateError",
    "__version__",
]
