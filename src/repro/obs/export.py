"""Telemetry export: OTLP/JSON spans & metrics, Prometheus exposition.

Two standard wire formats, both dependency-free:

* :class:`OtlpJsonSink` — a :class:`~repro.obs.sinks.Sink` that maps
  tracer span/event records onto the OTLP/JSON ``resourceSpans`` shape
  (and :class:`~repro.obs.metrics.MetricsRegistry` snapshots onto
  ``resourceMetrics``), writing one export request per line to a file or
  POSTing batches to an OTLP/HTTP endpoint.  Batching is bounded: a full
  queue or a failing endpoint *drops and counts* rather than blocking
  the traced hot path or growing without limit.
* :func:`prometheus_exposition` — renders a registry as Prometheus text
  exposition format 0.0.4 (the ``GET /v1/metrics`` scrape surface of the
  serve daemon).

Tracer spans carry ``time.perf_counter()`` starts, not epoch seconds;
the sink anchors them to the epoch once at construction
(``time.time() - time.perf_counter()``), which keeps every span from one
process on one consistent clock.

Selection: ``rpcheck --trace out.jsonl --trace-format otlp`` or the
``RPCHECK_OTLP`` environment variable (a file path, or an ``http(s)://``
endpoint URL).  Default-off; nothing here runs unless asked for.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import (
    HISTOGRAM_BUCKET_BOUNDS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from .sinks import Sink

#: Environment variable selecting an OTLP target for CLI runs.
OTLP_ENV = "RPCHECK_OTLP"

#: Scope name stamped on every exported batch.
INSTRUMENTATION_SCOPE = "repro.obs"

#: Default bound on buffered span queue length before drops begin.
DEFAULT_QUEUE_SIZE = 2048

#: Spans per export request when flushing.
DEFAULT_BATCH_SIZE = 256

#: Seconds allowed per HTTP POST before the batch is counted dropped.
DEFAULT_HTTP_TIMEOUT = 5.0


def _attr_value(value: Any) -> Dict[str, Any]:
    """One attribute value in OTLP/JSON ``AnyValue`` form."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        # proto3 JSON maps int64 onto decimal strings
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attributes(attrs: Optional[Dict[str, Any]]) -> List[Dict[str, Any]]:
    if not attrs:
        return []
    return [{"key": str(k), "value": _attr_value(v)} for k, v in attrs.items()]


def _span_id(raw: Any, base: Any = None) -> str:
    """A 16-hex-digit OTLP span id from a tracer's integer span id.

    *base* is the :class:`~repro.obs.tracer.TraceContext` ``span_base``
    (a random 64-bit offset) when the record carries one: it keeps the
    small sequential per-tracer ids of different processes from
    colliding inside one distributed trace.
    """
    try:
        value = int(raw)
    except (TypeError, ValueError):
        value = 0
    if base is not None:
        try:
            value += int(base)
        except (TypeError, ValueError):
            pass
    return format(value & 0xFFFFFFFFFFFFFFFF, "016x")


def _nanos(seconds: float) -> str:
    return str(int(seconds * 1e9))


def otlp_span(
    record: Dict[str, Any],
    *,
    trace_id: str,
    epoch_anchor: float,
    events: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Map one tracer span record onto an OTLP/JSON ``Span``.

    *epoch_anchor* is ``time.time() - time.perf_counter()`` sampled in
    the emitting process; tracer ``start`` values are perf-counter
    seconds and become epoch nanoseconds through it.
    """
    start = float(record.get("start", 0.0)) + epoch_anchor
    wall = float(record.get("wall", 0.0))
    attrs = dict(record.get("attrs") or {})
    cpu = record.get("cpu")
    if cpu is not None:
        attrs["repro.cpu_seconds"] = cpu
    base = record.get("span_base")
    span: Dict[str, Any] = {
        "traceId": str(record.get("trace") or trace_id),
        "spanId": _span_id(record.get("id"), base),
        "name": str(record.get("name", "")),
        "kind": 1,  # SPAN_KIND_INTERNAL
        "startTimeUnixNano": _nanos(start),
        "endTimeUnixNano": _nanos(start + wall),
        "attributes": _attributes(attrs),
    }
    parent = record.get("parent")
    if parent is not None:
        span["parentSpanId"] = _span_id(parent, base)
    elif record.get("remote_parent"):
        # a propagated TraceContext named a cross-process parent: the
        # span is a local root but not a trace root
        span["parentSpanId"] = str(record["remote_parent"])
    if events:
        span["events"] = [
            {
                "name": str(event.get("name", "")),
                "timeUnixNano": _nanos(float(event.get("time", 0.0)) + epoch_anchor),
                "attributes": _attributes(event.get("attrs")),
            }
            for event in events
        ]
    return span


def otlp_spans_request(
    spans: List[Dict[str, Any]], *, service_name: str = "rpcheck"
) -> Dict[str, Any]:
    """Wrap mapped spans in an OTLP/JSON ``ExportTraceServiceRequest``."""
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": _attributes({"service.name": service_name})
                },
                "scopeSpans": [
                    {
                        "scope": {"name": INSTRUMENTATION_SCOPE},
                        "spans": spans,
                    }
                ],
            }
        ]
    }


def _metric_data_points(
    metric: Union[CounterMetric, GaugeMetric, HistogramMetric],
    now_nanos: str,
) -> Tuple[str, List[Dict[str, Any]]]:
    """(otlp field name, data points) for one metric and its children."""
    points: List[Dict[str, Any]] = []
    members: List[Tuple[Dict[str, str], Any]] = [({}, metric)]
    members.extend((dict(key), child) for key, child in metric.children())
    if isinstance(metric, CounterMetric):
        for labels, member in members:
            points.append(
                {
                    "attributes": _attributes(labels),
                    "timeUnixNano": now_nanos,
                    "asDouble": float(member.value),
                }
            )
        return "sum", points
    if isinstance(metric, GaugeMetric):
        for labels, member in members:
            if member.value is None:
                continue
            points.append(
                {
                    "attributes": _attributes(labels),
                    "timeUnixNano": now_nanos,
                    "asDouble": float(member.value),
                }
            )
        return "gauge", points
    for labels, member in members:
        if not member.count:
            continue
        point: Dict[str, Any] = {
            "attributes": _attributes(labels),
            "timeUnixNano": now_nanos,
            "count": str(member.count),
            "sum": float(member.sum),
            "bucketCounts": [str(c) for c in member.buckets],
            "explicitBounds": list(HISTOGRAM_BUCKET_BOUNDS),
        }
        if member.min is not None:
            point["min"] = float(member.min)
        if member.max is not None:
            point["max"] = float(member.max)
        points.append(point)
    return "histogram", points


def otlp_metrics_request(
    registry: MetricsRegistry, *, service_name: str = "rpcheck"
) -> Dict[str, Any]:
    """Map a registry snapshot onto ``ExportMetricsServiceRequest``."""
    now_nanos = _nanos(time.time())
    metrics: List[Dict[str, Any]] = []
    for name in registry.names():
        metric = registry.get(name)
        if metric is None:
            continue
        field, points = _metric_data_points(metric, now_nanos)  # type: ignore[arg-type]
        if not points:
            continue
        body: Dict[str, Any] = {"dataPoints": points}
        if field == "sum":
            body["aggregationTemporality"] = 2  # CUMULATIVE
            body["isMonotonic"] = True
        elif field == "histogram":
            body["aggregationTemporality"] = 2
        entry: Dict[str, Any] = {"name": name, field: body}
        if metric.description:
            entry["description"] = metric.description
        metrics.append(entry)
    return {
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": _attributes({"service.name": service_name})
                },
                "scopeMetrics": [
                    {
                        "scope": {"name": INSTRUMENTATION_SCOPE},
                        "metrics": metrics,
                    }
                ],
            }
        ]
    }


class OtlpJsonSink(Sink):
    """A tracer sink exporting OTLP/JSON to a file or HTTP endpoint.

    ``target`` is a filesystem path (one JSON export request per line,
    append-friendly for offline shipment) or an ``http(s)://`` URL
    (each batch POSTed with ``Content-Type: application/json``, the
    OTLP/HTTP transport).

    Trace identity comes from the records themselves: every span record
    a :class:`~repro.obs.tracer.Tracer` emits carries the trace id of
    its root span's :class:`~repro.obs.tracer.TraceContext` (minted
    fresh per root span, or propagated in over a ``traceparent`` field),
    so concurrent daemon queries export as distinct traces through one
    shared sink.  ``self.trace_id`` survives only as the fallback for
    hand-built records without trace info.

    Events arrive from the tracer *before* their owning span closes, so
    they are staged by span id and attached when the span record lands;
    events whose span never closes (crash, still-open at ``close()``)
    are dropped and counted in ``dropped_events``.  The span queue is
    bounded: once ``queue_size`` spans are waiting and a flush cannot
    drain them (endpoint down), new spans are dropped and counted in
    ``dropped_spans`` — the traced process never blocks on its exporter.
    """

    def __init__(
        self,
        target: str,
        *,
        service_name: str = "rpcheck",
        queue_size: int = DEFAULT_QUEUE_SIZE,
        batch_size: int = DEFAULT_BATCH_SIZE,
        http_timeout: float = DEFAULT_HTTP_TIMEOUT,
    ) -> None:
        self.target = target
        self.service_name = service_name
        self.queue_size = queue_size
        self.batch_size = max(1, batch_size)
        self.http_timeout = http_timeout
        self.trace_id = uuid.uuid4().hex
        self.epoch_anchor = time.time() - time.perf_counter()
        self.dropped_spans = 0
        self.dropped_events = 0
        self.export_failures = 0
        self.exported_spans = 0
        self._queue: List[Dict[str, Any]] = []
        self._pending_events: Dict[Any, List[Dict[str, Any]]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._is_http = target.startswith(("http://", "https://"))
        if not self._is_http:
            # open eagerly so a bad path fails at construction, not mid-run
            self._handle = open(target, "w", encoding="utf-8")
        else:
            self._handle = None

    # -- Sink interface --------------------------------------------------

    def emit(self, record: Dict[str, Any]) -> None:
        if self._closed:
            return
        kind = record.get("type")
        if kind == "event":
            with self._lock:
                staged = self._pending_events.setdefault(record.get("span"), [])
                if len(staged) < self.queue_size:
                    staged.append(record)
                else:
                    self.dropped_events += 1
            return
        if kind != "span":
            return
        with self._lock:
            events = self._pending_events.pop(record.get("id"), None)
            span = otlp_span(
                record,
                trace_id=self.trace_id,
                epoch_anchor=self.epoch_anchor,
                events=events,
            )
            if len(self._queue) >= self.queue_size:
                self.dropped_spans += 1
                return
            self._queue.append(span)
            should_flush = len(self._queue) >= self.batch_size
        if should_flush:
            self.flush()

    def flush(self) -> None:
        """Export every queued span now (one request per batch)."""
        while True:
            with self._lock:
                if not self._queue:
                    return
                batch = self._queue[: self.batch_size]
                del self._queue[: len(batch)]
            request = otlp_spans_request(batch, service_name=self.service_name)
            if self._write_request(request):
                self.exported_spans += len(batch)
            else:
                self.dropped_spans += len(batch)

    def export_metrics(self, registry: MetricsRegistry) -> bool:
        """Export one registry snapshot as a metrics request."""
        if self._closed:
            return False
        request = otlp_metrics_request(registry, service_name=self.service_name)
        return self._write_request(request)

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        with self._lock:
            # events whose spans never closed have nowhere to attach
            self.dropped_events += sum(
                len(staged) for staged in self._pending_events.values()
            )
            self._pending_events.clear()
            self._closed = True
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None

    # -- transport -------------------------------------------------------

    def _write_request(self, request: Dict[str, Any]) -> bool:
        payload = json.dumps(request, separators=(",", ":"), default=repr)
        if self._is_http:
            http_request = urllib.request.Request(
                self.target,
                data=payload.encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(
                    http_request, timeout=self.http_timeout
                ) as response:
                    response.read()
                return True
            except (urllib.error.URLError, OSError, ValueError):
                self.export_failures += 1
                return False
        with self._lock:
            if self._handle is None:
                return False
            self._handle.write(payload + "\n")
        return True

    def stats(self) -> Dict[str, int]:
        """Exporter health counters (for ``--stats`` and tests)."""
        with self._lock:
            return {
                "exported_spans": self.exported_spans,
                "dropped_spans": self.dropped_spans,
                "dropped_events": self.dropped_events,
                "export_failures": self.export_failures,
                "queued": len(self._queue),
            }

    def __repr__(self) -> str:
        return f"OtlpJsonSink({self.target!r})"


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitise a metric name for Prometheus ([a-zA-Z_:][a-zA-Z0-9_:]*)."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _prom_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_prom_name(k)}="{_prom_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _prom_number(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number) if not number.is_integer() else str(int(number))


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """Render a registry in Prometheus text exposition format 0.0.4.

    Counters gain the conventional ``_total`` suffix; gauges export
    their last sample; histograms export cumulative ``_bucket{le=...}``
    series over :data:`HISTOGRAM_BUCKET_BOUNDS` plus ``_sum`` and
    ``_count``.  Labelled children become label sets on the same family.
    """
    lines: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        if metric is None:
            continue
        base = _prom_name(name)
        members: List[Tuple[Dict[str, str], Any]] = [({}, metric)]
        members.extend((dict(key), child) for key, child in metric.children())
        if isinstance(metric, CounterMetric):
            family = base if base.endswith("_total") else base + "_total"
            if metric.description:
                lines.append(f"# HELP {family} {metric.description}")
            lines.append(f"# TYPE {family} counter")
            for labels, member in members:
                lines.append(
                    f"{family}{_prom_labels(labels)} {_prom_number(member.value)}"
                )
        elif isinstance(metric, GaugeMetric):
            if metric.description:
                lines.append(f"# HELP {base} {metric.description}")
            lines.append(f"# TYPE {base} gauge")
            for labels, member in members:
                if member.value is None:
                    continue
                lines.append(
                    f"{base}{_prom_labels(labels)} {_prom_number(member.value)}"
                )
        elif isinstance(metric, HistogramMetric):
            if metric.description:
                lines.append(f"# HELP {base} {metric.description}")
            lines.append(f"# TYPE {base} histogram")
            for labels, member in members:
                if not member.count:
                    continue
                cumulative = 0
                for bound, bucket_count in zip(
                    HISTOGRAM_BUCKET_BOUNDS, member.buckets
                ):
                    cumulative += bucket_count
                    le = 'le="%s"' % _prom_number(bound)
                    lines.append(
                        f"{base}_bucket{_prom_labels(labels, le)} {cumulative}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{base}_bucket{_prom_labels(labels, inf)} {member.count}"
                )
                lines.append(
                    f"{base}_sum{_prom_labels(labels)} {_prom_number(member.sum)}"
                )
                lines.append(f"{base}_count{_prom_labels(labels)} {member.count}")
    return "\n".join(lines) + "\n"
