"""The run ledger: a durable, append-only history of analysis runs.

PR 3 gave every run spans and metrics; this module makes them *survive
the process*.  A :class:`Ledger` is an append-only JSONL file — schema
``rpcheck-ledger/1``, one JSON object per run — recording, for every
``AnalysisSession`` battery, decision-procedure query or benchmark:

* identity — a unique ``run_id``, wall-clock timestamp, run ``kind``
  (``"analysis"`` / ``"bench"`` / ...);
* the subject — scheme name, node count and a stable content
  **fingerprint** (SHA-256 over the canonical scheme JSON), so "same
  scheme" is checkable across checkouts and refactors;
* the answers — per-procedure verdicts (``yes``/``no``/``partial``/
  ``inconclusive``/``error`` plus method and exactness);
* the costs — a full metrics-registry snapshot, a per-span-name
  self-time rollup (:func:`repro.obs.report.self_time_rollup`), and
  wall/CPU totals;
* the circumstances — budget outcome (exhausted resource, elapsed,
  checks), env metadata (python, platform, pid, argv) and best-effort
  git metadata (commit, branch, dirty flag).

Entries are written either directly (:meth:`Ledger.append`) or through
a :class:`LedgerSink` composed with the run's other sinks: the sink
buffers span records as the tracer emits them and, on
:meth:`LedgerSink.finish` (or ``close``), rolls them up and appends one
entry.  ``rpcheck history`` tails/filters the ledger, ``rpcheck diff``
compares two entries, and ``benchmarks/watch_regressions.py`` enforces
the perf trajectory the entries record.

The default ledger location is the ``RPCHECK_LEDGER`` environment
variable, falling back to ``rpcheck-ledger.jsonl`` in the working
directory for the CLI subcommands that *read* the ledger.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .report import build_tree, self_time_rollup
from .sinks import Sink

__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_ENV",
    "DEFAULT_LEDGER_NAME",
    "Ledger",
    "LedgerSink",
    "make_entry",
    "new_run_id",
    "scheme_fingerprint",
    "verdict_summary",
    "env_meta",
    "git_meta",
    "default_ledger_path",
]

#: The ledger entry schema version (bump on breaking shape changes).
LEDGER_SCHEMA = "rpcheck-ledger/1"

#: Environment variable naming the ledger file (analysis *and* bench runs).
LEDGER_ENV = "RPCHECK_LEDGER"

#: Fallback ledger file name (working directory) for the CLI readers.
DEFAULT_LEDGER_NAME = "rpcheck-ledger.jsonl"

_RUN_SEQ = 0
_RUN_SEQ_LOCK = threading.Lock()


def default_ledger_path(explicit: Optional[str] = None) -> Optional[str]:
    """Resolve a ledger path: explicit arg, ``RPCHECK_LEDGER``, else ``None``."""
    if explicit:
        return explicit
    return os.environ.get(LEDGER_ENV) or None


def new_run_id() -> str:
    """A unique, sortable run id (millisecond timestamp + pid + sequence)."""
    global _RUN_SEQ
    with _RUN_SEQ_LOCK:
        _RUN_SEQ += 1
        seq = _RUN_SEQ
    return f"r{int(time.time() * 1000):013d}-{os.getpid()}-{seq}"


def scheme_fingerprint(scheme: Any) -> str:
    """A stable content hash of *scheme* (``sha256:`` + 16 hex chars).

    Computed over the canonical scheme JSON, so two runs fingerprint
    equal exactly when their schemes serialise identically — the
    equality ``rpcheck diff`` uses to decide whether a verdict change is
    *drift* (same subject, different answer) or just a different input.
    """
    from ..core.serialize import scheme_to_json

    digest = hashlib.sha256(scheme_to_json(scheme).encode("utf-8")).hexdigest()
    return f"sha256:{digest[:16]}"


def verdict_summary(verdict: Any) -> Dict[str, Any]:
    """One procedure outcome as a small JSON-ready dict.

    ``None`` (budget-exhausted battery slot) becomes ``inconclusive``;
    partial verdicts keep their exhausted resource; everything else
    reduces to ``yes``/``no`` plus method and exactness.
    """
    if verdict is None:
        return {"verdict": "inconclusive"}
    if getattr(verdict, "is_partial", False):
        return {
            "verdict": "partial",
            "resource": getattr(verdict, "resource", None),
            "method": getattr(verdict, "method", None),
        }
    return {
        "verdict": "yes" if verdict.holds else "no",
        "method": getattr(verdict, "method", None),
        "exact": getattr(verdict, "exact", None),
    }


def env_meta() -> Dict[str, Any]:
    """Environment metadata stamped into every entry."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


_GIT_META_CACHE: "Dict[str, Optional[Dict[str, Any]]]" = {}


def git_meta(cwd: Optional[str] = None) -> Optional[Dict[str, Any]]:
    """Best-effort git metadata (commit, branch, dirty) or ``None``.

    Never raises and never blocks for long (2s timeout per command);
    cached per directory for the process lifetime — a ledger append must
    not fork three subprocesses per run.
    """
    key = os.path.abspath(cwd or os.getcwd())
    if key in _GIT_META_CACHE:
        return _GIT_META_CACHE[key]

    def _git(*args: str) -> Optional[str]:
        try:
            out = subprocess.run(
                ["git", *args],
                cwd=key,
                capture_output=True,
                text=True,
                timeout=2,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    commit = _git("rev-parse", "--short", "HEAD")
    if commit is None:
        meta: Optional[Dict[str, Any]] = None
    else:
        status = _git("status", "--porcelain")
        meta = {
            "commit": commit,
            "branch": _git("rev-parse", "--abbrev-ref", "HEAD"),
            "dirty": bool(status) if status is not None else None,
        }
    _GIT_META_CACHE[key] = meta
    return meta


def make_entry(
    *,
    kind: str,
    scheme: Any = None,
    procedures: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    span_records: Optional[Iterable[Dict[str, Any]]] = None,
    spans: Optional[Dict[str, Dict[str, float]]] = None,
    budget: Any = None,
    outcome: str = "ok",
    error: Optional[BaseException] = None,
    checkpoint: Optional[str] = None,
    wall_seconds: Optional[float] = None,
    cpu_seconds: Optional[float] = None,
    run_id: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one ``rpcheck-ledger/1`` entry.

    *procedures* values may be raw verdict objects (summarised via
    :func:`verdict_summary`) or pre-built dicts.  *span_records* are raw
    tracer records, rolled up per span name; pass *spans* instead when
    the rollup already exists.  *budget* duck-types
    :class:`repro.robust.Budget` (``exhausted``/``elapsed()``/``checks``).
    *checkpoint* is a path/token string, not the checkpoint payload.
    """
    summarised: Dict[str, Any] = {}
    for name, verdict in (procedures or {}).items():
        summarised[name] = (
            dict(verdict) if isinstance(verdict, dict) else verdict_summary(verdict)
        )
    if spans is None:
        spans = (
            self_time_rollup(build_tree(span_records))
            if span_records is not None
            else {}
        )
    budget_block = None
    if budget is not None:
        try:
            elapsed = float(budget.elapsed())
        except Exception:
            elapsed = None
        budget_block = {
            "exhausted": getattr(budget, "exhausted", None),
            "elapsed_seconds": elapsed,
            "checks": getattr(budget, "checks", None),
        }
    scheme_block = None
    if scheme is not None:
        scheme_block = {
            "name": scheme.name,
            "nodes": len(scheme),
            "fingerprint": scheme_fingerprint(scheme),
        }
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": run_id or new_run_id(),
        "timestamp": time.time(),
        "kind": kind,
        "scheme": scheme_block,
        "procedures": summarised,
        "budget": budget_block,
        "metrics": metrics or {},
        "spans": spans,
        "totals": {"wall_seconds": wall_seconds, "cpu_seconds": cpu_seconds},
        "env": env_meta(),
        "git": git_meta(),
        "checkpoint": checkpoint,
        "outcome": outcome,
        "error": None
        if error is None
        else {"type": type(error).__name__, "message": str(error)},
        "extra": extra or {},
    }


#: One lock per ledger *path* (abspath-keyed), shared by every Ledger
#: instance in the process.  Compaction reads the file, filters, and
#: atomically replaces it — if an append through a *different* Ledger
#: instance landed between the read and the replace, that entry would
#: be silently erased (e.g. ``rpcheck history --compact`` racing a
#: daemon's in-flight ``LedgerSink.finish``).  With a per-instance lock
#: this race was real; keying the lock by path closes it for every
#: in-process combination.  Cross-process appends remain safe against
#: *tearing* (O_APPEND), but cross-process compaction retains the
#: lost-append window — compact from one process at a time.
_PATH_LOCKS: Dict[str, threading.RLock] = {}
_PATH_LOCKS_GUARD = threading.Lock()


def _lock_for_path(path: str) -> threading.RLock:
    key = os.path.abspath(path)
    with _PATH_LOCKS_GUARD:
        lock = _PATH_LOCKS.get(key)
        if lock is None:
            lock = _PATH_LOCKS[key] = threading.RLock()
        return lock


class Ledger:
    """An append-only JSONL run history at a fixed path.

    Appends open the file in ``"a"`` mode and write one line, so
    concurrent writers from different processes interleave whole lines
    (POSIX O_APPEND semantics for line-sized writes) and a reader never
    sees a torn entry it can't diagnose.  Reading is strict: a malformed
    line raises ``ValueError`` naming the line number — history that
    does not round-trip is a bug, not something to skip silently.

    Mutations lock a **per-path** (not per-instance) lock, so an
    ``append`` through one instance cannot vanish under a concurrent
    :meth:`compact` through another instance of the same file.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = _lock_for_path(self.path)

    def append(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Append one entry (must carry the ledger schema tag)."""
        if entry.get("schema") != LEDGER_SCHEMA:
            raise ValueError(
                f"refusing to append entry with schema {entry.get('schema')!r} "
                f"(expected {LEDGER_SCHEMA!r})"
            )
        line = json.dumps(entry, separators=(",", ":"), default=repr) + "\n"
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        """Every entry, oldest first (``[]`` when the file doesn't exist)."""
        if not os.path.exists(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}: ledger line {number} is not valid "
                        f"JSON: {exc}"
                    )
                if not isinstance(entry, dict):
                    raise ValueError(
                        f"{self.path}: ledger line {number} is not an object"
                    )
                out.append(entry)
        return out

    def tail(self, count: int) -> List[Dict[str, Any]]:
        """The last *count* entries, oldest first."""
        return self.entries()[-count:] if count > 0 else []

    def filter(
        self,
        *,
        kind: Optional[str] = None,
        scheme: Optional[str] = None,
        procedure: Optional[str] = None,
        predicate: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> List[Dict[str, Any]]:
        """Entries matching every given criterion, oldest first."""
        out = []
        for entry in self.entries():
            if kind is not None and entry.get("kind") != kind:
                continue
            if scheme is not None:
                block = entry.get("scheme") or {}
                if block.get("name") != scheme:
                    continue
            if procedure is not None and procedure not in (
                entry.get("procedures") or {}
            ):
                continue
            if predicate is not None and not predicate(entry):
                continue
            out.append(entry)
        return out

    def compact(self, keep_per_scheme: int) -> "Tuple[int, int]":
        """Retention: rewrite the ledger keeping the newest entries only.

        Groups entries by scheme fingerprint (entries without a scheme
        block — e.g. free-standing bench artefacts — group by their
        ``kind`` instead, so unrelated histories never crowd each other
        out), keeps the newest *keep_per_scheme* entries of each group in
        their original chronological order, and atomically replaces the
        file (write-temp + ``os.replace``) so a concurrent reader sees
        either the old history or the new one, never a torn file.

        Returns ``(kept, dropped)``.  A strict read precedes the rewrite:
        a malformed ledger raises instead of being silently truncated.
        """
        if keep_per_scheme < 1:
            raise ValueError(
                f"keep_per_scheme must be a positive int, got {keep_per_scheme!r}"
            )
        with self._lock:
            entries = self.entries()
            if not entries:
                return (0, 0)
            budgets: Dict[str, int] = {}
            kept_flags: List[bool] = [False] * len(entries)
            # walk newest-first so "newest N per group" is a simple count
            for position in range(len(entries) - 1, -1, -1):
                entry = entries[position]
                scheme_block = entry.get("scheme") or {}
                group = scheme_block.get("fingerprint") or f"kind:{entry.get('kind')}"
                used = budgets.get(group, 0)
                if used < keep_per_scheme:
                    budgets[group] = used + 1
                    kept_flags[position] = True
            kept = [e for e, flag in zip(entries, kept_flags) if flag]
            dropped = len(entries) - len(kept)
            if dropped == 0:
                return (len(kept), 0)
            tmp_path = f"{self.path}.compact.{os.getpid()}.tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for entry in kept:
                    handle.write(
                        json.dumps(entry, separators=(",", ":"), default=repr)
                        + "\n"
                    )
            os.replace(tmp_path, self.path)
            return (len(kept), dropped)

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:
        return f"Ledger({self.path!r})"


class LedgerSink(Sink):
    """A sink that aggregates one run's records into one ledger entry.

    Compose it with the run's other sinks (`TeeSink`): it buffers span
    records as the tracer emits them and, on :meth:`finish`, rolls them
    up (:func:`repro.obs.report.self_time_rollup`) into a single
    appended entry.  ``close()`` finishes with whatever was gathered if
    :meth:`finish` was never called — a crashed run still leaves a
    ledger line — and is a no-op after an explicit finish.
    """

    enabled = True

    def __init__(
        self,
        ledger: Ledger,
        *,
        kind: str = "analysis",
        run_id: Optional[str] = None,
    ) -> None:
        self.ledger = ledger
        self.kind = kind
        self.run_id = run_id or new_run_id()
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self.entry: Optional[Dict[str, Any]] = None

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def finish(self, **fields: Any) -> Dict[str, Any]:
        """Roll up the buffered records and append the run's entry.

        Keyword arguments pass through to :func:`make_entry` (scheme,
        procedures, metrics, budget, outcome, ...).  Idempotent: a
        second call returns the already-appended entry unchanged.
        """
        if self.entry is not None:
            return self.entry
        with self._lock:
            records = list(self._records)
        fields.setdefault("kind", self.kind)
        fields.setdefault("run_id", self.run_id)
        fields.setdefault("span_records", records)
        self.entry = self.ledger.append(make_entry(**fields))
        return self.entry

    def close(self) -> None:
        if self.entry is None and self._records:
            self.finish(outcome="abandoned")

    def __repr__(self) -> str:
        state = "finished" if self.entry is not None else f"{len(self._records)} records"
        return f"LedgerSink({self.ledger.path!r}, {state})"
