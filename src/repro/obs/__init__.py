"""repro.obs — dependency-free tracing and metrics for the whole stack.

One observability layer feeding humans (``rpcheck report``,
``--stats``), CI (BENCH JSON artefacts, trace uploads) and the perf
trajectory (comparable metrics across PRs):

* :class:`Tracer` — nested spans (name, attrs, wall/CPU time) and point
  events, with a :mod:`contextvars`-tracked current span so
  instrumentation composes across call boundaries;
* :class:`MetricsRegistry` — typed counters / gauges / histograms with
  labelled children and a label-cardinality cap;
* sinks — :class:`JsonlSink` (one JSON object per record, offline
  analysis), :class:`MemorySink` (tests), :class:`NullSink` (disabled;
  near-zero overhead, tracers short-circuit), :class:`TeeSink`
  (composition);
* :mod:`repro.obs.report` — rebuild span trees from JSONL, self-time
  accounting, hot-span ranking, collapsed-stack flamegraph export;
* :mod:`repro.obs.timeline` — per-worker gantt/waterfall of a sharded
  run (``rpcheck timeline``): window critical path, straggler and
  steal/imbalance attribution, terminal and SVG renderings;
* :class:`TraceContext` / :func:`trace_context` — distributed-trace
  identity propagated serve-client → daemon (``traceparent``) and
  coordinator → workers, so one OTLP trace spans the whole query;
* :mod:`repro.obs.recorder` — the always-on :class:`FlightRecorder`
  ring buffer and ``rpcheck-flight/1`` incident bundles;
* :mod:`repro.obs.ledger` — the append-only ``rpcheck-ledger/1`` run
  history (:class:`Ledger`, :class:`LedgerSink`);
* :mod:`repro.obs.diff` — cross-run comparison of ledger entries
  (verdict drift, metric deltas, span self-time deltas).

See ``docs/observability.md`` for the walkthrough.
"""

from .diff import (
    DIFF_SCHEMA,
    RunDiff,
    diff_entries,
    flatten_metrics,
    render_diff,
    resolve_entry,
)
from .export import (
    OTLP_ENV,
    OtlpJsonSink,
    otlp_metrics_request,
    otlp_span,
    otlp_spans_request,
    prometheus_exposition,
)
from .ledger import (
    LEDGER_ENV,
    LEDGER_SCHEMA,
    Ledger,
    LedgerSink,
    default_ledger_path,
    make_entry,
    new_run_id,
    scheme_fingerprint,
    verdict_summary,
)
from .dashboard import render_dashboard
from .profiler import DEFAULT_HZ, SamplingProfiler
from .metrics import (
    DEFAULT_LABEL_CARDINALITY,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    Metric,
    MetricsRegistry,
    registry_from_dict,
)
from .recorder import (
    FLIGHT_DIR_ENV,
    FLIGHT_SCHEMA,
    FlightRecorder,
    ScopedSink,
    SinkScope,
    ambient_recorder,
    current_sink_scope,
    find_recorder,
    record_incident,
    sink_scope,
)
from .report import (
    SpanNode,
    build_tree,
    collapse_stacks,
    hot_spans,
    latency_percentiles,
    load_records,
    render_report,
    render_tree,
    report_as_dict,
    self_time_rollup,
    tree_as_dict,
    worker_rollup,
)
from .sinks import JsonlSink, MemorySink, NullSink, Sink, TeeSink
from .timeline import (
    ChunkBar,
    Timeline,
    WindowSlice,
    build_timeline,
    render_timeline_svg,
    render_timeline_text,
    timeline_as_dict,
)
from .tracer import (
    NOOP_SPAN,
    Span,
    TraceContext,
    Tracer,
    current_span,
    current_trace_context,
    trace_context,
)

__all__ = [
    "DIFF_SCHEMA",
    "OTLP_ENV",
    "OtlpJsonSink",
    "otlp_metrics_request",
    "otlp_span",
    "otlp_spans_request",
    "prometheus_exposition",
    "SamplingProfiler",
    "DEFAULT_HZ",
    "render_dashboard",
    "RunDiff",
    "diff_entries",
    "flatten_metrics",
    "render_diff",
    "resolve_entry",
    "LEDGER_ENV",
    "LEDGER_SCHEMA",
    "Ledger",
    "LedgerSink",
    "default_ledger_path",
    "make_entry",
    "new_run_id",
    "scheme_fingerprint",
    "verdict_summary",
    "FLIGHT_DIR_ENV",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "ScopedSink",
    "SinkScope",
    "ambient_recorder",
    "current_sink_scope",
    "find_recorder",
    "record_incident",
    "sink_scope",
    "TeeSink",
    "collapse_stacks",
    "latency_percentiles",
    "report_as_dict",
    "self_time_rollup",
    "tree_as_dict",
    "worker_rollup",
    "Tracer",
    "Span",
    "TraceContext",
    "current_span",
    "current_trace_context",
    "trace_context",
    "NOOP_SPAN",
    "ChunkBar",
    "Timeline",
    "WindowSlice",
    "build_timeline",
    "render_timeline_svg",
    "render_timeline_text",
    "timeline_as_dict",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "registry_from_dict",
    "Metric",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "DEFAULT_LABEL_CARDINALITY",
    "SpanNode",
    "load_records",
    "build_tree",
    "hot_spans",
    "render_tree",
    "render_report",
]
