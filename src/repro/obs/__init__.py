"""repro.obs — dependency-free tracing and metrics for the whole stack.

One observability layer feeding humans (``rpcheck report``,
``--stats``), CI (BENCH JSON artefacts, trace uploads) and the perf
trajectory (comparable metrics across PRs):

* :class:`Tracer` — nested spans (name, attrs, wall/CPU time) and point
  events, with a :mod:`contextvars`-tracked current span so
  instrumentation composes across call boundaries;
* :class:`MetricsRegistry` — typed counters / gauges / histograms with
  labelled children and a label-cardinality cap;
* sinks — :class:`JsonlSink` (one JSON object per record, offline
  analysis), :class:`MemorySink` (tests), :class:`NullSink` (default;
  near-zero overhead, tracers short-circuit);
* :mod:`repro.obs.report` — rebuild span trees from JSONL, self-time
  accounting, hot-span ranking.

See ``docs/observability.md`` for the walkthrough.
"""

from .metrics import (
    DEFAULT_LABEL_CARDINALITY,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    Metric,
    MetricsRegistry,
)
from .report import (
    SpanNode,
    build_tree,
    hot_spans,
    load_records,
    render_report,
    render_tree,
)
from .sinks import JsonlSink, MemorySink, NullSink, Sink
from .tracer import NOOP_SPAN, Span, Tracer, current_span

__all__ = [
    "Tracer",
    "Span",
    "current_span",
    "NOOP_SPAN",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "Metric",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "DEFAULT_LABEL_CARDINALITY",
    "SpanNode",
    "load_records",
    "build_tree",
    "hot_spans",
    "render_tree",
    "render_report",
]
