"""Offline trace analysis: rebuild span trees, report self-times.

The consumer side of :class:`~repro.obs.sinks.JsonlSink` output — and the
engine of the ``rpcheck report`` subcommand:

* :func:`load_records` — parse a JSONL trace back into records;
* :func:`build_tree` — reconstruct the span forest from ``id``/``parent``;
* :func:`render_report` — a self-time tree plus the top-k hot spans;
* :func:`report_as_dict` — the same report as a machine-readable dict
  (``rpcheck report --format json``), built on :func:`tree_as_dict`;
* :func:`self_time_rollup` — per-span-name totals (count, wall, self),
  the per-run shape the run ledger stores and ``rpcheck diff`` compares;
* :func:`collapse_stacks` — collapsed-stack export (``a;b;c value``
  lines, self time in integer microseconds) for speedscope or
  ``flamegraph.pl`` (``rpcheck flamegraph``).

**Self time** of a span is its wall time minus its children's wall time:
the work attributed to the span itself.  Summed over a (single-rooted)
tree, self times reproduce the root's wall time exactly, so the report
doubles as a coverage check: the rendered footer states which fraction of
the root's wall clock the tree accounts for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union


@dataclass
class SpanNode:
    """One reconstructed span with its children."""

    span_id: int
    name: str
    start: float
    wall: float
    cpu: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    parent_id: Optional[int] = None
    children: List["SpanNode"] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def self_wall(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.wall - sum(child.wall for child in self.children))

    def walk(self) -> Iterable["SpanNode"]:
        """This node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def load_records(source: Union[str, Iterable[str]]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace (path or iterable of lines) into records.

    Every non-blank line must parse as a JSON object; a malformed line
    raises ``ValueError`` naming the line number — a trace that does not
    round-trip is a bug, not something to skip silently.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"trace line {number} is not valid JSON: {error}")
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"trace line {number} is not a span/event record")
        records.append(record)
    return records


def build_tree(records: Iterable[Dict[str, Any]]) -> List[SpanNode]:
    """Reconstruct the span forest (roots in start order) from records.

    Events are attached to their span; spans whose parent never closed
    (e.g. a truncated trace) become roots.  Children are ordered by start
    time.
    """
    nodes: Dict[int, SpanNode] = {}
    events: List[Dict[str, Any]] = []
    for record in records:
        if record.get("type") == "span":
            node = SpanNode(
                span_id=record["id"],
                name=record["name"],
                start=record["start"],
                wall=record.get("wall") or 0.0,
                cpu=record.get("cpu") or 0.0,
                attrs=record.get("attrs") or {},
                parent_id=record.get("parent"),
            )
            nodes[node.span_id] = node
        elif record.get("type") == "event":
            events.append(record)
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.start)
    for event in events:
        owner = nodes.get(event.get("span"))
        if owner is not None:
            owner.events.append(event)
    roots.sort(key=lambda node: node.start)
    return roots


def hot_spans(roots: Iterable[SpanNode], top: int = 10) -> List[SpanNode]:
    """The *top* spans by self time, across the whole forest."""
    everything = [node for root in roots for node in root.walk()]
    everything.sort(key=lambda node: node.self_wall, reverse=True)
    return everything[:top]


def self_time_rollup(roots: Iterable[SpanNode]) -> Dict[str, Dict[str, float]]:
    """Per-span-name totals across the forest: count, wall, self seconds.

    This is the run ledger's span summary and the unit ``rpcheck diff``
    compares across runs.  Wall times of *nested* same-name spans are
    both counted (wall is a per-occurrence total, not a flattened one);
    self times never double-count, so the self column still sums to the
    roots' wall time.
    """
    rollup: Dict[str, Dict[str, float]] = {}
    for root in roots:
        for node in root.walk():
            row = rollup.setdefault(
                node.name, {"count": 0, "wall": 0.0, "self": 0.0}
            )
            row["count"] += 1
            row["wall"] += node.wall
            row["self"] += node.self_wall
    return rollup


def worker_rollup(roots: Iterable[SpanNode]) -> Dict[str, Dict[str, float]]:
    """Per-worker self-time totals for spans carrying a ``worker`` attr.

    In a traced sharded run the re-based ``parallel.chunk`` spans carry
    the worker index that executed them, so this answers "which worker
    did the wall-clock go to" directly from the one distributed trace.
    Keys are stringified worker indices (JSON-friendly); ``chunks`` is
    how many such spans the worker executed, ``stolen`` how many of them
    it stole from another shard's queue.
    """
    rollup: Dict[str, Dict[str, float]] = {}
    for root in roots:
        for node in root.walk():
            worker = (node.attrs or {}).get("worker")
            if worker is None:
                continue
            row = rollup.setdefault(
                str(worker),
                {"chunks": 0, "wall": 0.0, "self": 0.0, "stolen": 0},
            )
            row["chunks"] += 1
            row["wall"] += node.wall
            row["self"] += node.self_wall
            if node.attrs.get("stolen"):
                row["stolen"] += 1
    return dict(sorted(rollup.items(), key=lambda item: item[0]))


def tree_as_dict(node: SpanNode) -> Dict[str, Any]:
    """One span subtree as a JSON-ready dict (children recursive)."""
    return {
        "id": node.span_id,
        "name": node.name,
        "start": node.start,
        "wall": node.wall,
        "cpu": node.cpu,
        "self": node.self_wall,
        "attrs": node.attrs,
        "events": [
            {"name": event.get("name"), "attrs": event.get("attrs") or {}}
            for event in node.events
        ],
        "children": [tree_as_dict(child) for child in node.children],
    }


def report_as_dict(
    records: Iterable[Dict[str, Any]], top: int = 10
) -> Dict[str, Any]:
    """The ``rpcheck report --format json`` payload.

    Same data as :func:`render_report` — span forest with self times,
    hot spans, per-name rollup — as one JSON-ready object (schema
    ``rpcheck-report/1``).  The ``rollup`` block is byte-compatible with
    the ``spans`` block of a run-ledger entry, so ``rpcheck diff`` and
    offline consumers share one shape.
    """
    roots = build_tree(records)
    payload = {
        "schema": "rpcheck-report/1",
        "roots": [tree_as_dict(root) for root in roots],
        "hot": [
            {
                "name": node.name,
                "self": node.self_wall,
                "wall": node.wall,
                "attrs": node.attrs,
            }
            for node in hot_spans(roots, top=top)
        ],
        "rollup": self_time_rollup(roots),
        "latency": latency_percentiles(roots),
    }
    workers = worker_rollup(roots)
    if workers:
        payload["workers"] = workers
    return payload


def latency_percentiles(
    roots: Iterable[SpanNode],
) -> Dict[str, Dict[str, Any]]:
    """Per-span-name wall-time percentiles, via histogram metrics.

    Feeds every span's wall time into one
    :class:`~repro.obs.metrics.HistogramMetric` per name, so the report
    shows the same bucketed p50/p95/p99 estimates that live registries
    (``--stats``, ``GET /v1/metrics``) expose — a 10000-iteration span
    is summarised, not listed.
    """
    from .metrics import HistogramMetric

    histograms: Dict[str, HistogramMetric] = {}
    for root in roots:
        for node in root.walk():
            metric = histograms.get(node.name)
            if metric is None:
                metric = histograms[node.name] = HistogramMetric(node.name)
            metric.observe(node.wall)
    return {
        name: {
            "count": metric.count,
            "mean": metric.mean,
            "p50": metric.percentile(0.50),
            "p95": metric.percentile(0.95),
            "p99": metric.percentile(0.99),
            "max": metric.max,
        }
        for name, metric in sorted(histograms.items())
    }


def collapse_stacks(roots: Iterable[SpanNode]) -> List[str]:
    """Collapsed-stack lines (``root;child;leaf <microseconds>``).

    One line per distinct span-name stack, value = total **self** time
    in integer microseconds — the input format of ``flamegraph.pl`` and
    speedscope's collapsed-stack importer.  Stacks whose self time
    rounds to zero microseconds are omitted; lines are sorted for
    deterministic output.  Spans carrying a ``worker`` attr (re-based
    ``parallel.chunk`` spans of a traced sharded run) are qualified as
    ``name[wN]`` so the flamegraph separates per-worker time instead of
    melting all workers into one frame.
    """
    totals: Dict[Tuple[str, ...], float] = {}

    def visit(node: SpanNode, prefix: Tuple[str, ...]) -> None:
        frame = node.name
        worker = (node.attrs or {}).get("worker")
        if worker is not None:
            frame = f"{frame}[w{worker}]"
        stack = prefix + (frame,)
        totals[stack] = totals.get(stack, 0.0) + node.self_wall
        for child in node.children:
            visit(child, stack)

    for root in roots:
        visit(root, ())
    lines = []
    for stack, seconds in totals.items():
        micros = round(seconds * 1e6)
        if micros <= 0:
            continue
        lines.append(f"{';'.join(stack)} {micros}")
    return sorted(lines)


def _format_attrs(attrs: Dict[str, Any], limit: int = 60) -> str:
    if not attrs:
        return ""
    text = ", ".join(f"{k}={v}" for k, v in attrs.items())
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return f"  [{text}]"


def render_tree(root: SpanNode) -> List[str]:
    """The self-time tree of one root, indented, with percentages."""
    total = root.wall or 1e-12
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        share = 100.0 * node.self_wall / total
        lines.append(
            f"{'  ' * depth}{node.name:<{max(1, 36 - 2 * depth)}} "
            f"wall {node.wall * 1000:9.3f}ms  self {node.self_wall * 1000:9.3f}ms "
            f"({share:5.1f}%)"
            f"{_format_attrs(node.attrs)}"
        )
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return lines


def render_report(
    records: Iterable[Dict[str, Any]], top: int = 10
) -> str:
    """The full ``rpcheck report`` text: trees, hot spans, coverage."""
    roots = build_tree(records)
    if not roots:
        return "(no spans in trace)"
    lines: List[str] = []
    for root in roots:
        lines.extend(render_tree(root))
        span_count = sum(1 for _ in root.walk())
        accounted = sum(node.self_wall for node in root.walk())
        coverage = 100.0 * accounted / root.wall if root.wall else 100.0
        lines.append(
            f"-- {span_count} spans; self-times account for "
            f"{coverage:.1f}% of root wall time"
        )
        lines.append("")
    lines.append(f"hot spans (top {top} by self time):")
    for rank, node in enumerate(hot_spans(roots, top=top), start=1):
        lines.append(
            f"  {rank:>2}. {node.name:<30} self {node.self_wall * 1000:9.3f}ms  "
            f"wall {node.wall * 1000:9.3f}ms{_format_attrs(node.attrs, limit=40)}"
        )
    workers = worker_rollup(roots)
    if workers:
        lines.append("")
        lines.append("per-worker self time (spans with a worker attr):")
        for worker, row in workers.items():
            stolen = f"  stolen {row['stolen']}" if row["stolen"] else ""
            lines.append(
                f"  w{worker:<3} chunks {row['chunks']:<5} "
                f"self {row['self'] * 1000:9.3f}ms  "
                f"wall {row['wall'] * 1000:9.3f}ms{stolen}"
            )
    lines.append("")
    lines.append("span wall-time percentiles (per name, ms):")
    for name, row in latency_percentiles(roots).items():
        lines.append(
            f"  {name:<30} n={row['count']:<6} "
            f"p50 {row['p50'] * 1000:9.3f}  p95 {row['p95'] * 1000:9.3f}  "
            f"p99 {row['p99'] * 1000:9.3f}  max {row['max'] * 1000:9.3f}"
        )
    return "\n".join(lines)
