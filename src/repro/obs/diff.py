"""Cross-run diffing of ledger entries (``rpcheck diff``).

Two runs of the same scheme/procedure should agree on every verdict and
cost about the same; this module turns that expectation into a checkable
report.  :func:`diff_entries` compares two ``rpcheck-ledger/1`` entries
along three axes:

* **verdict drift** — procedures present in both runs whose verdict
  changed (``yes`` → ``no``, conclusive → ``partial``, ...).  Drift on
  a matching scheme fingerprint is the red flag: same subject,
  different answer;
* **metric deltas** — numeric leaves of the two metrics snapshots
  (counter values, gauge values, histogram count/sum), filtered by a
  relative threshold so counting noise doesn't drown signal;
* **span self-time deltas** — the per-span-name self-time rollups, with
  a *noise threshold* (relative percentage **and** an absolute floor in
  seconds): a span is only *flagged* when it moved by at least the
  threshold and the larger side exceeds the floor, so micro-spans
  jittering by microseconds stay quiet while a real ≥ 20% slowdown of a
  hot phase is called out.

Entry references accepted by :func:`resolve_entry` (and the CLI):
exact ``run_id``, unique ``run_id`` prefix, or an integer index into
the ledger (``0`` oldest, ``-1`` latest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "DEFAULT_SPAN_THRESHOLD_PCT",
    "DEFAULT_SPAN_FLOOR_SECONDS",
    "DEFAULT_METRIC_THRESHOLD_PCT",
    "RunDiff",
    "resolve_entry",
    "diff_entries",
    "render_diff",
    "flatten_metrics",
]

#: A span self-time change below this percentage is noise, not a delta.
DEFAULT_SPAN_THRESHOLD_PCT = 10.0

#: Spans faster than this on both sides are never flagged (seconds).
DEFAULT_SPAN_FLOOR_SECONDS = 0.0005

#: Metric deltas below this percentage are dropped from the report.
DEFAULT_METRIC_THRESHOLD_PCT = 10.0

#: Schema tag stamped on ``RunDiff.as_dict()`` documents.
DIFF_SCHEMA = "rpcheck-diff/1"


def resolve_entry(entries: List[Dict[str, Any]], ref: str) -> Dict[str, Any]:
    """The entry *ref* names: run_id, unique prefix, or integer index."""
    if not entries:
        raise ValueError("ledger is empty")
    for entry in entries:
        if entry.get("run_id") == ref:
            return entry
    try:
        index = int(ref)
    except ValueError:
        pass
    else:
        try:
            return entries[index]
        except IndexError:
            raise ValueError(
                f"ledger index {index} out of range "
                f"(have {len(entries)} entries)"
            )
    matches = [
        entry
        for entry in entries
        if str(entry.get("run_id", "")).startswith(ref)
    ]
    if len(matches) == 1:
        return matches[0]
    if matches:
        ids = ", ".join(str(m.get("run_id")) for m in matches[:5])
        raise ValueError(f"run reference {ref!r} is ambiguous ({ids}, ...)")
    raise ValueError(f"no ledger entry matches {ref!r}")


def flatten_metrics(metrics: Dict[str, Any]) -> Dict[str, float]:
    """Numeric leaves of a metrics snapshot, keyed by dotted/labelled path.

    Counters and gauges contribute their ``value``; histograms their
    ``count`` and ``sum``; labelled children contribute the same leaves
    under ``name{label=...}``.  Non-numeric and ``None`` leaves are
    skipped.
    """
    flat: Dict[str, float] = {}

    def leaves(prefix: str, body: Dict[str, Any]) -> None:
        kind = body.get("type")
        keys = ("count", "sum") if kind == "histogram" else ("value",)
        for key in keys:
            value = body.get(key)
            if isinstance(value, (int, float)):
                flat[f"{prefix}.{key}"] = float(value)
        for label, child in (body.get("labels") or {}).items():
            child_keys = ("count", "sum") if kind == "histogram" else ("value",)
            for key in child_keys:
                value = child.get(key)
                if isinstance(value, (int, float)):
                    flat[f"{prefix}{label}.{key}"] = float(value)

    for name, body in (metrics or {}).items():
        if isinstance(body, dict):
            leaves(name, body)
    return flat


def _pct(a: float, b: float) -> Optional[float]:
    if a == 0:
        return None if b == 0 else float("inf")
    return 100.0 * (b - a) / a


@dataclass
class RunDiff:
    """The structured outcome of comparing two ledger entries."""

    run_a: str
    run_b: str
    #: Same scheme fingerprint on both sides (None = not comparable).
    same_scheme: Optional[bool]
    #: Procedures whose verdict changed: {procedure, a, b}.
    verdict_drift: List[Dict[str, Any]] = field(default_factory=list)
    #: Procedures present on only one side.
    procedures_only_a: List[str] = field(default_factory=list)
    procedures_only_b: List[str] = field(default_factory=list)
    #: Numeric metric changes over the threshold: {metric, a, b, pct}.
    metric_deltas: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-span-name self-time rows (always complete): {span, a_self,
    #: b_self, pct, flagged}.
    span_deltas: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def flagged_spans(self) -> List[Dict[str, Any]]:
        """The span rows that cleared the noise threshold."""
        return [row for row in self.span_deltas if row["flagged"]]

    @property
    def clean(self) -> bool:
        """No verdict drift (cost deltas alone don't make a diff dirty)."""
        return not self.verdict_drift

    def as_dict(self) -> Dict[str, Any]:
        """The stable ``rpcheck-diff/1`` document (``rpcheck diff --json``)."""
        return {
            "schema": DIFF_SCHEMA,
            "clean": self.clean,
            "run_a": self.run_a,
            "run_b": self.run_b,
            "same_scheme": self.same_scheme,
            "verdict_drift": self.verdict_drift,
            "procedures_only_a": self.procedures_only_a,
            "procedures_only_b": self.procedures_only_b,
            "metric_deltas": self.metric_deltas,
            "span_deltas": self.span_deltas,
        }


def diff_entries(
    a: Dict[str, Any],
    b: Dict[str, Any],
    *,
    span_threshold_pct: float = DEFAULT_SPAN_THRESHOLD_PCT,
    span_floor_seconds: float = DEFAULT_SPAN_FLOOR_SECONDS,
    metric_threshold_pct: float = DEFAULT_METRIC_THRESHOLD_PCT,
) -> RunDiff:
    """Compare two ledger entries (see module docstring for the axes)."""
    fp_a = (a.get("scheme") or {}).get("fingerprint")
    fp_b = (b.get("scheme") or {}).get("fingerprint")
    same_scheme = (fp_a == fp_b) if fp_a and fp_b else None
    diff = RunDiff(
        run_a=str(a.get("run_id")),
        run_b=str(b.get("run_id")),
        same_scheme=same_scheme,
    )

    procs_a = a.get("procedures") or {}
    procs_b = b.get("procedures") or {}
    diff.procedures_only_a = sorted(set(procs_a) - set(procs_b))
    diff.procedures_only_b = sorted(set(procs_b) - set(procs_a))
    for name in sorted(set(procs_a) & set(procs_b)):
        verdict_a = (procs_a[name] or {}).get("verdict")
        verdict_b = (procs_b[name] or {}).get("verdict")
        if verdict_a != verdict_b:
            diff.verdict_drift.append(
                {"procedure": name, "a": verdict_a, "b": verdict_b}
            )

    flat_a = flatten_metrics(a.get("metrics") or {})
    flat_b = flatten_metrics(b.get("metrics") or {})
    for metric in sorted(set(flat_a) & set(flat_b)):
        pct = _pct(flat_a[metric], flat_b[metric])
        if pct is None or pct == 0:
            continue
        if abs(pct) >= metric_threshold_pct:
            diff.metric_deltas.append(
                {
                    "metric": metric,
                    "a": flat_a[metric],
                    "b": flat_b[metric],
                    "pct": pct,
                }
            )

    spans_a = a.get("spans") or {}
    spans_b = b.get("spans") or {}
    for span in sorted(set(spans_a) | set(spans_b)):
        self_a = float((spans_a.get(span) or {}).get("self") or 0.0)
        self_b = float((spans_b.get(span) or {}).get("self") or 0.0)
        pct = _pct(self_a, self_b)
        over_floor = max(self_a, self_b) >= span_floor_seconds
        flagged = (
            span in spans_a
            and span in spans_b
            and over_floor
            and (pct is None or pct == float("inf") or abs(pct) >= span_threshold_pct)
            and self_a != self_b
        )
        diff.span_deltas.append(
            {
                "span": span,
                "a_self": self_a,
                "b_self": self_b,
                "pct": None if pct == float("inf") else pct,
                "flagged": flagged,
            }
        )
    return diff


def render_diff(diff: RunDiff) -> str:
    """The human-readable ``rpcheck diff`` report."""
    lines = [f"diff {diff.run_a} -> {diff.run_b}"]
    if diff.same_scheme is True:
        lines.append("scheme    : identical fingerprint")
    elif diff.same_scheme is False:
        lines.append("scheme    : DIFFERENT fingerprints (cost deltas may be moot)")
    else:
        lines.append("scheme    : fingerprint unavailable on one side")

    if diff.verdict_drift:
        lines.append(f"verdicts  : {len(diff.verdict_drift)} DRIFTED")
        for row in diff.verdict_drift:
            lines.append(
                f"  {row['procedure']:<22} {row['a']} -> {row['b']}"
            )
    else:
        lines.append("verdicts  : no drift")
    for name in diff.procedures_only_a:
        lines.append(f"  {name:<22} only in {diff.run_a}")
    for name in diff.procedures_only_b:
        lines.append(f"  {name:<22} only in {diff.run_b}")

    flagged = diff.flagged_spans
    lines.append(
        f"spans     : {len(flagged)} of {len(diff.span_deltas)} over threshold"
    )
    for row in diff.span_deltas:
        if not row["flagged"]:
            continue
        pct = row["pct"]
        pct_text = "  (new)" if pct is None else f" {pct:+8.1f}%"
        lines.append(
            f"  {row['span']:<30} self {row['a_self'] * 1000:9.3f}ms "
            f"-> {row['b_self'] * 1000:9.3f}ms{pct_text}"
        )

    if diff.metric_deltas:
        lines.append(f"metrics   : {len(diff.metric_deltas)} over threshold")
        for row in diff.metric_deltas[:20]:
            lines.append(
                f"  {row['metric']:<44} {row['a']:g} -> {row['b']:g} "
                f"({row['pct']:+.1f}%)"
            )
        if len(diff.metric_deltas) > 20:
            lines.append(f"  ... {len(diff.metric_deltas) - 20} more")
    else:
        lines.append("metrics   : no deltas over threshold")
    return "\n".join(lines)
