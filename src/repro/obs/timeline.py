"""Per-worker timeline of a sharded exploration (``rpcheck timeline``).

The parallel explorer (PR 7/9/10) traces every window as a
``parallel.window`` span under ``session.explore``, with the worker-side
``parallel.chunk`` spans re-based and re-parented beneath it.  This
module turns that span forest back into the question the tracing was
built to answer: *where did the wall-clock go, and which worker/shard
was the straggler?*

:func:`build_timeline` reduces a record stream (from a JSONL trace or a
:class:`~repro.obs.sinks.MemorySink`) to per-window slices with one bar
per worker chunk; :func:`render_timeline_text` draws a terminal
gantt/waterfall; :func:`render_timeline_svg` renders the same data as a
self-contained ``<svg>`` fragment (no scripts, no external resources)
used both by ``rpcheck timeline -o out.svg`` and as a section of the
ledger dashboard.

Attribution per window:

* **critical path** — the window is synchronous, so its wall time is
  the slowest chunk plus the coordinator's in-frontier-order apply; the
  slowest chunk's worker and shard are named on the slice.
* **steals** — chunks whose ``stolen`` attribute is true ran on a
  worker other than their home shard's; a high steal count with a
  balanced timeline is the work-stealing doing its job, a high count
  *with* a straggler means the sharding itself is lopsided.
* **imbalance** — per-worker busy fraction inside the window (busy
  seconds / window wall).
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Window palette for the SVG rendering (cycled).
_PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#b07aa1", "#76b7b2",
    "#edc948", "#e15759", "#9c755f", "#ff9da7", "#bab0ac",
)

WINDOW_SPAN = "parallel.window"
CHUNK_SPAN = "parallel.chunk"
EXPLORE_SPAN = "session.explore"


@dataclass
class ChunkBar:
    """One worker chunk: a bar on a worker lane."""

    worker: int
    chunk: int
    shard: Optional[int]
    start: float  # seconds, same clock as the window span
    wall: float
    states: int = 0
    stolen: bool = False

    @property
    def end(self) -> float:
        return self.start + self.wall


@dataclass
class WindowSlice:
    """One exploration window: its chunks, cost split and straggler."""

    round: int
    start: float
    wall: float
    apply_seconds: float = 0.0
    steals: int = 0
    chunks: List[ChunkBar] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.start + self.wall

    @property
    def critical(self) -> Optional[ChunkBar]:
        """The slowest chunk — the window's critical path."""
        return max(self.chunks, key=lambda c: c.wall, default=None)

    def busy_fraction(self, worker: int) -> float:
        """Fraction of the window wall this worker spent expanding."""
        if self.wall <= 0:
            return 0.0
        busy = sum(c.wall for c in self.chunks if c.worker == worker)
        return min(1.0, busy / self.wall)


@dataclass
class Timeline:
    """The whole run: ordered windows plus the lane (worker) set."""

    windows: List[WindowSlice] = field(default_factory=list)
    workers: List[int] = field(default_factory=list)
    origin: float = 0.0  # start of the first window (bars are relative)
    explore_wall: Optional[float] = None

    @property
    def total_wall(self) -> float:
        if not self.windows:
            return 0.0
        return max(w.end for w in self.windows) - self.origin


def build_timeline(records: Iterable[Dict[str, Any]]) -> Timeline:
    """Reduce tracer records to a :class:`Timeline`.

    Only ``parallel.window`` / ``parallel.chunk`` spans (and the
    enclosing ``session.explore``) participate; anything else in the
    trace is ignored, so the same JSONL file that feeds ``rpcheck
    report`` feeds this.
    """
    windows: Dict[Any, WindowSlice] = {}  # window span id -> slice
    chunks: List[Tuple[Any, ChunkBar]] = []  # (parent window span id, bar)
    explore_wall: Optional[float] = None
    for record in records:
        if record.get("type") != "span":
            continue
        name = record.get("name")
        attrs = record.get("attrs") or {}
        if name == EXPLORE_SPAN:
            wall = record.get("wall")
            if isinstance(wall, (int, float)):
                explore_wall = max(explore_wall or 0.0, float(wall))
        elif name == WINDOW_SPAN:
            windows[record.get("id")] = WindowSlice(
                round=int(attrs.get("round", 0) or 0),
                start=float(record.get("start") or 0.0),
                wall=float(record.get("wall") or 0.0),
                apply_seconds=float(attrs.get("apply_seconds", 0.0) or 0.0),
                steals=int(attrs.get("steals", 0) or 0),
            )
        elif name == CHUNK_SPAN:
            shard = attrs.get("shard")
            chunks.append(
                (
                    record.get("parent"),
                    ChunkBar(
                        worker=int(attrs.get("worker", -1)),
                        chunk=int(attrs.get("chunk", -1)),
                        shard=int(shard) if shard is not None else None,
                        start=float(record.get("start") or 0.0),
                        wall=float(record.get("wall") or 0.0),
                        states=int(attrs.get("states", 0) or 0),
                        stolen=bool(attrs.get("stolen", False)),
                    ),
                )
            )
    for parent, bar in chunks:
        window = windows.get(parent)
        if window is not None:
            window.chunks.append(bar)
    ordered = sorted(windows.values(), key=lambda w: (w.start, w.round))
    for window in ordered:
        window.chunks.sort(key=lambda c: (c.worker, c.start))
    workers = sorted(
        {c.worker for w in ordered for c in w.chunks if c.worker >= 0}
    )
    origin = min((w.start for w in ordered), default=0.0)
    return Timeline(
        windows=ordered,
        workers=workers,
        origin=origin,
        explore_wall=explore_wall,
    )


def timeline_as_dict(timeline: Timeline) -> Dict[str, Any]:
    """A JSON-ready view (``rpcheck timeline --json``)."""
    return {
        "schema": "rpcheck-timeline/1",
        "workers": timeline.workers,
        "total_wall_seconds": timeline.total_wall,
        "explore_wall_seconds": timeline.explore_wall,
        "windows": [
            {
                "round": w.round,
                "start_seconds": w.start - timeline.origin,
                "wall_seconds": w.wall,
                "apply_seconds": w.apply_seconds,
                "steals": w.steals,
                "critical": (
                    {
                        "worker": w.critical.worker,
                        "shard": w.critical.shard,
                        "wall_seconds": w.critical.wall,
                    }
                    if w.critical is not None
                    else None
                ),
                "chunks": [
                    {
                        "worker": c.worker,
                        "chunk": c.chunk,
                        "shard": c.shard,
                        "start_seconds": c.start - timeline.origin,
                        "wall_seconds": c.wall,
                        "states": c.states,
                        "stolen": c.stolen,
                    }
                    for c in w.chunks
                ],
            }
            for w in timeline.windows
        ],
    }


def _fmt(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def render_timeline_text(timeline: Timeline, *, width: int = 72) -> str:
    """A terminal gantt: one lane per worker per window.

    Bars are scaled to the window wall; ``▓`` marks home-shard chunks,
    ``▒`` stolen ones, and the trailing annotation names the window's
    critical path.
    """
    if not timeline.windows:
        return "(no parallel.window spans in this trace — run with --workers N and tracing on)"
    lines = [
        f"timeline: {len(timeline.windows)} window(s) · "
        f"{len(timeline.workers)} worker(s) · "
        f"{_fmt(timeline.total_wall)} total"
    ]
    for window in timeline.windows:
        critical = window.critical
        crit_text = (
            f" · critical: worker {critical.worker}"
            + (f" shard {critical.shard}" if critical.shard is not None else "")
            + f" ({_fmt(critical.wall)})"
            if critical is not None
            else ""
        )
        lines.append(
            f"window round {window.round}: {_fmt(window.wall)} · "
            f"{len(window.chunks)} chunk(s) · {window.steals} steal(s) · "
            f"apply {_fmt(window.apply_seconds)}{crit_text}"
        )
        span = window.wall or 1.0
        lane_width = max(10, width - 18)
        for worker in timeline.workers:
            lane = [" "] * lane_width
            for chunk in window.chunks:
                if chunk.worker != worker:
                    continue
                lo = int((chunk.start - window.start) / span * lane_width)
                hi = int((chunk.end - window.start) / span * lane_width)
                lo = max(0, min(lane_width - 1, lo))
                hi = max(lo + 1, min(lane_width, hi))
                glyph = "▒" if chunk.stolen else "▓"
                for index in range(lo, hi):
                    lane[index] = glyph
            busy = window.busy_fraction(worker)
            lines.append(
                f"  w{worker:<3d} |{''.join(lane)}| {busy * 100:5.1f}% busy"
            )
    return "\n".join(lines)


def render_timeline_svg(
    timeline: Timeline,
    *,
    width: int = 860,
    lane_height: int = 22,
    standalone: bool = False,
) -> str:
    """The timeline as an inline ``<svg>`` fragment.

    One row per worker, chunk rects coloured by window (stolen chunks
    get a stroke), window boundaries as vertical rules, the critical
    chunk of each window outlined, and ``<title>`` tooltips throughout —
    the same no-script idiom as the ledger dashboard, which embeds this
    fragment verbatim.  ``standalone=True`` adds the XML prologue so the
    output is a valid ``.svg`` file (the CI artifact).
    """
    esc = lambda text: html.escape(str(text), quote=True)
    pad_l, pad_r, pad_t = 64, 10, 18
    gap = 6
    workers = timeline.workers or [0]
    height = pad_t + len(workers) * (lane_height + gap) + 28
    total = timeline.total_wall or 1.0
    usable = width - pad_l - pad_r

    def sx(t: float) -> float:
        return pad_l + (t - timeline.origin) / total * usable

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="per-worker exploration timeline" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    if standalone:
        parts.insert(0, '<?xml version="1.0" encoding="UTF-8"?>')
        parts.append(
            "<style>text{font:11px sans-serif;fill:#555}"
            ".crit{stroke:#c62828;stroke-width:2;fill:none}"
            ".stolen{stroke:#212121;stroke-width:1}</style>"
        )
    if not timeline.windows:
        parts.append(
            f'<text x="{pad_l}" y="{pad_t + 14}" class="tick">'
            "no parallel.window spans in this trace</text></svg>"
        )
        return "".join(parts)
    lane_y = {
        worker: pad_t + row * (lane_height + gap)
        for row, worker in enumerate(workers)
    }
    for worker, y in lane_y.items():
        parts.append(
            f'<text x="{pad_l - 8}" y="{y + lane_height - 6}" class="tick" '
            f'text-anchor="end">w{esc(worker)}</text>'
        )
    axis_y = pad_t + len(workers) * (lane_height + gap)
    for index, window in enumerate(timeline.windows):
        color = _PALETTE[index % len(_PALETTE)]
        x0, x1 = sx(window.start), sx(window.end)
        critical = window.critical
        parts.append(
            f'<line x1="{x0:.1f}" y1="{pad_t - 4}" x2="{x0:.1f}" '
            f'y2="{axis_y}" class="axis" stroke="#e0e0e0"/>'
        )
        label = (
            f"round {window.round}: {_fmt(window.wall)}, "
            f"{window.steals} steal(s), apply {_fmt(window.apply_seconds)}"
        )
        if critical is not None:
            label += (
                f", critical w{critical.worker}"
                + (f"/s{critical.shard}" if critical.shard is not None else "")
            )
        parts.append(
            f'<rect x="{x0:.1f}" y="{axis_y + 4}" '
            f'width="{max(x1 - x0, 1.0):.1f}" height="8" fill="{color}" '
            f'opacity="0.5" class="cell"><title>{esc(label)}</title></rect>'
        )
        for chunk in window.chunks:
            y = lane_y.get(chunk.worker)
            if y is None:
                continue
            cx0 = sx(chunk.start)
            cw = max(sx(chunk.end) - cx0, 1.0)
            title = (
                f"window {window.round} chunk {chunk.chunk} on worker "
                f"{chunk.worker}"
                + (f" (shard {chunk.shard})" if chunk.shard is not None else "")
                + f": {_fmt(chunk.wall)}, {chunk.states} state(s)"
                + (", stolen" if chunk.stolen else "")
            )
            stroke = ' class="cell stolen"' if chunk.stolen else ' class="cell"'
            parts.append(
                f'<rect x="{cx0:.1f}" y="{y}" width="{cw:.1f}" '
                f'height="{lane_height}" fill="{color}"{stroke}>'
                f"<title>{esc(title)}</title></rect>"
            )
            if critical is not None and chunk is critical:
                parts.append(
                    f'<rect x="{cx0:.1f}" y="{y}" width="{cw:.1f}" '
                    f'height="{lane_height}" class="crit" fill="none" '
                    f'stroke="#c62828" stroke-width="2"/>'
                )
    parts.append(
        f'<text x="{pad_l}" y="{axis_y + 24}" class="tick">0</text>'
    )
    parts.append(
        f'<text x="{width - pad_r}" y="{axis_y + 24}" class="tick" '
        f'text-anchor="end">{_fmt(timeline.total_wall)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)
