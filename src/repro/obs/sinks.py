"""Sinks: where span/event records go.

A sink consumes the JSON-ready dict records produced by
:class:`~repro.obs.tracer.Tracer` (and, optionally, metric snapshots).
The implementations:

* :class:`NullSink` — drops everything and reports itself disabled, so
  tracers built on it skip record construction entirely (the
  near-zero-overhead configuration);
* :class:`JsonlSink` — one JSON object per line, append-only, for offline
  analysis (``rpcheck report``, BENCH artefacts, CI uploads);
* :class:`MemorySink` — keeps records in a list, for tests and in-process
  consumers (thread-safe; see ``docs/observability.md``);
* :class:`TeeSink` — fans every record out to several sinks, which is how
  the CLI composes a :class:`~repro.obs.recorder.FlightRecorder`, a
  :class:`~repro.obs.ledger.LedgerSink` and a trace file on one tracer.

Related sinks living elsewhere in the package:
:class:`repro.obs.recorder.FlightRecorder` (bounded ring buffer) and
:class:`repro.obs.ledger.LedgerSink` (run-ledger aggregation).
"""

from __future__ import annotations

import io
import json
import threading
from typing import Any, Dict, Iterable, List, Optional, Union


class Sink:
    """Record consumer interface; subclasses override :meth:`emit`."""

    #: Tracers consult this before building records; ``False`` short-circuits.
    enabled: bool = True

    def emit(self, record: Dict[str, Any]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent; default no-op)."""


class NullSink(Sink):
    """Drops every record; marks the owning tracer disabled."""

    enabled = False

    def emit(self, record: Dict[str, Any]) -> None:
        pass

    def __repr__(self) -> str:
        return "NullSink()"


class MemorySink(Sink):
    """Collects records in memory (tests, in-process analysis).

    Thread-safe: ``emit``/``clear`` lock around the list mutation and the
    read accessors take a consistent snapshot, so tracers on worker
    threads can share one sink.  The ``records`` attribute itself stays a
    plain list for backwards compatibility — prefer :meth:`snapshot` (or
    :meth:`spans`/:meth:`events`) when other threads may still be
    emitting.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)

    def snapshot(self) -> List[Dict[str, Any]]:
        """A point-in-time copy of every record seen so far."""
        with self._lock:
            return list(self.records)

    def spans(self) -> List[Dict[str, Any]]:
        """The span records seen so far (close order: children first)."""
        return [r for r in self.snapshot() if r.get("type") == "span"]

    def events(self) -> List[Dict[str, Any]]:
        """The event records seen so far."""
        return [r for r in self.snapshot() if r.get("type") == "event"]

    def clear(self) -> None:
        with self._lock:
            self.records.clear()

    def __repr__(self) -> str:
        return f"MemorySink({len(self.records)} records)"


class TeeSink(Sink):
    """Fans every record out to several sinks.

    Enabled whenever *any* child is enabled; disabled children are
    skipped on emit (so a :class:`NullSink` child costs nothing).
    ``close()`` closes every child, even if an earlier close raises.
    """

    def __init__(self, sinks: Iterable[Sink]) -> None:
        self.sinks: List[Sink] = list(sinks)

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return any(sink.enabled for sink in self.sinks)

    def emit(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            if sink.enabled:
                sink.emit(record)

    def close(self) -> None:
        errors: List[Exception] = []
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as error:  # pragma: no cover - defensive
                errors.append(error)
        if errors:
            raise errors[0]

    def __repr__(self) -> str:
        return f"TeeSink({self.sinks!r})"


class JsonlSink(Sink):
    """Writes one compact JSON object per record to a file.

    Accepts a path (opened/truncated immediately) or any text file
    object; ``close()`` only closes handles the sink itself opened.
    Records with non-JSON-serialisable attribute values are degraded via
    ``default=repr`` rather than dropped — a trace line is observability,
    not an API.
    """

    def __init__(self, target: Union[str, "io.TextIOBase"]) -> None:
        if isinstance(target, (str, bytes)):
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
            self.path: Optional[str] = (
                target if isinstance(target, str) else target.decode()
            )
        else:
            self._handle = target
            self._owns_handle = False
            self.path = getattr(target, "name", None)
        self._closed = False

    def emit(self, record: Dict[str, Any]) -> None:
        if self._closed:
            return
        self._handle.write(
            json.dumps(record, separators=(",", ":"), default=repr) + "\n"
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __repr__(self) -> str:
        return f"JsonlSink({self.path!r})"
