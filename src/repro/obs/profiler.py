"""Sampling profiler: collapsed stacks with negligible overhead.

The span tracer answers "where did this *query* spend its time" at the
granularity the code was instrumented; :class:`SamplingProfiler` answers
"where is the *interpreter* actually executing" with no instrumentation
at all, by sampling Python stacks at a fixed rate:

* **signal mode** — ``signal.setitimer(ITIMER_PROF)`` delivers SIGPROF
  on consumed CPU time; the handler walks the interrupted frame.  This
  is the classic profiling clock (samples are CPU-proportional, sleeping
  code is invisible) but only works on the main thread of a process
  that allows signal handlers.
* **thread mode** — a daemon thread wakes every period and snapshots the
  target thread's frame via ``sys._current_frames()``.  Wall-clock
  flavoured and slightly coarser, but works anywhere (worker threads,
  the serve daemon, platforms without ``setitimer``).

``mode="auto"`` picks signal mode when it can and falls back to the
thread sampler.  Samples accumulate as collapsed stacks
(``pkg.mod.outer;pkg.mod.inner NNN`` with values in microseconds of
estimated time), the same format :func:`repro.obs.report.collapse_stacks`
emits for spans, so both feed flamegraph.pl / speedscope unchanged.

Surfaced as ``rpcheck flamegraph PROGRAM.rp --sample HZ`` and as the
opt-in ``profile`` knob of the benchmark harness; default-off
everywhere.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from collections import Counter
from types import FrameType
from typing import Dict, List, Optional, Tuple

#: Default sampling rate.  A prime, so the sampler does not phase-lock
#: with code that does work on round-number periods.
DEFAULT_HZ = 97

#: Stack depth cap: deeper frames collapse into a ``...`` root.
MAX_STACK_DEPTH = 64


def _frame_label(frame: FrameType) -> str:
    code = frame.f_code
    name = getattr(code, "co_qualname", code.co_name)
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{name}"


def _walk_stack(frame: Optional[FrameType]) -> Tuple[str, ...]:
    stack: List[str] = []
    while frame is not None and len(stack) < MAX_STACK_DEPTH:
        stack.append(_frame_label(frame))
        frame = frame.f_back
    if frame is not None:
        stack.append("...")
    stack.reverse()
    return tuple(stack)


class SamplingProfiler:
    """Collects collapsed stacks by periodic sampling.

    Usage::

        profiler = SamplingProfiler(hz=97)
        with profiler:
            run_workload()
        for line in profiler.collapsed():
            print(line)

    ``samples`` maps stack tuples (outermost first) to hit counts;
    :meth:`collapsed` renders them as flamegraph.pl input valued in
    microseconds (hits x sampling period).  ``mode_used`` reports which
    sampler actually ran (``"signal"`` or ``"thread"``).
    """

    def __init__(self, hz: int = DEFAULT_HZ, *, mode: str = "auto") -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        if mode not in ("auto", "signal", "thread"):
            raise ValueError(f"unknown profiler mode {mode!r}")
        self.hz = hz
        self.period = 1.0 / hz
        self.mode = mode
        self.mode_used: Optional[str] = None
        self.samples: Counter = Counter()
        self.sample_count = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._running = False
        self._previous_handler = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._target_thread_id: Optional[int] = None

    # -- lifecycle -------------------------------------------------------

    def _signal_available(self) -> bool:
        return (
            hasattr(signal, "setitimer")
            and hasattr(signal, "SIGPROF")
            and threading.current_thread() is threading.main_thread()
        )

    def start(self) -> "SamplingProfiler":
        """Begin sampling the calling thread."""
        if self._running:
            return self
        self._running = True
        self.started_at = time.perf_counter()
        use_signal = self.mode == "signal" or (
            self.mode == "auto" and self._signal_available()
        )
        if use_signal:
            try:
                self._previous_handler = signal.signal(
                    signal.SIGPROF, self._on_signal
                )
                signal.setitimer(signal.ITIMER_PROF, self.period, self.period)
                self.mode_used = "signal"
                return self
            except (ValueError, OSError, AttributeError):
                # not the main thread after all, or no setitimer here
                if self.mode == "signal":
                    self._running = False
                    raise
        self._start_thread_sampler()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling (idempotent)."""
        if not self._running:
            return self
        self._running = False
        self.stopped_at = time.perf_counter()
        if self.mode_used == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            if self._previous_handler is not None:
                signal.signal(signal.SIGPROF, self._previous_handler)
                self._previous_handler = None
        elif self._thread is not None:
            self._stop_event.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- samplers --------------------------------------------------------

    def _on_signal(self, signum, frame) -> None:
        if not self._running:
            return
        self.samples[_walk_stack(frame)] += 1
        self.sample_count += 1

    def _start_thread_sampler(self) -> None:
        self.mode_used = "thread"
        self._target_thread_id = threading.get_ident()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._thread_loop, name="rpcheck-profiler", daemon=True
        )
        self._thread.start()

    def _thread_loop(self) -> None:
        while not self._stop_event.wait(self.period):
            frame = sys._current_frames().get(self._target_thread_id)
            if frame is None:
                continue
            self.samples[_walk_stack(frame)] += 1
            self.sample_count += 1

    # -- output ----------------------------------------------------------

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines, values in µs (hits x period), sorted."""
        period_us = self.period * 1e6
        lines = [
            f"{';'.join(stack)} {int(hits * period_us)}"
            for stack, hits in self.samples.items()
            if stack
        ]
        return sorted(lines)

    def stats(self) -> Dict[str, object]:
        """Sampler health: rate, mode, sample count, elapsed."""
        elapsed = None
        if self.started_at is not None:
            end = self.stopped_at
            if end is None:
                end = time.perf_counter()
            elapsed = end - self.started_at
        return {
            "hz": self.hz,
            "mode": self.mode_used,
            "samples": self.sample_count,
            "distinct_stacks": len(self.samples),
            "elapsed_seconds": elapsed,
        }

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return f"SamplingProfiler(hz={self.hz}, {state}, {self.sample_count} samples)"
