"""Typed metrics: counters, gauges, histograms, with labelled children.

A :class:`MetricsRegistry` owns named metrics.  Each metric may have
**labelled children** (``counter.labels(procedure="boundedness")``), a
child per distinct label set, capped at
:data:`DEFAULT_LABEL_CARDINALITY` distinct sets per metric — beyond the
cap new label sets collapse into one shared overflow child, so a
label-explosion bug degrades a metric's resolution instead of memory.

The three types:

* :class:`CounterMetric` — monotone totals (``inc``); snapshot adapters
  that mirror an externally-maintained total may ``set_total``;
* :class:`GaugeMetric` — last-value samples remembering their ``max`` and
  ``min`` (this is the single source of truth for e.g. peak frontier);
* :class:`HistogramMetric` — ``observe`` a stream of values; keeps count,
  sum, min, max (and hence mean) plus a fixed geometric bucket layout
  (:data:`HISTOGRAM_BUCKET_BOUNDS`) from which p50/p95/p99 percentiles
  are estimated — all without storing the stream.

Everything renders to a flat text block (``registry.render()``) and a
JSON-ready nested dict (``registry.as_dict()``); the registry is
dependency-free and cheap enough to exist on every
:class:`~repro.analysis.session.AnalysisSession`.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Maximum distinct label sets per metric before overflow collapsing.
DEFAULT_LABEL_CARDINALITY = 64


def _geometric_bounds() -> Tuple[float, ...]:
    # three buckets per decade, 1µs .. 10ks: wide enough for seconds-flavoured
    # timings at one end and small integer observations (parallelism, depths)
    # at the other, narrow enough (±~47% per bucket) for honest percentiles
    bounds: List[float] = []
    for decade in range(-6, 5):
        for mantissa in (1.0, 2.15, 4.64):
            bounds.append(round(mantissa * 10.0 ** decade, 10))
    return tuple(bounds)


#: Upper bounds (``le`` semantics) of the shared histogram bucket layout.
#: One fixed layout for every histogram keeps ``merge`` a plain
#: element-wise sum and the wire shape a bare list of counts.
HISTOGRAM_BUCKET_BOUNDS: Tuple[float, ...] = _geometric_bounds()

#: The label marker carried by the shared overflow child.
OVERFLOW_LABEL = ("__overflow__", "true")

#: A canonicalised label set.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base: name, description, labelled children with a cardinality cap."""

    kind = "metric"

    def __init__(
        self,
        name: str,
        description: str = "",
        *,
        max_label_sets: int = DEFAULT_LABEL_CARDINALITY,
    ) -> None:
        self.name = name
        self.description = description
        self.max_label_sets = max_label_sets
        self._children: Dict[LabelKey, "Metric"] = {}
        self._children_lock = threading.Lock()
        self.labels_dropped = 0

    def labels(self, **labels: Any) -> "Metric":
        """The child metric for this label set (created on first use).

        Past the cardinality cap, every *new* label set maps to one
        shared overflow child (labelled ``__overflow__=true``) and is
        counted in ``labels_dropped``; existing children keep working.

        Thread-safe: child creation is locked, so two threads requesting
        the same new label set get the same child (the fast path — an
        existing child — stays lock-free).
        """
        key = _label_key(labels)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._children_lock:
            child = self._children.get(key)
            if child is not None:
                return child
            if len(self._children) >= self.max_label_sets:
                self.labels_dropped += 1
                overflow = self._children.get((OVERFLOW_LABEL,))
                if overflow is None:
                    overflow = self._spawn()
                    self._children[(OVERFLOW_LABEL,)] = overflow
                return overflow
            child = self._spawn()
            self._children[key] = child
            return child

    def _spawn(self) -> "Metric":
        return type(self)(self.name, self.description, max_label_sets=0)

    def children(self) -> Iterator[Tuple[LabelKey, "Metric"]]:
        """The labelled children, in insertion order.

        Iterates a snapshot taken under the children lock, so a live
        scrape (``/v1/metrics``) never races concurrent label creation
        into a ``dictionary changed size during iteration`` error.
        """
        with self._children_lock:
            return iter(list(self._children.items()))

    # -- subclass hooks --------------------------------------------------

    def value_dict(self) -> Dict[str, Any]:  # pragma: no cover - interface
        raise NotImplementedError

    def value_text(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot including labelled children."""
        out = {"type": self.kind, **self.value_dict()}
        if self.description:
            out["description"] = self.description
        with self._children_lock:
            children = list(self._children.items())
        if children:
            out["labels"] = {
                "{" + ",".join(f"{k}={v}" for k, v in key) + "}": child.value_dict()
                for key, child in children
            }
        if self.labels_dropped:
            out["labels_dropped"] = self.labels_dropped
        return out


class CounterMetric(Metric):
    """A monotone total."""

    kind = "counter"

    def __init__(self, name: str, description: str = "", *, max_label_sets: int = DEFAULT_LABEL_CARDINALITY) -> None:
        super().__init__(name, description, max_label_sets=max_label_sets)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be ≥ 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Snapshot adapter: mirror an externally-maintained total.

        Totals must not go backwards; lets subsystems that keep raw int
        counters on their hot paths (e.g. the Embedder) publish into the
        registry without paying per-increment method calls.
        """
        if value < self.value:
            raise ValueError(
                f"counter {self.name!r}: total went backwards "
                f"({self.value} -> {value})"
            )
        self.value = value

    def total(self) -> float:
        """Own value plus all labelled children."""
        return self.value + sum(child.value for child in self._children.values())

    def value_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    def value_text(self) -> str:
        return f"{self.value:g}"


class GaugeMetric(Metric):
    """A sampled value remembering its extremes."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "", *, max_label_sets: int = DEFAULT_LABEL_CARDINALITY) -> None:
        super().__init__(name, description, max_label_sets=max_label_sets)
        self.value: Optional[float] = None
        self.max: Optional[float] = None
        self.min: Optional[float] = None

    def set(self, value: float) -> None:
        """Record a sample (updates value/max/min)."""
        self.value = value
        if self.max is None or value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value

    def value_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "max": self.max, "min": self.min}

    def value_text(self) -> str:
        if self.value is None:
            return "(no samples)"
        return f"{self.value:g} (max {self.max:g}, min {self.min:g})"


class HistogramMetric(Metric):
    """A stream summary: count, sum, min, max, and bucketed percentiles.

    Observations additionally land in the shared geometric bucket layout
    (:data:`HISTOGRAM_BUCKET_BOUNDS`, plus one overflow bucket), so
    :meth:`percentile` can estimate p50/p95/p99 by linear interpolation
    inside the containing bucket — bounded error (one bucket's width,
    ±~47%) at O(len(bounds)) memory, never storing the stream.
    """

    kind = "histogram"

    def __init__(self, name: str, description: str = "", *, max_label_sets: int = DEFAULT_LABEL_CARDINALITY) -> None:
        super().__init__(name, description, max_label_sets=max_label_sets)
        self.count: int = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * (len(HISTOGRAM_BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect.bisect_left(HISTOGRAM_BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile (``0 < q <= 1``) from the buckets.

        Interpolates linearly inside the containing bucket and clamps to
        the observed ``[min, max]``, so single-observation histograms and
        extreme quantiles report exact extremes rather than bucket edges.
        """
        if not self.count:
            return None
        if self.min is None or self.max is None:  # pragma: no cover - invariant
            return None
        rank = q * self.count
        seen = 0.0
        for index, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                if index == 0:
                    lower = 0.0
                else:
                    lower = HISTOGRAM_BUCKET_BOUNDS[index - 1]
                if index < len(HISTOGRAM_BUCKET_BOUNDS):
                    upper = HISTOGRAM_BUCKET_BOUNDS[index]
                else:
                    upper = self.max
                fraction = (rank - seen) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            seen += bucket_count
        return self.max

    def value_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": list(self.buckets),
        }

    def value_text(self) -> str:
        if not self.count:
            return "(no observations)"
        text = f"n={self.count} sum={self.sum:g} mean={self.mean:g}"
        p50, p95, p99 = (
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
        )
        if p50 is not None:
            text += f" p50={p50:g} p95={p95:g} p99={p99:g}"
        if self.min is not None and self.max is not None:
            text += f" min={self.min:g} max={self.max:g}"
        return text


def _merge_metric(dst: Metric, src: Metric) -> None:
    """Fold one metric's values (and labelled children) into another."""
    if isinstance(src, CounterMetric):
        dst.inc(src.value)
    elif isinstance(src, GaugeMetric):
        if src.value is not None:
            dst.set(src.value)
        if src.max is not None and (dst.max is None or src.max > dst.max):
            dst.max = src.max
        if src.min is not None and (dst.min is None or src.min < dst.min):
            dst.min = src.min
    elif isinstance(src, HistogramMetric):
        dst.count += src.count
        dst.sum += src.sum
        if src.min is not None and (dst.min is None or src.min < dst.min):
            dst.min = src.min
        if src.max is not None and (dst.max is None or src.max > dst.max):
            dst.max = src.max
        for index, bucket_count in enumerate(src.buckets):
            dst.buckets[index] += bucket_count
    for key, child in src.children():
        _merge_metric(dst.labels(**dict(key)), child)
    dst.labels_dropped += src.labels_dropped


class MetricsRegistry:
    """A namespace of metrics, get-or-create by name.

    Re-requesting a name returns the existing metric; requesting it as a
    different type raises — a registry is a schema, not a grab bag.
    """

    def __init__(
        self, *, max_label_sets: int = DEFAULT_LABEL_CARDINALITY
    ) -> None:
        self._metrics: Dict[str, Metric] = {}
        self.max_label_sets = max_label_sets
        self._lock = threading.RLock()

    def _get(self, cls, name: str, description: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None and type(metric) is cls:
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, description, max_label_sets=self.max_label_sets)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested as {cls.kind}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> CounterMetric:
        """Get or create the counter *name*."""
        return self._get(CounterMetric, name, description)

    def gauge(self, name: str, description: str = "") -> GaugeMetric:
        """Get or create the gauge *name*."""
        return self._get(GaugeMetric, name, description)

    def histogram(self, name: str, description: str = "") -> HistogramMetric:
        """Get or create the histogram *name*."""
        return self._get(HistogramMetric, name, description)

    def get(self, name: str) -> Optional[Metric]:
        """The metric registered under *name*, or ``None``."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        """Registered metric names, sorted (snapshot under the lock)."""
        with self._lock:
            return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of every metric (sorted by name)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {metric.name: metric.as_dict() for metric in metrics}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s metrics into this registry.

        Counters add, gauges sample the other's last value (widening
        max/min), histograms combine their summaries; labelled children
        merge recursively.  Lets per-run registries (one interpreted run,
        one benchmark repetition) roll up into a long-lived one.

        Thread-safe with respect to this registry's structure: the whole
        fold runs under the registry lock, so concurrent merges from
        several worker registries serialise instead of interleaving
        half-applied children.  (See ``docs/observability.md`` for the
        full concurrency contract.)
        """
        with self._lock:
            for name in other.names():
                src = other._metrics[name]
                dst = self._get(type(src), name, src.description)
                _merge_metric(dst, src)

    def render(self) -> str:
        """Human-readable multi-line dump, one line per (metric, label set)."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            lines.append(f"{name:<34} {metric.value_text()}")
            for key, child in metric.children():
                label = "{" + ",".join(f"{k}={v}" for k, v in key) + "}"
                lines.append(f"  {name}{label:<40} {child.value_text()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Wire round-trip: as_dict() -> registry
# ----------------------------------------------------------------------

_KIND_FACTORIES = {
    CounterMetric.kind: "counter",
    GaugeMetric.kind: "gauge",
    HistogramMetric.kind: "histogram",
}


def _parse_label_key(text: str) -> Dict[str, str]:
    """Invert the ``{k=v,...}`` rendering used by :meth:`Metric.as_dict`.

    Label values containing ``,`` or ``=`` do not round-trip — the wire
    format is for the registry's own label discipline (worker indices,
    procedure names, cell names), not arbitrary strings.
    """
    body = text.strip()
    if body.startswith("{") and body.endswith("}"):
        body = body[1:-1]
    labels: Dict[str, str] = {}
    for part in body.split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key] = value
    return labels


def _apply_values(metric: Metric, values: Dict[str, Any]) -> None:
    if isinstance(metric, CounterMetric):
        value = values.get("value")
        if isinstance(value, (int, float)) and value > metric.value:
            metric.value = value
    elif isinstance(metric, GaugeMetric):
        for field in ("value", "max", "min"):
            raw = values.get(field)
            if isinstance(raw, (int, float)):
                setattr(metric, field, raw)
    elif isinstance(metric, HistogramMetric):
        count = values.get("count")
        total = values.get("sum")
        metric.count = int(count) if isinstance(count, (int, float)) else 0
        metric.sum = float(total) if isinstance(total, (int, float)) else 0.0
        for field in ("min", "max"):
            raw = values.get(field)
            if isinstance(raw, (int, float)):
                setattr(metric, field, raw)
        buckets = values.get("buckets")
        if isinstance(buckets, list) and len(buckets) == len(metric.buckets):
            metric.buckets = [int(b) if isinstance(b, (int, float)) else 0 for b in buckets]
        elif metric.count and metric.max is not None:
            # older senders (or hand-written payloads) without bucket data:
            # approximate by dropping every observation at the max, which
            # keeps percentile() defined and clamped to the true extremes
            metric.buckets[bisect.bisect_left(HISTOGRAM_BUCKET_BOUNDS, metric.max)] += metric.count


def registry_from_dict(payload: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from :meth:`~MetricsRegistry.as_dict`.

    This is the wire half of the worker-registry contract: a subprocess
    (one sharded exploration worker, a remote bench runner) snapshots its
    registry with ``as_dict()``, ships the plain dict across a pipe, and
    the coordinator rebuilds it here and folds it into the long-lived
    registry with :meth:`~MetricsRegistry.merge` — counters add, gauges
    widen their extremes, histograms combine, labelled children
    reattach.  Unknown metric types are skipped rather than rejected, so
    a newer worker can talk to an older coordinator.
    """
    registry = MetricsRegistry()
    if not isinstance(payload, dict):
        return registry
    for name, block in payload.items():
        if not isinstance(block, dict):
            continue
        kind = block.get("type")
        factory = _KIND_FACTORIES.get(kind)
        if factory is None:
            continue
        metric = getattr(registry, factory)(name, block.get("description", ""))
        _apply_values(metric, block)
        labels = block.get("labels")
        if isinstance(labels, dict):
            for label_text, values in labels.items():
                if not isinstance(values, dict):
                    continue
                child = metric.labels(**_parse_label_key(label_text))
                _apply_values(child, values)
        dropped = block.get("labels_dropped")
        if isinstance(dropped, int):
            metric.labels_dropped = dropped
    return registry
