"""Nested spans and point events.

A :class:`Tracer` produces **spans** — named, attributed regions of work
with wall and CPU time — and **events**, instantaneous points attached to
the innermost open span.  The current span is tracked in a
:mod:`contextvars` context variable, so instrumentation composes across
call boundaries: a span opened inside ``AnalysisSession.explore`` nests
under whatever span the calling decision procedure opened, without either
side knowing about the other.

Spans are emitted to the tracer's :class:`~repro.obs.sinks.Sink` when they
*close* (children before parents), one record per span/event; the tree is
reconstructed from ``id``/``parent`` fields (:mod:`repro.obs.report`).

A tracer without a sink — or with the :class:`~repro.obs.sinks.NullSink`
— is *disabled*: :meth:`Tracer.span` returns a shared no-op context
manager and :meth:`Tracer.event` returns immediately, so leaving
instrumentation in hot-ish paths costs one attribute check and one method
call.  Per-state inner loops should still not be spanned; spans are for
*phases* (an exploration, a saturation, a certificate extraction).
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

from .sinks import NullSink, Sink

#: The innermost open span of the current execution context.
_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro-obs-current-span", default=None
)


def current_span() -> Optional["Span"]:
    """The innermost open :class:`Span` of this context, or ``None``."""
    return _CURRENT_SPAN.get()


class Span:
    """One named, timed region of work.

    Mutable only while open: :meth:`set` adds/overwrites attributes (e.g.
    a result computed just before the span closes).  Timing fields are
    filled in when the span closes; ``wall_seconds``/``cpu_seconds`` are
    ``None`` on a still-open span.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start",
        "wall_seconds",
        "cpu_seconds",
        "_cpu_start",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.wall_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def _close(self) -> None:
        self.wall_seconds = time.perf_counter() - self.start
        self.cpu_seconds = time.process_time() - self._cpu_start

    def record(self) -> Dict[str, Any]:
        """The JSON-ready sink record for this (closed) span."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "wall": self.wall_seconds,
            "cpu": self.cpu_seconds,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        state = "open" if self.wall_seconds is None else f"{self.wall_seconds:.6f}s"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NoopSpan:
    """The do-nothing span handed out by a disabled tracer (a singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: Shared by every disabled tracer; identity-testable in the test-suite.
NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager pairing a span with its contextvar token."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token = _CURRENT_SPAN.set(span)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        _CURRENT_SPAN.reset(self._token)
        span = self._span
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        span._close()
        self._tracer._sink.emit(span.record())


class Tracer:
    """A span/event producer writing to one :class:`~repro.obs.sinks.Sink`.

    ``Tracer()`` (no sink) is disabled and safe to leave threaded through
    production code; construct with a :class:`~repro.obs.sinks.JsonlSink`
    or :class:`~repro.obs.sinks.MemorySink` to switch the instrumentation
    on.  Span ids are unique per tracer.
    """

    __slots__ = ("_sink", "_next_id")

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self._sink: Sink = sink if sink is not None else NullSink()
        self._next_id = 0

    @property
    def enabled(self) -> bool:
        """Whether spans/events are actually recorded."""
        return self._sink.enabled

    @property
    def sink(self) -> Sink:
        """The tracer's sink (``NullSink`` when disabled)."""
        return self._sink

    def span(self, name: str, **attrs: Any):
        """Open a span; use as ``with tracer.span("phase", key=val) as s:``.

        Nested under the context's current span automatically.  Disabled
        tracers return the shared no-op context manager.
        """
        if not self._sink.enabled:
            return NOOP_SPAN
        parent = _CURRENT_SPAN.get()
        self._next_id += 1
        span = Span(
            name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            attrs=attrs,
        )
        return _SpanContext(self, span)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event attached to the current span (if any)."""
        if not self._sink.enabled:
            return
        parent = _CURRENT_SPAN.get()
        self._sink.emit(
            {
                "type": "event",
                "span": None if parent is None else parent.span_id,
                "name": name,
                "time": time.perf_counter(),
                "attrs": attrs,
            }
        )

    def close(self) -> None:
        """Flush and close the sink (idempotent)."""
        self._sink.close()

    def __repr__(self) -> str:
        return f"Tracer(sink={self._sink!r}, enabled={self.enabled})"
