"""Nested spans and point events.

A :class:`Tracer` produces **spans** — named, attributed regions of work
with wall and CPU time — and **events**, instantaneous points attached to
the innermost open span.  The current span is tracked in a
:mod:`contextvars` context variable, so instrumentation composes across
call boundaries: a span opened inside ``AnalysisSession.explore`` nests
under whatever span the calling decision procedure opened, without either
side knowing about the other.

Spans are emitted to the tracer's :class:`~repro.obs.sinks.Sink` when they
*close* (children before parents), one record per span/event; the tree is
reconstructed from ``id``/``parent`` fields (:mod:`repro.obs.report`).

A tracer without a sink — or with the :class:`~repro.obs.sinks.NullSink`
— is *disabled*: :meth:`Tracer.span` returns a shared no-op context
manager and :meth:`Tracer.event` returns immediately, so leaving
instrumentation in hot-ish paths costs one attribute check and one method
call.  Per-state inner loops should still not be spanned; spans are for
*phases* (an exploration, a saturation, a certificate extraction).
"""

from __future__ import annotations

import contextlib
import secrets
import time
import uuid
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

from .sinks import NullSink, Sink

#: The innermost open span of the current execution context.
_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro-obs-current-span", default=None
)

#: Trace context adopted by the *next* root span opened in this context
#: (installed by :func:`trace_context`; cleared on scope exit).
_PENDING_CONTEXT: ContextVar[Optional["TraceContext"]] = ContextVar(
    "repro-obs-pending-trace-context", default=None
)

_SPAN_ID_MASK = 0xFFFFFFFFFFFFFFFF

#: ``traceparent`` parent field meaning "no remote parent".
_NO_PARENT = "0" * 16


def current_span() -> Optional["Span"]:
    """The innermost open :class:`Span` of this context, or ``None``."""
    return _CURRENT_SPAN.get()


class TraceContext:
    """Causal identity of one distributed trace.

    A 128-bit trace id plus, optionally, the OTLP span id (16 hex digits)
    of the *remote* parent span — the span on the other side of a process
    or wire boundary under which this process's root span should hang.
    ``span_base`` is a process-local random 64-bit offset mixed into the
    exported OTLP span ids so that two processes contributing sequential
    tracer ids (1, 2, 3, ...) to the same trace cannot collide; it never
    travels on the wire.

    Wire form (:meth:`to_traceparent`) follows the W3C ``traceparent``
    shape — ``00-<32 hex trace id>-<16 hex parent span id>-01`` — with an
    all-zero parent field meaning "trace id only, no remote parent".
    """

    __slots__ = ("trace_id", "parent_span", "span_base")

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
        span_base: Optional[int] = None,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex
        self.parent_span = parent_span
        self.span_base = (
            span_base
            if span_base is not None
            else secrets.randbits(64) & ~0xFFFFFFFF  # keep low bits for ids
        )

    def otlp_span_id(self, local_id: Any) -> str:
        """The 16-hex OTLP span id for a tracer-local integer span id."""
        try:
            value = int(local_id)
        except (TypeError, ValueError):
            value = 0
        return format((self.span_base + value) & _SPAN_ID_MASK, "016x")

    def child(self, local_span_id: Any) -> "TraceContext":
        """A context naming *local_span_id* as the remote parent.

        This is what goes on the wire: same trace, the given span as the
        causal parent of whatever root span the receiver opens.  The
        receiver mints its own ``span_base``.
        """
        return TraceContext(
            trace_id=self.trace_id,
            parent_span=self.otlp_span_id(local_span_id),
        )

    def to_traceparent(self) -> str:
        """Serialise for the ``traceparent`` wire field."""
        return f"00-{self.trace_id}-{self.parent_span or _NO_PARENT}-01"

    @classmethod
    def from_traceparent(cls, value: Any) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` string; ``None`` on anything malformed."""
        if not isinstance(value, str):
            return None
        parts = value.strip().lower().split("-")
        if len(parts) != 4:
            return None
        _version, trace_id, parent, _flags = parts
        if len(trace_id) != 32 or len(parent) != 16:
            return None
        try:
            int(trace_id, 16), int(parent, 16)
        except ValueError:
            return None
        if set(trace_id) == {"0"}:
            return None
        return cls(
            trace_id=trace_id,
            parent_span=None if parent == _NO_PARENT else parent,
        )

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"parent_span={self.parent_span!r})"
        )


@contextlib.contextmanager
def trace_context(context: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install *context* for the next root span opened in this context.

    ``with trace_context(ctx): ...`` makes every root span (a span with
    no open parent) opened inside the block adopt *ctx* — its trace id,
    its remote parent, its span-id base — instead of minting a fresh
    trace.  ``trace_context(None)`` is a no-op, so callers can pass a
    possibly-absent propagated context straight through.
    """
    if context is None:
        yield None
        return
    token = _PENDING_CONTEXT.set(context)
    try:
        yield context
    finally:
        _PENDING_CONTEXT.reset(token)


def current_trace_context() -> Optional[TraceContext]:
    """The trace context in effect here: innermost open span's, else the
    installed pending one, else ``None``."""
    span = _CURRENT_SPAN.get()
    if span is not None and span.trace is not None:
        return span.trace
    return _PENDING_CONTEXT.get()


class Span:
    """One named, timed region of work.

    Mutable only while open: :meth:`set` adds/overwrites attributes (e.g.
    a result computed just before the span closes).  Timing fields are
    filled in when the span closes; ``wall_seconds``/``cpu_seconds`` are
    ``None`` on a still-open span.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "trace",
        "start",
        "wall_seconds",
        "cpu_seconds",
        "_cpu_start",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace = trace
        self.attrs = attrs
        self.start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.wall_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def _close(self) -> None:
        self.wall_seconds = time.perf_counter() - self.start
        self.cpu_seconds = time.process_time() - self._cpu_start

    def record(self) -> Dict[str, Any]:
        """The JSON-ready sink record for this (closed) span."""
        out = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "wall": self.wall_seconds,
            "cpu": self.cpu_seconds,
            "attrs": self.attrs,
        }
        trace = self.trace
        if trace is not None:
            out["trace"] = trace.trace_id
            out["span_base"] = trace.span_base
            if self.parent_id is None and trace.parent_span is not None:
                # the remote (cross-process) parent: deliberately NOT the
                # local ``parent`` field, so local tree reconstruction
                # still sees this span as a root; the OTLP exporter turns
                # it into the span's ``parentSpanId``
                out["remote_parent"] = trace.parent_span
        return out

    def __repr__(self) -> str:
        state = "open" if self.wall_seconds is None else f"{self.wall_seconds:.6f}s"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NoopSpan:
    """The do-nothing span handed out by a disabled tracer (a singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: Shared by every disabled tracer; identity-testable in the test-suite.
NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager pairing a span with its contextvar token."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token = _CURRENT_SPAN.set(span)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        _CURRENT_SPAN.reset(self._token)
        span = self._span
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        span._close()
        self._tracer._sink.emit(span.record())


class Tracer:
    """A span/event producer writing to one :class:`~repro.obs.sinks.Sink`.

    ``Tracer()`` (no sink) is disabled and safe to leave threaded through
    production code; construct with a :class:`~repro.obs.sinks.JsonlSink`
    or :class:`~repro.obs.sinks.MemorySink` to switch the instrumentation
    on.  Span ids are unique per tracer.
    """

    __slots__ = ("_sink", "_next_id")

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self._sink: Sink = sink if sink is not None else NullSink()
        self._next_id = 0

    @property
    def enabled(self) -> bool:
        """Whether spans/events are actually recorded."""
        return self._sink.enabled

    @property
    def sink(self) -> Sink:
        """The tracer's sink (``NullSink`` when disabled)."""
        return self._sink

    def span(self, name: str, **attrs: Any):
        """Open a span; use as ``with tracer.span("phase", key=val) as s:``.

        Nested under the context's current span automatically.  Disabled
        tracers return the shared no-op context manager.
        """
        if not self._sink.enabled:
            return NOOP_SPAN
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            trace = parent.trace
        else:
            # a root span starts (or continues) a distributed trace: adopt
            # the propagated context if one is installed, else mint a
            # fresh trace id — concurrent queries must never share one
            trace = _PENDING_CONTEXT.get()
            if trace is None:
                trace = TraceContext()
        self._next_id += 1
        span = Span(
            name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            attrs=attrs,
            trace=trace,
        )
        return _SpanContext(self, span)

    def reserve_ids(self, count: int) -> int:
        """Reserve *count* fresh span ids; returns the first of the block.

        Used when re-basing span records shipped from another process
        (worker chunk spans) into this tracer's id space: the records get
        ids ``first .. first+count-1`` and can then be emitted to the
        sink without colliding with locally opened spans.
        """
        first = self._next_id + 1
        self._next_id += max(0, int(count))
        return first

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event attached to the current span (if any)."""
        if not self._sink.enabled:
            return
        parent = _CURRENT_SPAN.get()
        self._sink.emit(
            {
                "type": "event",
                "span": None if parent is None else parent.span_id,
                "name": name,
                "time": time.perf_counter(),
                "attrs": attrs,
            }
        )

    def close(self) -> None:
        """Flush and close the sink (idempotent)."""
        self._sink.close()

    def __repr__(self) -> str:
        return f"Tracer(sink={self._sink!r}, enabled={self.enabled})"
