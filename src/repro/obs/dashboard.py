"""Static HTML dashboard over the run ledger (``rpcheck dashboard``).

Renders an ``rpcheck-ledger/1`` history as **one self-contained HTML
file**: inline CSS, server-side-generated inline SVG, zero scripts and
zero network fetches — the file can be opened from disk, attached to a
CI run, or emailed, and looks the same everywhere.

Sections:

* **Summary cards** — run counts by outcome and kind, scheme count,
  covered time span.
* **Runs over time** — wall-clock seconds per run on a time axis,
  coloured by outcome, so regressions and error bursts are visible at a
  glance.
* **Procedures** — per-procedure verdict distribution plus the
  mean/p95 wall time of the runs answering it.
* **Self-time treemap** — the per-span-name self-time rollup carried by
  ledger entries, aggregated across runs and laid out as a slice-and-
  dice treemap: the widest boxes are the hot spans.
* **Worker balance** — for sharded runs (``extra.worker_expansions``),
  a stacked bar of expansions per worker per run; a lopsided bar means
  the frontier sharding is unbalanced.

Everything here is plain data-to-string rendering over ledger entry
dicts; nothing imports the analysis engine.
"""

from __future__ import annotations

import html
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Outcome colours (also used as the legend).
OUTCOME_COLORS = {
    "ok": "#2e7d32",
    "partial": "#ef6c00",
    "error": "#c62828",
}
_FALLBACK_COLOR = "#546e7a"

#: Treemap / bar palette (cycled).
PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _fmt_seconds(value: Optional[float]) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    return ordered[index]


# ----------------------------------------------------------------------
# Section renderers
# ----------------------------------------------------------------------


def _summary_cards(entries: List[Dict[str, Any]]) -> str:
    outcomes: Dict[str, int] = {}
    kinds: Dict[str, int] = {}
    schemes = set()
    stamps: List[float] = []
    for entry in entries:
        outcomes[entry.get("outcome") or "?"] = (
            outcomes.get(entry.get("outcome") or "?", 0) + 1
        )
        kinds[entry.get("kind") or "?"] = kinds.get(entry.get("kind") or "?", 0) + 1
        name = (entry.get("scheme") or {}).get("fingerprint")
        if name:
            schemes.add(name)
        stamp = entry.get("timestamp")
        if isinstance(stamp, (int, float)):
            stamps.append(stamp)
    span = "-"
    if stamps:
        fmt = "%Y-%m-%d %H:%M"
        span = (
            time.strftime(fmt, time.localtime(min(stamps)))
            + " — "
            + time.strftime(fmt, time.localtime(max(stamps)))
        )
    outcome_text = " · ".join(f"{k}: {v}" for k, v in sorted(outcomes.items()))
    kind_text = " · ".join(f"{k}: {v}" for k, v in sorted(kinds.items()))
    cards = [
        ("runs", str(len(entries))),
        ("schemes", str(len(schemes))),
        ("outcomes", outcome_text or "-"),
        ("kinds", kind_text or "-"),
        ("span", span),
    ]
    boxes = "".join(
        f'<div class="card"><div class="card-label">{_esc(label)}</div>'
        f'<div class="card-value">{_esc(value)}</div></div>'
        for label, value in cards
    )
    return f'<div class="cards">{boxes}</div>'


def _runs_over_time_svg(entries: List[Dict[str, Any]]) -> str:
    points: List[Tuple[float, float, str, str]] = []
    for entry in entries:
        stamp = entry.get("timestamp")
        wall = (entry.get("totals") or {}).get("wall_seconds")
        if not isinstance(stamp, (int, float)) or not isinstance(wall, (int, float)):
            continue
        outcome = entry.get("outcome") or "?"
        label = (
            f"{entry.get('run_id', '?')} · "
            f"{(entry.get('scheme') or {}).get('name', '?')} · "
            f"{outcome} · {_fmt_seconds(wall)}"
        )
        points.append((float(stamp), max(float(wall), 0.0), outcome, label))
    if not points:
        return "<p class='empty'>(no timestamped runs)</p>"
    width, height, pad = 860, 220, 40
    t_lo = min(p[0] for p in points)
    t_hi = max(p[0] for p in points)
    w_hi = max(p[1] for p in points) or 1.0
    t_range = (t_hi - t_lo) or 1.0

    def sx(t: float) -> float:
        return pad + (t - t_lo) / t_range * (width - 2 * pad)

    def sy(w: float) -> float:
        return height - pad - (w / w_hi) * (height - 2 * pad)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="wall seconds per run over time">',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" class="axis"/>',
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" class="axis"/>',
        f'<text x="{pad - 6}" y="{pad + 4}" class="tick" text-anchor="end">'
        f"{_fmt_seconds(w_hi)}</text>",
        f'<text x="{pad - 6}" y="{height - pad}" class="tick" text-anchor="end">0</text>',
    ]
    fmt = "%H:%M:%S" if t_hi - t_lo < 86400 else "%m-%d %H:%M"
    parts.append(
        f'<text x="{pad}" y="{height - pad + 16}" class="tick">'
        f"{time.strftime(fmt, time.localtime(t_lo))}</text>"
    )
    parts.append(
        f'<text x="{width - pad}" y="{height - pad + 16}" class="tick" '
        f'text-anchor="end">{time.strftime(fmt, time.localtime(t_hi))}</text>'
    )
    for stamp, wall, outcome, label in points:
        color = OUTCOME_COLORS.get(outcome, _FALLBACK_COLOR)
        parts.append(
            f'<circle cx="{sx(stamp):.1f}" cy="{sy(wall):.1f}" r="4" '
            f'fill="{color}"><title>{_esc(label)}</title></circle>'
        )
    parts.append("</svg>")
    legend = " ".join(
        f'<span class="chip" style="background:{color}">{_esc(name)}</span>'
        for name, color in OUTCOME_COLORS.items()
    )
    return "".join(parts) + f'<div class="legend">{legend}</div>'


def _procedures_table(entries: List[Dict[str, Any]]) -> str:
    stats: Dict[str, Dict[str, Any]] = {}
    for entry in entries:
        wall = (entry.get("totals") or {}).get("wall_seconds")
        for name, block in (entry.get("procedures") or {}).items():
            row = stats.setdefault(
                name, {"runs": 0, "verdicts": {}, "walls": []}
            )
            row["runs"] += 1
            verdict = (block or {}).get("verdict") or "?"
            row["verdicts"][verdict] = row["verdicts"].get(verdict, 0) + 1
            if isinstance(wall, (int, float)):
                row["walls"].append(float(wall))
    if not stats:
        return "<p class='empty'>(no procedure verdicts recorded)</p>"
    rows = []
    for name in sorted(stats):
        row = stats[name]
        verdicts = " · ".join(
            f"{k}: {v}" for k, v in sorted(row["verdicts"].items())
        )
        mean = (
            sum(row["walls"]) / len(row["walls"]) if row["walls"] else None
        )
        p95 = _percentile(row["walls"], 0.95)
        rows.append(
            f"<tr><td>{_esc(name)}</td><td class='num'>{row['runs']}</td>"
            f"<td>{_esc(verdicts)}</td>"
            f"<td class='num'>{_fmt_seconds(mean)}</td>"
            f"<td class='num'>{_fmt_seconds(p95)}</td></tr>"
        )
    return (
        "<table><thead><tr><th>procedure</th><th>runs</th><th>verdicts</th>"
        "<th>mean wall</th><th>p95 wall</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _treemap_svg(entries: List[Dict[str, Any]], *, top: int = 24) -> str:
    self_time: Dict[str, float] = {}
    for entry in entries:
        for name, block in (entry.get("spans") or {}).items():
            value = (block or {}).get("self")
            if isinstance(value, (int, float)) and value > 0:
                self_time[name] = self_time.get(name, 0.0) + float(value)
    if not self_time:
        return "<p class='empty'>(no span rollups in the ledger)</p>"
    ranked = sorted(self_time.items(), key=lambda kv: kv[1], reverse=True)
    shown = ranked[:top]
    rest = sum(v for _, v in ranked[top:])
    if rest > 0:
        shown.append(("(other)", rest))
    total = sum(v for _, v in shown)
    width, height = 860, 280
    # slice-and-dice layout: split the remaining rectangle for each item
    # in rank order, alternating cut direction — O(n), fine for ~25 boxes
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="span self-time treemap">'
    ]
    x, y, w, h = 0.0, 0.0, float(width), float(height)
    remaining = total
    for index, (name, value) in enumerate(shown):
        frac = value / remaining if remaining > 0 else 1.0
        if index == len(shown) - 1:
            bx, by, bw, bh = x, y, w, h
        elif w >= h:
            bw = w * frac
            bx, by, bh = x, y, h
            x += bw
            w -= bw
        else:
            bh = h * frac
            bx, by, bw = x, y, w
            y += bh
            h -= bh
        remaining -= value
        color = PALETTE[index % len(PALETTE)]
        pct = 100.0 * value / total if total else 0.0
        title = f"{name}: {_fmt_seconds(value)} self ({pct:.1f}%)"
        parts.append(
            f'<rect x="{bx:.1f}" y="{by:.1f}" width="{max(bw, 0.5):.1f}" '
            f'height="{max(bh, 0.5):.1f}" fill="{color}" class="cell">'
            f"<title>{_esc(title)}</title></rect>"
        )
        if bw > 70 and bh > 18:
            short = name if len(name) <= int(bw / 7) else name[: int(bw / 7)] + "…"
            parts.append(
                f'<text x="{bx + 4:.1f}" y="{by + 14:.1f}" class="box-label">'
                f"{_esc(short)}</text>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _worker_balance(entries: List[Dict[str, Any]], *, last: int = 12) -> str:
    sharded = [
        entry
        for entry in entries
        if isinstance((entry.get("extra") or {}).get("worker_expansions"), dict)
        and (entry.get("extra") or {}).get("worker_expansions")
    ]
    if not sharded:
        return (
            "<p class='empty'>(no sharded runs — run with --workers N to "
            "populate this section)</p>"
        )
    sharded = sharded[-last:]
    width, bar_h, gap, pad_l, pad_r = 860, 22, 6, 230, 10
    height = len(sharded) * (bar_h + gap) + gap
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="per-worker expansion balance">'
    ]
    usable = width - pad_l - pad_r
    for row, entry in enumerate(sharded):
        expansions: Dict[str, Any] = entry["extra"]["worker_expansions"]
        counts = [
            (str(worker), float(count))
            for worker, count in sorted(
                expansions.items(), key=lambda kv: str(kv[0])
            )
            if isinstance(count, (int, float))
        ]
        total = sum(c for _, c in counts) or 1.0
        y = gap + row * (bar_h + gap)
        label = (
            f"{(entry.get('scheme') or {}).get('name', '?')} · "
            f"{entry.get('run_id', '?')[:16]}"
        )
        parts.append(
            f'<text x="{pad_l - 8}" y="{y + bar_h - 6}" class="tick" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        x = float(pad_l)
        for index, (worker, count) in enumerate(counts):
            seg = usable * count / total
            color = PALETTE[index % len(PALETTE)]
            share = 100.0 * count / total
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(seg, 0.5):.1f}" '
                f'height="{bar_h}" fill="{color}" class="cell">'
                f"<title>worker {_esc(worker)}: {int(count)} expansions "
                f"({share:.1f}%)</title></rect>"
            )
            x += seg
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# Page assembly
# ----------------------------------------------------------------------

_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 0 auto; max-width: 920px; padding: 24px; color: #212121;
       background: #fafafa; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; border-bottom: 1px solid #e0e0e0;
     padding-bottom: 4px; }
.subtitle { color: #757575; margin: 0 0 16px; }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card { background: #fff; border: 1px solid #e0e0e0; border-radius: 6px;
        padding: 10px 14px; min-width: 110px; }
.card-label { font-size: 11px; text-transform: uppercase; color: #9e9e9e; }
.card-value { font-size: 15px; font-weight: 600; }
svg { width: 100%; height: auto; background: #fff; border: 1px solid #e0e0e0;
      border-radius: 6px; }
.axis { stroke: #bdbdbd; stroke-width: 1; }
.tick { font-size: 11px; fill: #757575; }
.box-label { font-size: 11px; fill: #fff; }
.cell:hover { opacity: 0.8; }
.legend { margin-top: 6px; }
.chip { color: #fff; border-radius: 4px; padding: 1px 8px; font-size: 12px;
        margin-right: 6px; }
table { border-collapse: collapse; width: 100%; background: #fff;
        border: 1px solid #e0e0e0; border-radius: 6px; }
th, td { text-align: left; padding: 6px 10px; border-bottom: 1px solid #eee; }
th { font-size: 12px; text-transform: uppercase; color: #757575; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.empty { color: #9e9e9e; font-style: italic; }
footer { margin-top: 32px; color: #9e9e9e; font-size: 12px; }
"""


def render_dashboard(
    entries: List[Dict[str, Any]],
    *,
    title: str = "rpcheck run ledger",
    source: Optional[str] = None,
    timeline_svg: Optional[str] = None,
) -> str:
    """The complete dashboard HTML for a list of ledger entries.

    ``timeline_svg`` is an optional pre-rendered inline ``<svg>``
    fragment (from :func:`repro.obs.timeline.render_timeline_svg`)
    embedded as a "Worker timeline" section — it follows the same
    no-script idiom as every other chart, so the page stays
    self-contained.
    """
    generated = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime())
    subtitle_bits = [f"{len(entries)} runs", f"generated {generated}"]
    if source:
        subtitle_bits.insert(0, source)
    timeline_section = ""
    if timeline_svg:
        timeline_section = (
            "<h2>Worker timeline (traced sharded run)</h2>\n" + timeline_svg
        )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{_esc(title)}</h1>
<p class="subtitle">{_esc(" · ".join(subtitle_bits))}</p>
{_summary_cards(entries)}
<h2>Runs over time</h2>
{_runs_over_time_svg(entries)}
<h2>Procedures</h2>
{_procedures_table(entries)}
<h2>Span self-time (aggregated across runs)</h2>
{_treemap_svg(entries)}
<h2>Per-worker expansion balance (sharded runs)</h2>
{_worker_balance(entries)}
{timeline_section}
<footer>rpcheck-ledger/1 · rendered offline, no external resources</footer>
</body>
</html>
"""
