"""Flight recorder: an always-on bounded buffer of recent telemetry.

Traces written to disk are opt-in; the runs that *need* a post-mortem —
a ``BudgetExhausted`` deep into a deadline, a ``CorruptionDetected``
from a misbehaving backend, an engine bug surfacing as an unexpected
exception — are exactly the runs nobody thought to trace.  A
:class:`FlightRecorder` closes that gap: it is a
:class:`~repro.obs.sinks.Sink` holding the **last N** span/event records
in a ring buffer (``collections.deque(maxlen=N)``), cheap enough to
leave on permanently.  Every :class:`~repro.analysis.session.AnalysisSession`
constructed without an explicit tracer records into the process-wide
:func:`ambient_recorder`; the cost is bounded by the span discipline
(spans are per *phase*, never per state) and measured by
``benchmarks/bench_obs_overhead.py`` against the same < 5% bar as the
rest of the observability layer.

On an incident the recorder **dumps a diagnostic bundle** — schema
``rpcheck-flight/1`` — carrying the buffered records, a metrics
snapshot, the triggering error and (when one exists) a resumable
checkpoint token.  :func:`record_incident` is the one entry point the
engine calls (see :meth:`AnalysisSession.phase` and
:mod:`repro.robust.governance`); it is a no-op unless a dump target is
configured, so library users never find surprise files on disk:

* the ``RPCHECK_FLIGHT_DIR`` environment variable names a directory
  (CI sets it for the tier-1 job and uploads the bundles on failure);
* or the CLI points the run's recorder at the ledger's directory via
  :attr:`FlightRecorder.dump_dir` (bundles land next to the run ledger).

Dumping is idempotent per exception object: an error re-raised through
several instrumented layers produces one bundle, whose path is cached on
the exception as ``_flight_bundle``.

Ambient state is **contextvar-scoped**: a long-lived process serving
concurrent requests (the :mod:`repro.serve` daemon) gives every request
its own :class:`SinkScope` — a private recorder, extra per-request sinks
and a private dump directory — via :func:`sink_scope`, so two
overlapping faulting requests dump *disjoint* incident bundles instead
of interleaving one shared ring buffer.  Inside a scope the
process-ambient defaults (the process-wide recorder, ``RPCHECK_FLIGHT_DIR``)
are **not** consulted: the scope is the whole sink set.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .sinks import Sink

__all__ = [
    "DEFAULT_CAPACITY",
    "FLIGHT_SCHEMA",
    "FLIGHT_DIR_ENV",
    "FlightRecorder",
    "ScopedSink",
    "SinkScope",
    "ambient_recorder",
    "current_sink_scope",
    "find_recorder",
    "record_incident",
    "sink_scope",
]

#: Ring-buffer capacity (records, spans + events) of a default recorder.
DEFAULT_CAPACITY = 512

#: Schema tag written into every diagnostic bundle.
FLIGHT_SCHEMA = "rpcheck-flight/1"

#: Environment variable naming the incident-dump directory (unset = off).
FLIGHT_DIR_ENV = "RPCHECK_FLIGHT_DIR"


class FlightRecorder(Sink):
    """A bounded, thread-safe ring buffer of span/event records.

    An *enabled* sink (tracers built on it construct real records) whose
    memory is capped at ``capacity`` records — old records fall off the
    front, so the buffer always holds the most recent telemetry, which is
    what a post-mortem wants.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Directory incident bundles go to (``None`` = only the
        #: ``RPCHECK_FLIGHT_DIR`` environment variable can enable dumps).
        self.dump_dir: Optional[str] = None
        #: Bundles written so far (diagnostics about the diagnostics).
        self.dumps = 0

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._buffer.append(record)

    def records(self) -> List[Dict[str, Any]]:
        """A point-in-time copy of the buffered records (oldest first)."""
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def bundle(
        self,
        *,
        reason: str,
        error: Optional[BaseException] = None,
        metrics: Optional[Dict[str, Any]] = None,
        checkpoint: Optional[Dict[str, Any]] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The JSON-ready ``rpcheck-flight/1`` diagnostic bundle."""
        return {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "written_at": time.time(),
            "error": None
            if error is None
            else {"type": type(error).__name__, "message": str(error)},
            "env": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "pid": os.getpid(),
            },
            "records": self.records(),
            "metrics": metrics,
            "checkpoint": checkpoint,
            "context": context or {},
        }

    def dump(
        self,
        path: str,
        *,
        reason: str,
        error: Optional[BaseException] = None,
        metrics: Optional[Dict[str, Any]] = None,
        checkpoint: Optional[Dict[str, Any]] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Write the bundle to *path* (parent dirs created); returns *path*."""
        payload = self.bundle(
            reason=reason,
            error=error,
            metrics=metrics,
            checkpoint=checkpoint,
            context=context,
        )
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=repr)
            handle.write("\n")
        self.dumps += 1
        return path

    def __repr__(self) -> str:
        return f"FlightRecorder({len(self._buffer)}/{self.capacity} records)"


#: The process-wide recorder default sessions record into.
_AMBIENT = FlightRecorder()

#: Process-wide monotone bundle sequence (unique file names per process).
_DUMP_SEQ = 0
_DUMP_SEQ_LOCK = threading.Lock()


class SinkScope:
    """A request-scoped sink set: recorder, extra sinks, dump directory.

    While a scope is active (see :func:`sink_scope`), it *replaces* the
    process-ambient defaults for the current execution context:
    :func:`ambient_recorder` returns the scope's recorder, a
    :class:`ScopedSink` routes emits to the scope's recorder and extra
    sinks, and :func:`record_incident` dumps into the scope's
    ``dump_dir`` only — never into ``RPCHECK_FLIGHT_DIR`` — so
    concurrent requests cannot interleave each other's telemetry or
    incident bundles.
    """

    __slots__ = ("recorder", "sinks", "dump_dir", "context")

    def __init__(
        self,
        recorder: Optional[FlightRecorder] = None,
        *,
        sinks: Tuple[Sink, ...] = (),
        dump_dir: Optional[str] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.sinks = tuple(sinks)
        self.dump_dir = dump_dir
        #: Ambient identification merged into every incident bundle's
        #: ``context`` (the serve daemon stamps ``request_id`` here, so a
        #: bundle is traceable back to the query that produced it).
        self.context = dict(context) if context else {}

    def emit(self, record: Dict[str, Any]) -> None:
        self.recorder.emit(record)
        for sink in self.sinks:
            sink.emit(record)

    def __repr__(self) -> str:
        return (
            f"SinkScope({self.recorder!r}, sinks={len(self.sinks)}, "
            f"dump_dir={self.dump_dir!r})"
        )


#: The active per-context sink scope (None = process-ambient defaults).
_SCOPE: "ContextVar[Optional[SinkScope]]" = ContextVar(
    "rpcheck_sink_scope", default=None
)


def current_sink_scope() -> Optional[SinkScope]:
    """The :class:`SinkScope` active in this execution context, if any."""
    return _SCOPE.get()


@contextmanager
def sink_scope(
    recorder: Optional[FlightRecorder] = None,
    *,
    sinks: Tuple[Sink, ...] = (),
    dump_dir: Optional[str] = None,
    context: Optional[Dict[str, Any]] = None,
) -> Iterator[SinkScope]:
    """Install a :class:`SinkScope` for the duration of the ``with`` body.

    Contextvar-carried, so it follows the logical execution context —
    across ``await`` points, and into worker threads entered via
    ``contextvars.copy_context()`` / ``asyncio.to_thread``.
    """
    scope = SinkScope(recorder, sinks=sinks, dump_dir=dump_dir, context=context)
    token = _SCOPE.set(scope)
    try:
        yield scope
    finally:
        _SCOPE.reset(token)


class ScopedSink(Sink):
    """A sink that routes to the active :class:`SinkScope`, else a fallback.

    This is the tracer sink of a *shared* long-lived
    :class:`~repro.analysis.session.AnalysisSession` (the serve pool's):
    the session object is shared between requests, but every span/event
    it emits lands in the sink set of whichever request is executing —
    its private recorder, its streaming sink — and falls back to the
    process-wide recorder outside any scope.
    """

    enabled = True

    def __init__(self, fallback: Optional[Sink] = None) -> None:
        self.fallback = fallback

    def emit(self, record: Dict[str, Any]) -> None:
        scope = _SCOPE.get()
        if scope is not None:
            scope.emit(record)
        elif self.fallback is not None:
            self.fallback.emit(record)
        else:
            _AMBIENT.emit(record)


def ambient_recorder() -> FlightRecorder:
    """The ambient :class:`FlightRecorder` for this execution context.

    Inside a :func:`sink_scope` this is the scope's private recorder;
    otherwise the process-wide one.  This is the sink behind every
    :class:`~repro.analysis.session.AnalysisSession` constructed without
    an explicit ``tracer=`` — the "always on" half of the
    flight-recorder contract.
    """
    scope = _SCOPE.get()
    if scope is not None:
        return scope.recorder
    return _AMBIENT


def find_recorder(sink: Optional[Sink]) -> Optional[FlightRecorder]:
    """The first :class:`FlightRecorder` in *sink* (descending tee chains)."""
    if isinstance(sink, FlightRecorder):
        return sink
    for child in getattr(sink, "sinks", ()):
        found = find_recorder(child)
        if found is not None:
            return found
    return None


def _next_bundle_path(directory: str) -> str:
    global _DUMP_SEQ
    with _DUMP_SEQ_LOCK:
        _DUMP_SEQ += 1
        seq = _DUMP_SEQ
    return os.path.join(directory, f"flight-{os.getpid()}-{seq:03d}.json")


def record_incident(
    session: Any,
    error: BaseException,
    *,
    reason: Optional[str] = None,
    directory: Optional[str] = None,
    checkpoint: Optional[Dict[str, Any]] = None,
    context: Optional[Dict[str, Any]] = None,
) -> Optional[str]:
    """Dump a diagnostic bundle for *error*, if a dump target is configured.

    Resolution order for the target directory: the *directory* argument,
    then — inside a :func:`sink_scope` — the scope's ``dump_dir`` *only*
    (the process-ambient ``RPCHECK_FLIGHT_DIR`` is deliberately not
    consulted, so a daemon request without a dump dir stays quiet
    instead of spraying bundles into a process-wide directory); outside
    any scope, the recorder's own :attr:`~FlightRecorder.dump_dir`, then
    the ``RPCHECK_FLIGHT_DIR`` environment variable.  With no target
    this is a no-op returning ``None``.  The recorder is the scope's
    when one is active, else the one on *session*'s tracer, else the
    process ambient.  Idempotent per exception object; never raises (a
    failed post-mortem must not mask the original error).
    """
    existing = getattr(error, "_flight_bundle", None)
    if existing is not None:
        return existing
    try:
        scope = _SCOPE.get()
        recorder = None
        if scope is not None:
            recorder = scope.recorder
        if recorder is None:
            tracer = getattr(session, "tracer", None)
            if tracer is not None:
                recorder = find_recorder(getattr(tracer, "sink", None))
        if recorder is None:
            recorder = _AMBIENT
        if scope is not None:
            target = directory or scope.dump_dir
        else:
            target = (
                directory or recorder.dump_dir or os.environ.get(FLIGHT_DIR_ENV)
            )
        if not target:
            return None
        if scope is not None and scope.context:
            # scope identification (e.g. the serve request_id) underlies
            # the caller's explicit context, which wins on key clashes
            context = {**scope.context, **(context or {})}
        metrics = None
        registry = getattr(session, "metrics", None)
        if registry is not None:
            metrics = registry.as_dict()
        path = recorder.dump(
            _next_bundle_path(target),
            reason=reason or type(error).__name__,
            error=error,
            metrics=metrics,
            checkpoint=checkpoint,
            context=context,
        )
    except Exception:  # pragma: no cover - post-mortem must never mask
        return None
    try:
        error._flight_bundle = path  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - exceptions with __slots__
        pass
    return path
