"""``repro.serve`` — a long-lived analysis daemon over the typed API.

Every ``rpcheck`` invocation historically paid cold start: one process,
one scheme, one battery, exit — discarding the warm
:class:`~repro.analysis.AnalysisSession` that answers repeat queries
several times faster than a cold one.  This package turns the battery
into a **daemon**:

* :class:`SessionPool` (:mod:`repro.serve.pool`) — warm
  ``AnalysisSession``\\ s keyed by the ledger's ``sha256:16hex`` scheme
  fingerprint, one query lock per scheme, LRU-bounded;
* :class:`ServeDaemon` (:mod:`repro.serve.daemon`) — an asyncio server
  speaking newline-delimited JSON (``rpcheck-request/1`` in,
  streamed events + ``rpcheck-response/1`` out) over a unix socket
  and, optionally, localhost TCP; per-request
  :class:`~repro.robust.Budget`\\ s under fair FIFO-with-deadline
  admission, contextvar-scoped flight recorders, a ``kind="serve"``
  ledger entry per query;
* :class:`ServeClient` (:mod:`repro.serve.client`) — the synchronous
  client the CLI (``rpcheck client``), the tests and the throughput
  benchmark share.

See ``docs/serving.md`` for the protocol walkthrough.
"""

from .client import ServeClient, ServeError, ServeOverloaded, client_main
from .daemon import ServeDaemon, daemon_in_thread, serve_main
from .pool import PooledScheme, SessionPool

__all__ = [
    "PooledScheme",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeOverloaded",
    "SessionPool",
    "client_main",
    "daemon_in_thread",
    "serve_main",
]
