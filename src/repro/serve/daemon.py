"""The ``rpcheck serve`` daemon: warm analysis sessions behind a socket.

Transports
----------

* **Unix socket** (primary): newline-delimited JSON.  Each request line
  is either an ``rpcheck-request/1`` object (one analysis query) or an
  operations object ``{"op": "ping" | "pool" | "shutdown"}``.  The
  daemon answers a query with zero or more ``{"type": "event", ...}``
  lines (tracer records, when the request asked for ``trace.stream``)
  followed by exactly one ``{"type": "response", "response": {...}}``
  line carrying the ``rpcheck-response/1`` object.
* **Localhost HTTP** (optional): a minimal HTTP/1.1 front on
  ``127.0.0.1`` — ``POST /v1/analyze`` with a request JSON body returns
  the response JSON; ``GET /v1/ping`` and ``GET /v1/pool`` expose the
  health and pool snapshots; ``GET /v1/metrics`` renders the merged
  metrics of every pooled session (plus the daemon's own counters) as
  Prometheus text exposition for scraping; ``GET /v1/runs[?tail=N]``
  returns recent run-ledger entries.  No streaming over HTTP; that is
  the unix socket's job.

Scheduling
----------

Admission is **FIFO-with-deadline**: a query's
:class:`~repro.robust.Budget` clock starts at *arrival* (so time spent
queued counts against its deadline), then the query waits its turn on a
FIFO semaphore bounding worker-thread concurrency.  A budget that
expires in the queue still runs — its first cooperative
``budget.check()`` fires immediately, so the client gets exactly the
structured partial an in-process caller would get, which is what the
differential gate pins.

Isolation
---------

Each query executes inside its own
:func:`~repro.obs.recorder.sink_scope`: a private
:class:`~repro.obs.FlightRecorder`, the client's streaming sink, and the
daemon's incident-dump directory.  The pooled session's tracer is a
:class:`~repro.obs.recorder.ScopedSink`, so spans from the *shared*
session land in whichever request is executing — two overlapping
faulting requests produce two disjoint flight bundles.

Every served query is appended to the run ledger (``kind="serve"``)
when the daemon was given a ledger path, making served history
first-class in ``rpcheck history`` / ``rpcheck diff``.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import os
import threading
import uuid
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from urllib.parse import parse_qs, urlsplit

from ..api import AnalysisRequest, AnalysisResponse, ApiError, execute
from ..errors import RPError
from ..obs import (
    FlightRecorder,
    Ledger,
    MetricsRegistry,
    default_ledger_path,
    prometheus_exposition,
)
from ..obs.recorder import sink_scope
from ..obs.sinks import Sink
from ..obs.tracer import TraceContext, trace_context
from ..robust import Budget, CancelToken
from .pool import DEFAULT_MAX_ENTRIES, SessionPool

__all__ = [
    "DEFAULT_CONCURRENCY",
    "DEFAULT_MAX_QUEUE",
    "ServeDaemon",
    "daemon_in_thread",
    "serve_main",
]

#: Worker threads executing queries concurrently (per daemon).
DEFAULT_CONCURRENCY = 4

#: Queries allowed to wait for a worker before admission sheds load
#: (``--max-queue``).  Bounds daemon memory and queue latency: request
#: number ``concurrency + max_queue + 1`` gets a structured
#: ``overloaded`` rejection instead of a silently growing queue.
DEFAULT_MAX_QUEUE = 64

#: Cancel reason installed by the per-query watchdog; ``_run_query``
#: reaps the session's exploration worker pool when it sees it.
_WATCHDOG_REASON = "query watchdog timeout"


class _Overloaded(Exception):
    """Admission rejected a request (queue at ``max_queue``)."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"admission queue full; retry after {retry_after}s")
        self.retry_after = retry_after


def _encode(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":"), default=repr).encode(
        "utf-8"
    ) + b"\n"


def _ensure_request_id(request: AnalysisRequest) -> AnalysisRequest:
    """Mint a request id when the caller omitted one.

    Every served query carries an id — it is stamped on the query's root
    span, echoed in the response, tagged on streamed event lines, and
    written into flight-recorder incident bundles, so one identifier
    correlates all four artefacts.
    """
    if request.request_id:
        return request
    return dataclasses.replace(request, request_id=uuid.uuid4().hex)


class _StreamSink(Sink):
    """Forwards tracer records from the worker thread to the event loop.

    ``call_soon_threadsafe`` callbacks run FIFO, and the worker's result
    is delivered through the same mechanism *after* its last emit, so
    every streamed event is written before the final response line.
    """

    enabled = True

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        deliver: Callable[[Dict[str, Any]], None],
    ) -> None:
        self._loop = loop
        self._deliver = deliver

    def emit(self, record: Dict[str, Any]) -> None:
        try:
            self._loop.call_soon_threadsafe(self._deliver, record)
        except RuntimeError:
            pass  # loop already closed (shutdown race); drop the record


class ServeDaemon:
    """A long-lived analysis server over a :class:`SessionPool`."""

    def __init__(
        self,
        socket_path: str,
        *,
        http_port: Optional[int] = None,
        pool_size: int = DEFAULT_MAX_ENTRIES,
        concurrency: int = DEFAULT_CONCURRENCY,
        max_queue: int = DEFAULT_MAX_QUEUE,
        query_timeout: Optional[float] = None,
        ledger_path: Optional[str] = None,
        flight_dir: Optional[str] = None,
    ) -> None:
        self.socket_path = str(socket_path)
        self.http_port = http_port  # 0 = ephemeral; None = no HTTP front
        self.bound_http_port: Optional[int] = None
        self.pool = SessionPool(pool_size)
        self.concurrency = max(1, concurrency)
        self.max_queue = max(0, max_queue)
        #: Per-query wall-clock watchdog: past this many seconds the
        #: query's cancel token fires and its session's worker pool is
        #: reaped, so one stuck query cannot pin a worker thread forever.
        self.query_timeout = query_timeout
        self.ledger = (
            Ledger(ledger_path) if ledger_path is not None else None
        )
        self.flight_dir = flight_dir
        self.served = 0
        self.errors = 0
        #: Requests rejected at admission (queue full).
        self.shed = 0
        #: Queries whose watchdog fired (cancelled + pool reaped).
        self.watchdog_reaped = 0
        #: Queries admitted and not yet answered (executing + queued).
        self._pending = 0
        #: EWMA of recent query seconds — the ``retry_after`` basis.
        self._recent_seconds = 0.1
        self._connections: "set[asyncio.Task]" = set()
        self._servers: List[asyncio.AbstractServer] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._admission: Optional[asyncio.Semaphore] = None
        self._shutdown: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the unix socket (and the optional HTTP port)."""
        self._loop = asyncio.get_running_loop()
        self._admission = asyncio.Semaphore(self.concurrency)
        self._shutdown = asyncio.Event()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        self._servers.append(
            await asyncio.start_unix_server(self._handle_ndjson, self.socket_path)
        )
        if self.http_port is not None:
            server = await asyncio.start_server(
                self._handle_http, host="127.0.0.1", port=self.http_port
            )
            self.bound_http_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)

    async def run(self, on_started: Optional[Callable[[], None]] = None) -> None:
        """Start, serve until shutdown is requested, then clean up."""
        await self.start()
        if on_started is not None:
            on_started()
        assert self._shutdown is not None
        try:
            await self._shutdown.wait()
        finally:
            await self.close()

    async def close(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await server.wait_closed()
        self._servers.clear()
        # connection handlers outlive server.close() (it only stops the
        # listeners); cancel them so shutdown is clean, not best-effort
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        # reap exploration worker pools held by warm sessions (no-op for
        # the common all-sequential pool)
        for entry in self.pool.entries():
            entry.session.close()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)

    # ------------------------------------------------------------------
    # Introspection (shared by the stats op and GET /v1/metrics)
    # ------------------------------------------------------------------

    def metrics_registry(self) -> MetricsRegistry:
        """One merged registry: daemon counters + every pooled session.

        Sessions keep mutating their registries while this reads them —
        ``merge`` and the snapshot accessors are lock-guarded, so the
        result is a consistent-enough scrape (each metric is read
        atomically; cross-metric skew of an in-flight query is
        acceptable for monitoring).  Includes the per-worker
        ``parallel.*{worker=i}`` series folded in by sharded sessions.
        """
        merged = MetricsRegistry()
        merged.counter("serve.served", "queries served since daemon start").inc(
            self.served
        )
        merged.counter("serve.errors", "served queries that returned errors").inc(
            self.errors
        )
        merged.counter(
            "serve.shed", "requests rejected at admission (queue full)"
        ).inc(self.shed)
        merged.counter(
            "serve.watchdog_reaped",
            "queries cancelled by the per-query watchdog",
        ).inc(self.watchdog_reaped)
        merged.gauge(
            "serve.queue_depth", "admitted queries waiting for a worker"
        ).set(max(0, self._pending - self.concurrency))
        merged.gauge("serve.pool_schemes", "warm schemes in the pool").set(
            len(self.pool)
        )
        for entry in self.pool.entries():
            merged.merge(entry.session.metrics)
        return merged

    def _recent_runs(self, tail: int) -> Dict[str, Any]:
        """Recent ledger entries, newest last (``GET /v1/runs``)."""
        if self.ledger is None:
            return {"ledger": None, "count": 0, "runs": []}
        try:
            entries = self.ledger.entries()
        except (OSError, ValueError) as error:
            return {
                "ledger": self.ledger.path,
                "count": 0,
                "runs": [],
                "error": str(error),
            }
        if tail > 0:
            recent = entries[-tail:]
        else:
            recent = entries
        return {
            "ledger": self.ledger.path,
            "count": len(entries),
            "runs": recent,
        }

    def request_shutdown(self) -> None:
        """Ask the daemon to stop (thread-safe; idempotent)."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None or loop.is_closed():
            return
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(event.set)

    # ------------------------------------------------------------------
    # NDJSON transport (unix socket)
    # ------------------------------------------------------------------

    async def _handle_ndjson(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: sequential queries, EOF cancels in-flight.

        While a query runs, the handler keeps a ``readline`` pending so a
        client hanging up mid-stream is noticed immediately: its
        :class:`~repro.robust.CancelToken` is cancelled and the analysis
        unwinds at the next cooperative budget check.  A *non-empty*
        early line is a pipelined next request; it is parked and served
        after the current query finishes.
        """
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        read_task: Optional["asyncio.Task[bytes]"] = None
        pending: Optional[bytes] = None
        try:
            while True:
                if pending is not None:
                    line, pending = pending, None
                else:
                    if read_task is None:
                        read_task = asyncio.ensure_future(reader.readline())
                    line = await read_task
                    read_task = None
                if not line:
                    return
                text = line.decode("utf-8", "replace").strip()
                if not text:
                    continue
                try:
                    payload = json.loads(text)
                except ValueError:
                    await self._send(
                        writer, {"type": "error", "message": "malformed JSON line"}
                    )
                    continue
                if not isinstance(payload, dict):
                    await self._send(
                        writer, {"type": "error", "message": "expected a JSON object"}
                    )
                    continue
                if "op" in payload:
                    if await self._handle_op(payload, writer):
                        return
                    continue
                token = CancelToken()
                query = asyncio.ensure_future(
                    self._serve_query(payload, token, writer)
                )
                read_task = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {query, read_task}, return_when=asyncio.FIRST_COMPLETED
                )
                if read_task in done:
                    head = read_task.result()
                    read_task = None
                    if not head:
                        token.cancel("client disconnected")
                        await query
                        return
                    pending = head
                await query
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # only ``close()`` cancels connection tasks; finishing
            # normally here matters because 3.11's StreamReaderProtocol
            # calls ``task.exception()`` on this task without checking
            # ``task.cancelled()`` first and would log the cancellation
            # as a stray callback exception during teardown
            pass
        finally:
            if me is not None:
                self._connections.discard(me)
            if read_task is not None:
                read_task.cancel()
            writer.close()
            # CancelledError included: an already-cancelled handler must
            # still complete this cleanup without logging a stray task
            # exception during event-loop teardown
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _handle_op(
        self, payload: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Answer an operations line; ``True`` means close the connection."""
        op = payload.get("op")
        if op == "ping":
            await self._send(
                writer,
                {
                    "type": "pong",
                    "pid": os.getpid(),
                    "served": self.served,
                    "errors": self.errors,
                    "schemes": len(self.pool),
                },
            )
            return False
        if op == "pool":
            await self._send(writer, {"type": "pool", **self.pool.snapshot()})
            return False
        if op == "stats":
            registry = await asyncio.to_thread(self.metrics_registry)
            await self._send(
                writer,
                {
                    "type": "stats",
                    "pid": os.getpid(),
                    "served": self.served,
                    "errors": self.errors,
                    "schemes": len(self.pool),
                    "metrics": registry.as_dict(),
                },
            )
            return False
        if op == "shutdown":
            await self._send(writer, {"type": "shutdown"})
            self.request_shutdown()
            return True
        await self._send(
            writer, {"type": "error", "message": f"unknown op {op!r}"}
        )
        return False

    async def _serve_query(
        self,
        payload: Dict[str, Any],
        token: CancelToken,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = AnalysisRequest.from_json_dict(payload)
        except ApiError as error:
            self.errors += 1
            response = AnalysisResponse(
                procedure=str(payload.get("procedure") or ""),
                verdict="error",
                error={"type": "ApiError", "message": str(error)},
                request_id=payload.get("request_id"),
            )
            await self._send(
                writer, {"type": "response", "response": response.to_json_dict()}
            )
            return
        request = _ensure_request_id(request)
        deliver: Optional[Callable[[Dict[str, Any]], None]] = None
        if request.trace.stream:
            request_id = request.request_id

            def deliver(record: Dict[str, Any]) -> None:
                if not writer.is_closing():
                    writer.write(
                        _encode(
                            {
                                "type": "event",
                                "request_id": request_id,
                                "record": record,
                            }
                        )
                    )

        try:
            response = await self._execute(request, token, deliver)
        except _Overloaded as overloaded:
            if not writer.is_closing():
                await self._send(
                    writer,
                    {
                        "type": "overloaded",
                        "request_id": request.request_id,
                        "retry_after": overloaded.retry_after,
                        "message": str(overloaded),
                    },
                )
            return
        if not writer.is_closing():
            await self._send(
                writer, {"type": "response", "response": response.to_json_dict()}
            )

    async def _send(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        writer.write(_encode(payload))
        with contextlib.suppress(
            ConnectionResetError, BrokenPipeError, asyncio.CancelledError
        ):
            await writer.drain()

    # ------------------------------------------------------------------
    # Query execution (shared by both transports)
    # ------------------------------------------------------------------

    async def _execute(
        self,
        request: AnalysisRequest,
        token: CancelToken,
        deliver: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> AnalysisResponse:
        # The budget clock starts now — at arrival — so queueing counts
        # against the deadline (the "with-deadline" half of the policy).
        # Without a spec the budget exists only to carry the cancel token;
        # on_exhaust="raise" keeps a plain max_states exhaustion identical
        # to an in-process unbudgeted call (inconclusive, not partial),
        # which the differential gate pins.
        budget = (
            request.budget.to_budget(cancel=token)
            if request.budget is not None
            else Budget(cancel=token, on_exhaust="raise")
        ).start()
        loop = asyncio.get_running_loop()
        sinks: Tuple[Sink, ...] = ()
        if deliver is not None:
            sinks = (_StreamSink(loop, deliver),)
        assert self._admission is not None
        # Bounded admission: past ``concurrency`` executing plus
        # ``max_queue`` waiting, shed instead of queueing — an explicit,
        # immediate ``overloaded`` beats a silent ever-deeper queue.
        if self._pending >= self.concurrency + self.max_queue:
            self.shed += 1
            raise _Overloaded(self._retry_after())
        self._pending += 1
        started = loop.time()
        try:
            async with self._admission:  # FIFO: asyncio wakes waiters in order
                work = asyncio.ensure_future(
                    asyncio.to_thread(self._run_query, request, budget, sinks)
                )
                if self.query_timeout is None:
                    response = await work
                else:
                    try:
                        response = await asyncio.wait_for(
                            asyncio.shield(work), self.query_timeout
                        )
                    except asyncio.TimeoutError:
                        # reap, don't abandon: cancel cooperatively and
                        # wait for the structured partial — the worker
                        # thread unwinds at its next budget check even
                        # with a wedged exploration pool (the wait loop
                        # polls the budget), and _run_query closes that
                        # pool on its way out
                        token.cancel(_WATCHDOG_REASON)
                        self.watchdog_reaped += 1
                        response = await work
        finally:
            self._pending -= 1
        # EWMA over answered queries: the basis for retry_after hints
        elapsed = max(loop.time() - started, 1e-3)
        self._recent_seconds += 0.2 * (elapsed - self._recent_seconds)
        self.served += 1
        if response.error is not None:
            self.errors += 1
        return response

    def _retry_after(self) -> float:
        """A shed response's backoff hint, from observed service time.

        Estimates when a queue slot frees up: the whole backlog must
        drain through ``concurrency`` workers at the recent per-query
        pace.  Clamped to [0.05s, 10s] — a hint, not a promise.
        """
        backlog = max(1, self._pending - self.concurrency + 1)
        estimate = self._recent_seconds * backlog / self.concurrency
        return round(min(10.0, max(0.05, estimate)), 3)

    def _run_query(
        self,
        request: AnalysisRequest,
        budget: Budget,
        sinks: Tuple[Sink, ...],
    ) -> AnalysisResponse:
        """Worker-thread body: resolve the pooled session, run the query.

        Runs under a fresh :func:`sink_scope` so this request's tracer
        records, flight-recorder ring and incident bundles are disjoint
        from every concurrently executing request's; the scope carries
        the ``request_id`` so any incident bundle names its query.
        """
        with sink_scope(
            FlightRecorder(),
            sinks=sinks,
            dump_dir=self.flight_dir,
            context={
                "request_id": request.request_id,
                "procedure": request.procedure,
            },
        ):
            if request.fingerprint is not None:
                entry = self.pool.get(request.fingerprint)
                if entry is None:
                    return AnalysisResponse(
                        procedure=request.procedure,
                        verdict="error",
                        error={
                            "type": "ApiError",
                            "message": (
                                f"no pooled scheme with fingerprint "
                                f"{request.fingerprint!r}"
                            ),
                        },
                        request_id=request.request_id,
                    )
            else:
                try:
                    entry = self.pool.get_or_compile(request.source or "")
                except RPError as error:
                    return AnalysisResponse(
                        procedure=request.procedure,
                        verdict="error",
                        error={
                            "type": type(error).__name__,
                            "message": str(error),
                        },
                        request_id=request.request_id,
                    )
            self.pool.checkout(entry)
            try:
                with entry.lock:
                    # per-query worker knob on the pooled session: an
                    # explicit request.workers switches the sharded
                    # explorer on (execute honors it); an absent field
                    # resets to the sequential path so one caller's
                    # worker count never leaks into the next query
                    if request.workers is None:
                        entry.session.workers = 1
                    try:
                        # the query's root span: joins the client's trace
                        # when the request carried a traceparent (else
                        # mints a fresh trace), and parents everything
                        # the procedure opens — explore, windows, worker
                        # chunks — into one serve-to-worker span tree
                        with trace_context(
                            TraceContext.from_traceparent(request.traceparent)
                        ), entry.session.tracer.span(
                            "serve.query",
                            procedure=request.procedure,
                            request_id=request.request_id,
                            workers=request.workers or 1,
                        ):
                            return execute(
                                request,
                                scheme=entry.scheme,
                                session=entry.session,
                                budget=budget,
                                ledger=self.ledger,
                                ledger_kind="serve",
                            )
                    finally:
                        token = budget.cancel
                        if token is not None and token.cancelled:
                            # cancelled mid-query (watchdog timeout or
                            # client hangup): the exploration worker
                            # pool may be mid-window or the thing that
                            # was stuck — reap it while still holding
                            # the entry lock so no worker process
                            # outlives its query (the session stays
                            # pooled; the pool respawns lazily)
                            entry.session.close()
            finally:
                self.pool.checkin(entry)

    # ------------------------------------------------------------------
    # HTTP transport (localhost, optional)
    # ------------------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A deliberately small HTTP/1.1 front: one request per connection."""
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        content_type = "application/json"
        try:
            status, body, content_type = await self._http_dispatch(reader)
        except (asyncio.IncompleteReadError, ConnectionResetError, ValueError):
            status, body = 400, {"error": "malformed HTTP request"}
        except asyncio.CancelledError:
            # daemon shutdown: finish normally so the 3.11 streams
            # done-callback does not log the cancellation (see
            # ``_handle_ndjson``)
            if me is not None:
                self._connections.discard(me)
            writer.close()
            return
        except Exception as error:  # pragma: no cover - defensive
            status, body = 500, {"error": repr(error)}
        if isinstance(body, str):
            data = body.encode("utf-8")
        else:
            data = json.dumps(body, default=repr).encode("utf-8")
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            429: "Too Many Requests",
            503: "Service Unavailable",
        }.get(status, "Internal Server Error")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            + data
        )
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await writer.drain()
        writer.close()
        if me is not None:
            self._connections.discard(me)
        with contextlib.suppress(Exception, asyncio.CancelledError):
            await writer.wait_closed()

    async def _http_dispatch(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Any, str]:
        """Route one request; returns (status, body, content type).

        A ``str`` body is written verbatim (the Prometheus scrape); a
        dict body is serialised as JSON.
        """
        json_type = "application/json"
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}, json_type
        method, target = parts[0].upper(), parts[1]
        split = urlsplit(target)
        path, query = split.path, parse_qs(split.query)
        content_length = 0
        while True:
            header = (await reader.readline()).decode("ascii", "replace")
            if header in ("\r\n", "\n", ""):
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if method == "GET" and path == "/v1/ping":
            return 200, {
                "pid": os.getpid(),
                "served": self.served,
                "errors": self.errors,
                "schemes": len(self.pool),
            }, json_type
        if method == "GET" and path == "/v1/pool":
            return 200, self.pool.snapshot(), json_type
        if method == "GET" and path == "/v1/health":
            # liveness is answering at all; readiness is having admission
            # capacity — load balancers and probes read the status code
            ready = self._pending < self.concurrency + self.max_queue
            return (200 if ready else 503), {
                "live": True,
                "ready": ready,
                "executing": min(self._pending, self.concurrency),
                "queued": max(0, self._pending - self.concurrency),
                "max_queue": self.max_queue,
                "shed": self.shed,
                "served": self.served,
            }, json_type
        if method == "GET" and path == "/v1/metrics":
            registry = await asyncio.to_thread(self.metrics_registry)
            text = prometheus_exposition(registry)
            return 200, text, "text/plain; version=0.0.4; charset=utf-8"
        if method == "GET" and path == "/v1/runs":
            try:
                tail = int(query.get("tail", ["20"])[0])
            except ValueError:
                return 400, {"error": "tail must be an integer"}, json_type
            body = await asyncio.to_thread(self._recent_runs, tail)
            return 200, body, json_type
        if method == "POST" and path == "/v1/analyze":
            body = await reader.readexactly(content_length)
            try:
                payload = json.loads(body)
            except ValueError:
                return 400, {"error": "request body is not JSON"}, json_type
            if not isinstance(payload, dict):
                return 400, {"error": "request body is not an object"}, json_type
            try:
                request = AnalysisRequest.from_json_dict(payload)
            except ApiError as error:
                self.errors += 1
                return 200, AnalysisResponse(
                    procedure=str(payload.get("procedure") or ""),
                    verdict="error",
                    error={"type": "ApiError", "message": str(error)},
                    request_id=payload.get("request_id"),
                ).to_json_dict(), json_type
            request = _ensure_request_id(request)
            try:
                response = await self._execute(request, CancelToken())
            except _Overloaded as overloaded:
                return 429, {
                    "error": "overloaded",
                    "retry_after": overloaded.retry_after,
                    "message": str(overloaded),
                    "request_id": payload.get("request_id"),
                }, json_type
            return 200, response.to_json_dict(), json_type
        return 404, {"error": f"no route for {method} {path}"}, json_type


# ----------------------------------------------------------------------
# Embedding helpers and CLI entry point
# ----------------------------------------------------------------------


@contextlib.contextmanager
def daemon_in_thread(
    socket_path: str, **kwargs: Any
) -> Iterator[ServeDaemon]:
    """Run a :class:`ServeDaemon` on a background thread (tests, benchmarks).

    Yields the started daemon; on exit requests shutdown and joins the
    thread.  Raises ``RuntimeError`` if the daemon fails to bind.
    """
    daemon = ServeDaemon(socket_path, **kwargs)
    started = threading.Event()
    failure: List[BaseException] = []

    def body() -> None:
        try:
            asyncio.run(daemon.run(on_started=started.set))
        except BaseException as error:  # noqa: BLE001 - reported to starter
            failure.append(error)
            started.set()

    thread = threading.Thread(target=body, name="rpcheck-serve", daemon=True)
    thread.start()
    started.wait(timeout=30.0)
    if failure:
        raise RuntimeError(f"serve daemon failed to start: {failure[0]!r}")
    if not os.path.exists(daemon.socket_path):
        daemon.request_shutdown()
        thread.join(timeout=10.0)
        raise RuntimeError("serve daemon did not bind its socket in time")
    try:
        yield daemon
    finally:
        daemon.request_shutdown()
        thread.join(timeout=30.0)


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``rpcheck serve``: run the analysis daemon in the foreground."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="rpcheck serve",
        description="Serve warm analysis sessions over a unix socket.",
    )
    parser.add_argument(
        "--socket", required=True, help="unix socket path to bind"
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="also serve a localhost HTTP front on this port (0 = ephemeral)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=DEFAULT_MAX_ENTRIES,
        help=f"warm sessions to keep (default {DEFAULT_MAX_ENTRIES})",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=DEFAULT_CONCURRENCY,
        help=f"concurrent query workers (default {DEFAULT_CONCURRENCY})",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        help="admitted queries allowed to wait for a worker before load "
        f"shedding kicks in (default {DEFAULT_MAX_QUEUE}; excess requests "
        "get a structured 'overloaded' / HTTP 429 with retry_after)",
    )
    parser.add_argument(
        "--query-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query watchdog: cancel a query and reap its worker pool "
        "past this many seconds of wall clock (default: none)",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="ledger file for kind=serve entries (default: $RPCHECK_LEDGER)",
    )
    parser.add_argument(
        "--flight-dir",
        default=None,
        help="directory for per-request incident bundles",
    )
    args = parser.parse_args(argv)
    daemon = ServeDaemon(
        args.socket,
        http_port=args.http_port,
        pool_size=args.pool_size,
        concurrency=args.concurrency,
        max_queue=args.max_queue,
        query_timeout=args.query_timeout,
        ledger_path=default_ledger_path(args.ledger),
        flight_dir=args.flight_dir,
    )

    def announce() -> None:
        print(f"rpcheck serve: listening on {daemon.socket_path}")
        if daemon.bound_http_port is not None:
            print(
                f"rpcheck serve: http on 127.0.0.1:{daemon.bound_http_port}"
            )

    try:
        asyncio.run(daemon.run(on_started=announce))
    except KeyboardInterrupt:
        pass
    return 0
