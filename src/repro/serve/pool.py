"""Warm :class:`~repro.analysis.AnalysisSession` pooling for the daemon.

The ledger's scheme fingerprint (``sha256:`` + 16 hex chars over the
canonical scheme JSON, :func:`repro.obs.scheme_fingerprint`) is the
natural cache key: two requests whose programs compile to the same
scheme — whatever their formatting — share one warm session, one
explored fragment of ``M_G``, one successor cache, one embedding index.

Concurrency model (the contract ``docs/serving.md`` documents):

* the pool's own bookkeeping is guarded by one pool lock (cheap:
  dict lookups and LRU counters only);
* each :class:`PooledScheme` carries a **query lock** — every query
  against the shared session runs under it, which serializes same-scheme
  queries (reads included: procedure bodies mutate session memo/stats)
  while different schemes proceed fully in parallel;
* exploration additionally goes through
  :meth:`~repro.analysis.AnalysisSession.ensure_explored`, whose
  condition variable coalesces waiters onto an in-flight exploration —
  the session-level half of the contract, independently testable;
* eviction (LRU beyond ``max_entries``) never removes an entry with
  queries in flight.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from ..analysis import AnalysisSession
from ..core.scheme import RPScheme
from ..obs import Tracer, scheme_fingerprint
from ..obs.recorder import ScopedSink

__all__ = ["PooledScheme", "SessionPool", "DEFAULT_MAX_ENTRIES"]

#: Warm sessions kept before LRU eviction kicks in.
DEFAULT_MAX_ENTRIES = 32


class PooledScheme:
    """One warm scheme: its session, its query lock, its usage counters."""

    def __init__(self, scheme: RPScheme, fingerprint: str) -> None:
        self.scheme = scheme
        self.fingerprint = fingerprint
        # the session's tracer routes every span/event to the sink set of
        # whichever request is executing (contextvar-scoped), falling
        # back to the process flight recorder outside any request
        self.session = AnalysisSession(scheme, tracer=Tracer(ScopedSink()))
        #: Serializes queries against the shared session (see module doc).
        self.lock = threading.Lock()
        self.created_at = time.time()
        self.last_used = self.created_at
        self.queries = 0
        self.in_flight = 0

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view for the daemon's ``pool`` operation."""
        return {
            "fingerprint": self.fingerprint,
            "scheme": self.scheme.name,
            "nodes": len(self.scheme),
            "states": len(self.session.graph),
            "complete": self.session.graph.complete,
            "queries": self.queries,
            "in_flight": self.in_flight,
            "coalesced_explorations": self.session.coalesced_explorations,
            "created_at": self.created_at,
            "last_used": self.last_used,
        }

    def __repr__(self) -> str:
        return (
            f"PooledScheme({self.scheme.name!r}, {self.fingerprint}, "
            f"{len(self.session.graph)} states, {self.queries} queries)"
        )


class SessionPool:
    """Warm sessions keyed by scheme fingerprint, LRU-bounded."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = max(1, max_entries)
        self._entries: Dict[str, PooledScheme] = {}
        self._lock = threading.Lock()
        #: Pool-level counters (hits = warm-session reuse).
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def get_or_compile(self, source: str) -> PooledScheme:
        """The pooled entry for *source*, compiling on first sight.

        Compilation runs outside the pool lock (it can be slow and is
        idempotent); the entry insertion is check-again-then-insert so
        two racing first requests converge on one entry.
        """
        from ..lang import compile_source

        scheme = compile_source(source).scheme
        fingerprint = scheme_fingerprint(scheme)
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self.hits += 1
                entry.last_used = time.time()
                return entry
            self.misses += 1
            entry = PooledScheme(scheme, fingerprint)
            self._entries[fingerprint] = entry
            self._evict_locked()
            return entry

    def adopt(self, scheme: RPScheme) -> PooledScheme:
        """Pool an already-built scheme (in-process embedders: tests, bench).

        Wire clients can then address it by fingerprint without shipping
        source text — zoo schemes have no concrete syntax to ship.
        """
        fingerprint = scheme_fingerprint(scheme)
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = PooledScheme(scheme, fingerprint)
                self._entries[fingerprint] = entry
                self._evict_locked()
            return entry

    def get(self, fingerprint: str) -> Optional[PooledScheme]:
        """The warm entry for *fingerprint*, or ``None`` (no compile path)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self.hits += 1
                entry.last_used = time.time()
            return entry

    def checkout(self, entry: PooledScheme) -> None:
        """Mark one query in flight on *entry* (blocks its eviction)."""
        with self._lock:
            entry.in_flight += 1

    def checkin(self, entry: PooledScheme) -> None:
        with self._lock:
            entry.in_flight = max(0, entry.in_flight - 1)
            entry.queries += 1
            entry.last_used = time.time()

    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_entries:
            idle = [e for e in self._entries.values() if e.in_flight == 0]
            if not idle:
                return  # everything busy; over-capacity is temporary
            victim = min(idle, key=lambda e: e.last_used)
            del self._entries[victim.fingerprint]
            # release any exploration worker pool the session spawned;
            # sequential sessions make this a no-op
            victim.session.close()
            self.evictions += 1

    # ------------------------------------------------------------------

    def entries(self) -> List[PooledScheme]:
        with self._lock:
            return list(self._entries.values())

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready pool summary (the daemon's ``pool`` operation)."""
        with self._lock:
            return {
                "entries": [e.snapshot() for e in self._entries.values()],
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"SessionPool({len(self)}/{self.max_entries} schemes)"
