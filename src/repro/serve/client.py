"""A synchronous client for the ``rpcheck serve`` daemon.

:class:`ServeClient` wraps one unix-socket connection and speaks the
NDJSON protocol :mod:`repro.serve.daemon` documents: write one
``rpcheck-request/1`` line, read ``{"type": "event"}`` lines (forwarded
to an ``on_event`` callback) until the ``{"type": "response"}`` line
arrives, return it as a typed
:class:`~repro.api.AnalysisResponse`.  The CLI (``rpcheck client``),
the serve integration tests and the throughput benchmark all drive the
daemon through this one class, so a protocol change breaks loudly in
three places at once.

Blocking and thread-compatible, not thread-*safe*: one client per
thread (each opens its own connection; the daemon multiplexes).

Resilience: analysis queries are **idempotent** (same request, same
answer — the differential gates pin it), so the client retries them.  A
dropped connection — daemon restart, transient socket error — triggers
reconnect-and-resend with jittered exponential backoff; a structured
``overloaded`` rejection (the daemon shedding load, see
docs/serving.md) is retried after the server's ``retry_after`` hint.
``max_retries=0`` restores fail-fast behaviour.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from typing import Any, Callable, Dict, List, Optional

from ..api import (
    AnalysisRequest,
    AnalysisResponse,
    ApiError,
    BudgetSpec,
    TraceOptions,
)
from ..obs.tracer import TraceContext, current_span

__all__ = ["ServeClient", "ServeError", "ServeOverloaded", "client_main"]


class ServeError(ApiError):
    """The daemon answered with a protocol-level error (or hung up)."""


class ServeOverloaded(ServeError):
    """The daemon shed this request at admission (queue full).

    ``retry_after`` carries the daemon's backoff hint in seconds.
    Raised to the caller only once the client's retry budget is spent
    (or with ``max_retries=0``).
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _ConnectionLost(ServeError):
    """Internal: the transport died mid-exchange (retryable)."""


class ServeClient:
    """One blocking NDJSON connection to a :class:`ServeDaemon`."""

    def __init__(
        self,
        socket_path: str,
        *,
        timeout: float = 120.0,
        max_retries: int = 3,
        backoff: float = 0.1,
        backoff_max: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.max_retries = max(0, max_retries)
        self.backoff = backoff
        self.backoff_max = backoff_max
        #: Reconnect/overload retries performed over this client's life.
        self.retries = 0
        #: Optional MetricsRegistry mirroring retries as
        #: ``serve.client_retries`` (ties client behaviour into the same
        #: observability artefacts as the server-side counters).
        self.metrics = metrics
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # ------------------------------------------------------------------

    def _connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _disconnect(self) -> None:
        file, sock = self._file, self._sock
        self._file = self._sock = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()

    def _delay(self, attempt: int) -> float:
        """Jittered exponential backoff for retry *attempt* (0-based)."""
        base = min(self.backoff_max, self.backoff * (2**attempt))
        return base * (0.5 + 0.5 * self._rng.random())

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _send_line(self, payload: Dict[str, Any]) -> None:
        self._file.write(
            json.dumps(payload, separators=(",", ":"), default=repr).encode(
                "utf-8"
            )
            + b"\n"
        )
        self._file.flush()

    def _read_line(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise _ConnectionLost("daemon closed the connection")
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ServeError(f"daemon sent a non-object line: {payload!r}")
        return payload

    # ------------------------------------------------------------------

    def _exchange(
        self,
        request: AnalysisRequest,
        on_event: Optional[Callable[[Dict[str, Any]], None]],
    ) -> AnalysisResponse:
        """One send/receive round trip (no retry)."""
        self._send_line(request.to_json_dict())
        while True:
            payload = self._read_line()
            kind = payload.get("type")
            if kind == "event":
                if on_event is not None:
                    on_event(payload.get("record") or {})
                continue
            if kind == "response":
                return AnalysisResponse.from_json_dict(
                    payload.get("response") or {}
                )
            if kind == "overloaded":
                raise ServeOverloaded(
                    str(payload.get("message") or "daemon overloaded"),
                    float(payload.get("retry_after") or 0.0),
                )
            if kind == "error":
                raise ServeError(str(payload.get("message")))
            raise ServeError(f"unexpected line type {kind!r}")

    def request(
        self,
        request: AnalysisRequest,
        *,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> AnalysisResponse:
        """Send one :class:`AnalysisRequest`, return the typed response.

        ``on_event`` receives each streamed ``record`` dict as it
        arrives (only meaningful with ``trace.stream=True``); event
        callback errors are the caller's problem — they propagate.

        Retries up to ``max_retries`` times: a lost connection
        reconnects and resends (queries are idempotent; streamed events
        may replay); an ``overloaded`` rejection waits out the larger of
        the daemon's ``retry_after`` hint and the client's own jittered
        exponential backoff, then resends on the same connection.
        """
        attempt = 0
        while True:
            try:
                self._ensure_connected()
                return self._exchange(request, on_event)
            except ServeOverloaded as overloaded:
                if attempt >= self.max_retries:
                    raise
                self._sleep(max(overloaded.retry_after, self._delay(attempt)))
            except (_ConnectionLost, OSError):
                self._disconnect()
                if attempt >= self.max_retries:
                    raise
                self._sleep(self._delay(attempt))
            attempt += 1
            self.retries += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "serve.client_retries",
                    "client-side reconnect/overload retries",
                ).inc()

    def query(
        self,
        procedure: str,
        *,
        source: Optional[str] = None,
        fingerprint: Optional[str] = None,
        budget: Optional[BudgetSpec] = None,
        stream: bool = False,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        request_id: Optional[str] = None,
        workers: Optional[int] = None,
        traceparent: Optional[str] = None,
        **params: Any,
    ) -> AnalysisResponse:
        """Convenience wrapper building the request from keyword arguments.

        Every query carries a ``request_id`` (minted here when the
        caller omits one) and a ``traceparent``: if the calling thread
        is inside a local span, its trace context is propagated so the
        daemon's spans join this process's trace; otherwise a fresh
        trace id is minted client-side so the whole server-side query
        still shares one trace.
        """
        request = AnalysisRequest(
            procedure=procedure,
            source=source,
            fingerprint=fingerprint,
            params=params,
            budget=budget,
            trace=TraceOptions(stream=stream),
            request_id=request_id or uuid.uuid4().hex,
            workers=workers,
            traceparent=traceparent or self._mint_traceparent(),
        )
        return self.request(request, on_event=on_event)

    @staticmethod
    def _mint_traceparent() -> str:
        """The caller's trace context as a wire header (or a fresh one)."""
        span = current_span()
        if span is not None and getattr(span, "trace", None) is not None:
            return span.trace.child(span.span_id).to_traceparent()
        return TraceContext().to_traceparent()

    # ------------------------------------------------------------------

    def _op(self, op: str, expect: str) -> Dict[str, Any]:
        self._ensure_connected()
        self._send_line({"op": op})
        payload = self._read_line()
        if payload.get("type") != expect:
            raise ServeError(
                f"op {op!r} answered with {payload.get('type')!r}"
            )
        return payload

    def ping(self) -> Dict[str, Any]:
        """Daemon liveness + counters (``{"type": "pong", ...}`` payload)."""
        return self._op("ping", "pong")

    def pool_stats(self) -> Dict[str, Any]:
        """The daemon's :meth:`~repro.serve.pool.SessionPool.snapshot`."""
        return self._op("pool", "pool")

    def stats(self) -> Dict[str, Any]:
        """Daemon counters plus the merged metrics registry snapshot.

        The ``metrics`` key is a :meth:`~repro.obs.MetricsRegistry.as_dict`
        payload (rebuildable with :func:`~repro.obs.registry_from_dict`)
        covering every pooled session, including per-worker
        ``parallel.*{worker=i}`` series from sharded queries.
        """
        return self._op("stats", "stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to exit (the daemon closes this connection)."""
        return self._op("shutdown", "shutdown")


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    """``k=v`` pairs with JSON-decoded values (bare words stay strings)."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"rpcheck client: --param needs k=v, got {pair!r}")
        try:
            params[name] = json.loads(raw)
        except ValueError:
            params[name] = raw
    return params


def client_main(argv: Optional[List[str]] = None) -> int:
    """``rpcheck client``: query a running daemon from the command line."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="rpcheck client",
        description="Send one query (or op) to a running rpcheck serve daemon.",
    )
    parser.add_argument("--socket", required=True, help="daemon unix socket")
    parser.add_argument(
        "command",
        help="a procedure name (boundedness, analyze, node_reachable, ...) "
        "or an op: ping, pool, stats, shutdown",
    )
    parser.add_argument("--file", help="RP program file to analyse")
    parser.add_argument(
        "--fingerprint", help="query a scheme the daemon already holds"
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="K=V",
        help="procedure parameter (repeatable; values parsed as JSON)",
    )
    parser.add_argument(
        "--deadline", type=float, help="budget: wall-clock seconds"
    )
    parser.add_argument(
        "--max-states", type=int, help="budget: exploration state cap"
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="exploration worker processes for this query (server-side "
        "sharded exploration; verdicts are identical to sequential)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="print tracer events as they arrive",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the raw response JSON"
    )
    args = parser.parse_args(argv)
    try:
        return _client_run(args)
    except BrokenPipeError:
        # stdout's reader went away (e.g. ``rpcheck client ... | head``);
        # point stdout at /dev/null so the interpreter's exit-time flush
        # does not raise a second time, and exit quietly
        import os
        import sys

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _client_run(args) -> int:
    with ServeClient(args.socket) as client:
        if args.command in ("ping", "pool", "stats", "shutdown"):
            payload = getattr(
                client, {"pool": "pool_stats"}.get(args.command, args.command)
            )()
            print(json.dumps(payload, indent=2, default=repr))
            return 0
        source = None
        if args.file:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        budget = None
        if args.deadline is not None or args.max_states is not None:
            budget = BudgetSpec(
                deadline=args.deadline, max_states=args.max_states
            )

        def on_event(record: Dict[str, Any]) -> None:
            print(f"event: {json.dumps(record, default=repr)}")

        response = client.query(
            args.command,
            source=source,
            fingerprint=args.fingerprint,
            budget=budget,
            workers=args.workers,
            stream=args.stream,
            on_event=on_event if args.stream else None,
            **_parse_params(args.param),
        )
    if args.json:
        print(json.dumps(response.to_json_dict(), indent=2, default=repr))
    else:
        render = response.details.get("render")
        if render:
            print(render)
        else:
            print(f"{response.procedure}: {response.verdict}")
            for name, summary in response.procedures.items():
                print(f"  {name}: {json.dumps(summary, default=repr)}")
        if response.error is not None:
            print(f"error: {response.error['type']}: {response.error['message']}")
    return 0 if response.ok else 1
